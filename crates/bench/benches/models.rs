//! Microbenchmarks of the evaluation stack and the RFM baseline: AUROC,
//! ROC curves, logistic regression fitting, and out-of-fold scoring.
//! Run with `cargo bench -p attrition-bench --bench models`.

use attrition_bench::micro::{black_box, Runner};
use attrition_eval::{auroc, RocCurve};
use attrition_rfm::{out_of_fold_scores, LogisticRegression, RfmFeatures, RfmModel};
use attrition_util::Rng;

fn scored_population(n: usize, seed: u64) -> (Vec<bool>, Vec<f64>) {
    let mut rng = Rng::seed_from_u64(seed);
    let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
    let scores: Vec<f64> = labels
        .iter()
        .map(|&l| {
            if l {
                rng.normal_with(0.6, 0.3)
            } else {
                rng.normal_with(0.4, 0.3)
            }
        })
        .collect();
    (labels, scores)
}

fn bench_auroc() {
    let mut runner = Runner::group("auroc");
    for &n in &[1_000usize, 10_000, 100_000] {
        let (labels, scores) = scored_population(n, 1);
        runner.bench_throughput(&format!("mann_whitney/{n}"), n as u64, || {
            black_box(auroc(&labels, &scores))
        });
        runner.bench_throughput(&format!("roc_curve/{n}"), n as u64, || {
            black_box(RocCurve::compute(&labels, &scores))
        });
    }
}

fn rfm_rows(n: usize, seed: u64) -> (Vec<RfmFeatures>, Vec<bool>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let defector = rng.bernoulli(0.5);
        let shift = if defector { 1.0 } else { 0.0 };
        features.push(RfmFeatures {
            recency_days: rng.normal_with(10.0 + 20.0 * shift, 6.0).max(0.0),
            frequency: rng.normal_with(8.0 - 4.0 * shift, 2.0).max(0.0),
            monetary: rng.normal_with(200.0 - 120.0 * shift, 50.0).max(0.0),
        });
        labels.push(defector);
    }
    (features, labels)
}

fn bench_logistic() {
    let mut runner = Runner::group("logistic_regression");
    for &n in &[1_000usize, 10_000] {
        let (features, labels) = rfm_rows(n, 2);
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_array().to_vec()).collect();
        runner.bench_throughput(&format!("irls_fit/{n}"), n as u64, || {
            let mut lr = LogisticRegression::new(3);
            black_box(lr.fit(&rows, &labels))
        });
        runner.bench_throughput(&format!("rfm_fit_scaled/{n}"), n as u64, || {
            let mut model = RfmModel::new(1);
            black_box(model.fit(&features, &labels))
        });
    }
}

fn bench_oof() {
    let (features, labels) = rfm_rows(2_000, 3);
    let mut runner = Runner::group("rfm_out_of_fold").rounds(3);
    runner.bench("oof_5fold_2000", || {
        black_box(out_of_fold_scores(&features, &labels, 1, 5, 7))
    });
}

fn main() {
    bench_auroc();
    bench_logistic();
    bench_oof();
}
