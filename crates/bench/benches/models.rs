//! Microbenchmarks of the evaluation stack and the RFM baseline: AUROC,
//! ROC curves, logistic regression fitting, and out-of-fold scoring.

use attrition_eval::{auroc, RocCurve};
use attrition_rfm::{out_of_fold_scores, LogisticRegression, RfmFeatures, RfmModel};
use attrition_util::Rng;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn scored_population(n: usize, seed: u64) -> (Vec<bool>, Vec<f64>) {
    let mut rng = Rng::seed_from_u64(seed);
    let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
    let scores: Vec<f64> = labels
        .iter()
        .map(|&l| {
            if l {
                rng.normal_with(0.6, 0.3)
            } else {
                rng.normal_with(0.4, 0.3)
            }
        })
        .collect();
    (labels, scores)
}

fn bench_auroc(c: &mut Criterion) {
    let mut group = c.benchmark_group("auroc");
    for &n in &[1_000usize, 10_000, 100_000] {
        let (labels, scores) = scored_population(n, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("mann_whitney", n), &n, |b, _| {
            b.iter(|| black_box(auroc(&labels, &scores)))
        });
        group.bench_with_input(BenchmarkId::new("roc_curve", n), &n, |b, _| {
            b.iter(|| black_box(RocCurve::compute(&labels, &scores)))
        });
    }
    group.finish();
}

fn rfm_rows(n: usize, seed: u64) -> (Vec<RfmFeatures>, Vec<bool>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut features = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let defector = rng.bernoulli(0.5);
        let shift = if defector { 1.0 } else { 0.0 };
        features.push(RfmFeatures {
            recency_days: rng.normal_with(10.0 + 20.0 * shift, 6.0).max(0.0),
            frequency: rng.normal_with(8.0 - 4.0 * shift, 2.0).max(0.0),
            monetary: rng.normal_with(200.0 - 120.0 * shift, 50.0).max(0.0),
        });
        labels.push(defector);
    }
    (features, labels)
}

fn bench_logistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("logistic_regression");
    for &n in &[1_000usize, 10_000] {
        let (features, labels) = rfm_rows(n, 2);
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_array().to_vec()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("irls_fit", n), &n, |b, _| {
            b.iter(|| {
                let mut lr = LogisticRegression::new(3);
                black_box(lr.fit(&rows, &labels))
            })
        });
        group.bench_with_input(BenchmarkId::new("rfm_fit_scaled", n), &n, |b, _| {
            b.iter(|| {
                let mut model = RfmModel::new(1);
                black_box(model.fit(&features, &labels))
            })
        });
    }
    group.finish();
}

fn bench_oof(c: &mut Criterion) {
    let (features, labels) = rfm_rows(2_000, 3);
    let mut group = c.benchmark_group("rfm_out_of_fold");
    group.sample_size(20);
    group.bench_function("oof_5fold_2000", |b| {
        b.iter(|| black_box(out_of_fold_scores(&features, &labels, 1, 5, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_auroc, bench_logistic, bench_oof);
criterion_main!(benches);
