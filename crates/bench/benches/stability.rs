//! Microbenchmarks of the stability model's hot paths: significance
//! tracker updates, single-customer series, and the parallel batch
//! engine. Run with `cargo bench -p attrition-bench --bench stability`.

use attrition_bench::micro::{black_box, Runner};
use attrition_core::{
    analyze_customer, stability_series, SignificanceTracker, StabilityEngine, StabilityParams,
};
use attrition_store::{CustomerWindows, WindowAlignment, WindowSpec, WindowedDatabase};
use attrition_types::{Basket, Cents, CustomerId, Date, ItemId};
use attrition_util::Rng;

fn random_windows(
    n_windows: usize,
    vocab: u32,
    items_per_window: usize,
    seed: u64,
) -> CustomerWindows {
    let mut rng = Rng::seed_from_u64(seed);
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 2);
    let baskets: Vec<Basket> = (0..n_windows)
        .map(|_| {
            Basket::new(
                (0..items_per_window)
                    .map(|_| ItemId::new(rng.u64_below(vocab as u64) as u32))
                    .collect(),
            )
        })
        .collect();
    CustomerWindows {
        customer: CustomerId::new(1),
        trips: vec![4; n_windows],
        spend: vec![Cents(5000); n_windows],
        last_purchase: vec![None; n_windows],
        baskets,
        spec,
    }
}

fn bench_tracker() {
    let mut runner = Runner::group("significance_tracker");
    for &items in &[10usize, 40, 160] {
        let windows = random_windows(14, 400, items, 7);
        runner.bench(&format!("observe_14_windows/{items}"), || {
            let mut t = SignificanceTracker::new(StabilityParams::PAPER);
            for u in &windows.baskets {
                black_box(t.total_significance());
                t.observe_window(u);
            }
            black_box(t.num_tracked())
        });
    }
}

fn bench_series() {
    let mut runner = Runner::group("stability_series");
    for &n_windows in &[14usize, 56, 224] {
        let windows = random_windows(n_windows, 400, 40, 9);
        runner.bench(&format!("series/{n_windows}"), || {
            black_box(stability_series(&windows, StabilityParams::PAPER))
        });
        runner.bench(&format!("analyze_with_explanations/{n_windows}"), || {
            black_box(analyze_customer(&windows, StabilityParams::PAPER, 5))
        });
    }
}

fn bench_engine() {
    // A realistic small windowed database via the simulator would pull in
    // datagen; synthesize receipts directly for a pure engine measurement.
    let mut builder = attrition_store::ReceiptStoreBuilder::new();
    let mut rng = Rng::seed_from_u64(3);
    let d0 = Date::from_ymd(2012, 5, 1).unwrap();
    for cust in 0..500u64 {
        for month in 0..28 {
            for _ in 0..4 {
                let date = d0.add_months(month) + rng.u64_below(28) as i32;
                let items: Vec<ItemId> = (0..20)
                    .map(|_| ItemId::new(rng.u64_below(120) as u32))
                    .collect();
                builder.push(attrition_types::Receipt::new(
                    CustomerId::new(cust),
                    date,
                    Basket::new(items),
                    Cents(4000),
                ));
            }
        }
    }
    let store = builder.build();
    let db = WindowedDatabase::from_store(
        &store,
        WindowSpec::months(d0, 2),
        14,
        WindowAlignment::Global,
    );
    let mut runner = Runner::group("stability_engine").rounds(3);
    runner.bench("batch_500_customers_serial", || {
        let engine = StabilityEngine::new(StabilityParams::PAPER).with_threads(1);
        black_box(engine.compute(&db))
    });
    runner.bench("batch_500_customers_parallel", || {
        let engine = StabilityEngine::new(StabilityParams::PAPER);
        black_box(engine.compute(&db))
    });
}

fn bench_monitor() {
    use attrition_core::StabilityMonitor;
    // A chronological receipt stream of 200 customers × 12 months.
    let d0 = Date::from_ymd(2012, 5, 1).unwrap();
    let mut rng = Rng::seed_from_u64(11);
    let mut stream: Vec<(CustomerId, Date, Basket)> = Vec::new();
    for month in 0..12 {
        for cust in 0..200u64 {
            for _ in 0..4 {
                let date = d0.add_months(month) + rng.u64_below(28) as i32;
                let items: Vec<ItemId> = (0..20)
                    .map(|_| ItemId::new(rng.u64_below(120) as u32))
                    .collect();
                stream.push((CustomerId::new(cust), date, Basket::new(items)));
            }
        }
    }
    stream.sort_by_key(|(c, d, _)| (*d, *c));
    let mut runner = Runner::group("stability_monitor").rounds(3);
    runner.bench_throughput("ingest_stream_9600_receipts", stream.len() as u64, || {
        let mut monitor = StabilityMonitor::new(
            attrition_store::WindowSpec::months(d0, 2),
            StabilityParams::PAPER,
        );
        let mut closed = 0usize;
        for (customer, date, basket) in &stream {
            closed += monitor.ingest(*customer, *date, basket).len();
        }
        black_box(closed)
    });
}

fn main() {
    bench_tracker();
    bench_series();
    bench_engine();
    bench_monitor();
}
