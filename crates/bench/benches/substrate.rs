//! Microbenchmarks of the substrates: store construction, windowing,
//! segment projection, persistence, and synthetic data generation. Run
//! with `cargo bench -p attrition-bench --bench substrate`.

use attrition_bench::micro::{black_box, Runner};
use attrition_datagen::{generate, ScenarioConfig};
use attrition_store::{
    project_to_segments, ReceiptStoreBuilder, WindowAlignment, WindowSpec, WindowedDatabase,
};
use attrition_types::{Basket, Cents, CustomerId, Date, ItemId, Receipt};
use attrition_util::Rng;

fn synth_receipts(n_customers: u64, months: i32, trips_per_month: u64, seed: u64) -> Vec<Receipt> {
    let mut rng = Rng::seed_from_u64(seed);
    let d0 = Date::from_ymd(2012, 5, 1).unwrap();
    let mut receipts = Vec::new();
    for cust in 0..n_customers {
        for month in 0..months {
            for _ in 0..trips_per_month {
                let date = d0.add_months(month) + rng.u64_below(28) as i32;
                let items: Vec<ItemId> = (0..15)
                    .map(|_| ItemId::new(rng.u64_below(500) as u32))
                    .collect();
                receipts.push(Receipt::new(
                    CustomerId::new(cust),
                    date,
                    Basket::new(items),
                    Cents(3000),
                ));
            }
        }
    }
    receipts
}

fn bench_store_build() {
    let mut runner = Runner::group("store_build");
    for &n in &[100u64, 400] {
        let receipts = synth_receipts(n, 28, 4, 1);
        runner.bench_throughput(&format!("sorted_build/{n}"), receipts.len() as u64, || {
            let mut builder = ReceiptStoreBuilder::with_capacity(receipts.len());
            for r in &receipts {
                builder.push(r.clone());
            }
            black_box(builder.build())
        });
    }
}

fn bench_windowing() {
    let receipts = synth_receipts(400, 28, 4, 2);
    let mut builder = ReceiptStoreBuilder::with_capacity(receipts.len());
    for r in receipts {
        builder.push(r);
    }
    let store = builder.build();
    let d0 = Date::from_ymd(2012, 5, 1).unwrap();
    let mut runner = Runner::group("windowing");
    runner.bench_throughput("window_400_customers", store.num_receipts() as u64, || {
        black_box(WindowedDatabase::from_store(
            &store,
            WindowSpec::months(d0, 2),
            14,
            WindowAlignment::Global,
        ))
    });
}

fn bench_projection() {
    let cfg = ScenarioConfig::small();
    let dataset = generate(&cfg);
    let mut runner = Runner::group("segment_projection");
    runner.bench_throughput(
        "project_small_scenario",
        dataset.store.num_receipts() as u64,
        || black_box(project_to_segments(&dataset.store, &dataset.taxonomy).unwrap()),
    );
}

fn bench_persistence() {
    use attrition_store::csv_io::{receipts_from_csv, receipts_to_csv};
    use attrition_store::{store_from_bytes, store_to_bytes};
    let cfg = ScenarioConfig::small();
    let dataset = generate(&cfg);
    let csv = receipts_to_csv(&dataset.store);
    let bin = store_to_bytes(&dataset.store);
    let n = dataset.store.num_receipts() as u64;
    let mut runner = Runner::group("persistence");
    runner.bench_throughput("load_csv", n, || {
        black_box(receipts_from_csv(&csv).unwrap())
    });
    runner.bench_throughput("load_binary", n, || {
        black_box(store_from_bytes(&bin).unwrap())
    });
    runner.bench_throughput("save_csv", n, || black_box(receipts_to_csv(&dataset.store)));
    runner.bench_throughput("save_binary", n, || {
        black_box(store_to_bytes(&dataset.store))
    });
}

fn bench_datagen() {
    let mut runner = Runner::group("datagen").rounds(3);
    runner.bench("generate_small_scenario", || {
        black_box(generate(&ScenarioConfig::small()))
    });
}

fn main() {
    bench_store_build();
    bench_windowing();
    bench_projection();
    bench_persistence();
    bench_datagen();
}
