//! Microbenchmarks of the substrates: store construction, windowing,
//! segment projection, and synthetic data generation.

use attrition_datagen::{generate, ScenarioConfig};
use attrition_store::{
    project_to_segments, ReceiptStoreBuilder, WindowAlignment, WindowSpec, WindowedDatabase,
};
use attrition_types::{Basket, Cents, CustomerId, Date, ItemId, Receipt};
use attrition_util::Rng;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn synth_receipts(n_customers: u64, months: i32, trips_per_month: u64, seed: u64) -> Vec<Receipt> {
    let mut rng = Rng::seed_from_u64(seed);
    let d0 = Date::from_ymd(2012, 5, 1).unwrap();
    let mut receipts = Vec::new();
    for cust in 0..n_customers {
        for month in 0..months {
            for _ in 0..trips_per_month {
                let date = d0.add_months(month) + rng.u64_below(28) as i32;
                let items: Vec<ItemId> = (0..15)
                    .map(|_| ItemId::new(rng.u64_below(500) as u32))
                    .collect();
                receipts.push(Receipt::new(
                    CustomerId::new(cust),
                    date,
                    Basket::new(items),
                    Cents(3000),
                ));
            }
        }
    }
    receipts
}

fn bench_store_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_build");
    for &n in &[100u64, 400] {
        let receipts = synth_receipts(n, 28, 4, 1);
        group.throughput(Throughput::Elements(receipts.len() as u64));
        group.bench_with_input(BenchmarkId::new("sorted_build", n), &receipts, |b, rs| {
            b.iter(|| {
                let mut builder = ReceiptStoreBuilder::with_capacity(rs.len());
                for r in rs {
                    builder.push(r.clone());
                }
                black_box(builder.build())
            })
        });
    }
    group.finish();
}

fn bench_windowing(c: &mut Criterion) {
    let receipts = synth_receipts(400, 28, 4, 2);
    let mut builder = ReceiptStoreBuilder::with_capacity(receipts.len());
    for r in receipts {
        builder.push(r);
    }
    let store = builder.build();
    let d0 = Date::from_ymd(2012, 5, 1).unwrap();
    let mut group = c.benchmark_group("windowing");
    group.throughput(Throughput::Elements(store.num_receipts() as u64));
    group.bench_function("window_400_customers", |b| {
        b.iter(|| {
            black_box(WindowedDatabase::from_store(
                &store,
                WindowSpec::months(d0, 2),
                14,
                WindowAlignment::Global,
            ))
        })
    });
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let cfg = ScenarioConfig::small();
    let dataset = generate(&cfg);
    let mut group = c.benchmark_group("segment_projection");
    group.throughput(Throughput::Elements(dataset.store.num_receipts() as u64));
    group.bench_function("project_small_scenario", |b| {
        b.iter(|| black_box(project_to_segments(&dataset.store, &dataset.taxonomy).unwrap()))
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    use attrition_store::csv_io::{receipts_from_csv, receipts_to_csv};
    use attrition_store::{store_from_bytes, store_to_bytes};
    let cfg = ScenarioConfig::small();
    let dataset = generate(&cfg);
    let csv = receipts_to_csv(&dataset.store);
    let bin = store_to_bytes(&dataset.store);
    let mut group = c.benchmark_group("persistence");
    group.throughput(Throughput::Elements(dataset.store.num_receipts() as u64));
    group.bench_function("load_csv", |b| {
        b.iter(|| black_box(receipts_from_csv(&csv).unwrap()))
    });
    group.bench_function("load_binary", |b| {
        b.iter(|| black_box(store_from_bytes(&bin).unwrap()))
    });
    group.bench_function("save_csv", |b| b.iter(|| black_box(receipts_to_csv(&dataset.store))));
    group.bench_function("save_binary", |b| {
        b.iter(|| black_box(store_to_bytes(&dataset.store)))
    });
    group.finish();
}

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    group.bench_function("generate_small_scenario", |b| {
        b.iter(|| black_box(generate(&ScenarioConfig::small())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_store_build,
    bench_windowing,
    bench_projection,
    bench_persistence,
    bench_datagen
);
criterion_main!(benches);
