//! ABL-ALIGN — window-alignment ablation.
//!
//! DESIGN.md's windowing decision: the paper's shared "number of months"
//! axis implies one global window grid anchored at the observation start;
//! the alternative anchors each customer's grid at their own first
//! purchase. This ablation runs Figure 1's stability AUROC under both
//! alignments on the same dataset.
//!
//! Run twice: on the default scenario (everyone active from month 0 —
//! the alignments nearly coincide) and on a late-joiner scenario (40% of
//! customers enter between months 1 and 8), where a global grid charges
//! late joiners with empty pre-entry windows while the per-customer grid
//! starts each history at its first purchase.
//!
//! Run: `cargo run -p attrition-bench --release --bin ablation_alignment`

use attrition_bench::{auroc_series_csv, stability_auroc_series, write_result, Prepared};
use attrition_core::StabilityParams;
use attrition_datagen::{generate, ScenarioConfig};
use attrition_store::WindowAlignment;
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn run_comparison(title: &str, cfg: &ScenarioConfig, artifact: &str) {
    eprintln!("generating scenario once, windowing twice…");
    let dataset = generate(cfg);
    let global = Prepared::from_dataset(
        dataset.clone(),
        2,
        StabilityParams::PAPER,
        WindowAlignment::Global,
    );
    let per_customer = Prepared::from_dataset(
        dataset,
        2,
        StabilityParams::PAPER,
        WindowAlignment::PerCustomerFirstPurchase,
    );

    let windows = 0..global.db.num_windows;
    let series_global = stability_auroc_series(&global, windows.clone());
    let series_per = stability_auroc_series(&per_customer, windows);

    println!("\nABL-ALIGN [{title}]: stability AUROC under both window alignments\n");
    let mut table = Table::new(["month", "global grid", "per-customer grid", "delta"]);
    for (g, p) in series_global.iter().zip(&series_per) {
        table.row([
            g.month.to_string(),
            fmt_f64(g.auroc, 3),
            fmt_f64(p.auroc, 3),
            fmt_f64(p.auroc - g.auroc, 3),
        ]);
    }
    println!("{table}");

    let max_delta = series_global
        .iter()
        .zip(&series_per)
        .map(|(g, p)| (p.auroc - g.auroc).abs())
        .fold(0.0f64, f64::max);
    println!("max |delta| = {max_delta:.4}");

    let csv = auroc_series_csv(&["global", "per_customer"], &[&series_global, &series_per]);
    write_result(artifact, &csv);
}

fn main() {
    run_comparison(
        "default scenario",
        &ScenarioConfig::paper_default(),
        "ablation_alignment.csv",
    );

    // Same scenario, but 40% of customers join between months 1 and 8.
    let mut late = ScenarioConfig::paper_default();
    late.behavior.late_join = Some((0.4, 8));
    run_comparison(
        "late joiners (40% enter in months 1-8)",
        &late,
        "ablation_alignment_latejoin.csv",
    );
}
