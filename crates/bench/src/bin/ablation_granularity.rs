//! ABL-GRAN — product- vs segment-granularity ablation.
//!
//! The paper abstracts 4M products into 3,388 segments before modeling.
//! This ablation runs the stability AUROC at both granularities on the
//! same dataset, quantifying what the abstraction buys: at product level
//! a customer who switches brands within a segment looks unstable even
//! though their need is still served, so segment-level stability should
//! discriminate defection at least as well with far less noise.
//!
//! Run: `cargo run -p attrition-bench --release --bin ablation_granularity`

use attrition_bench::{align_labels, auroc_series_csv, write_result, AurocPoint};
use attrition_core::{StabilityEngine, StabilityParams};
use attrition_datagen::{generate, ScenarioConfig};
use attrition_store::{ReceiptStore, WindowAlignment, WindowSpec, WindowedDatabase};
use attrition_types::{CustomerId, WindowIndex};
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn series_for(
    store: &ReceiptStore,
    cfg: &ScenarioConfig,
    labels: &attrition_datagen::LabelSet,
) -> Vec<AurocPoint> {
    let w_months = 2u32;
    let spec = WindowSpec::months(cfg.start, w_months);
    let n_windows = cfg.n_months.div_ceil(w_months);
    let db = WindowedDatabase::from_store(store, spec, n_windows, WindowAlignment::Global);
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
    (0..n_windows)
        .map(|k| {
            let pairs = matrix.attrition_scores_at(WindowIndex::new(k));
            let customers: Vec<CustomerId> = pairs.iter().map(|(c, _)| *c).collect();
            let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
            let aligned = align_labels(labels, &customers);
            AurocPoint::from_scores(k, (k + 1) * w_months, &aligned, &scores)
        })
        .collect()
}

fn main() {
    let cfg = ScenarioConfig::paper_default();
    eprintln!("generating scenario once, modeling at two granularities…");
    let dataset = generate(&cfg);
    let seg_store = dataset.segment_store();

    let product_series = series_for(&dataset.store, &cfg, &dataset.labels);
    let segment_series = series_for(&seg_store, &cfg, &dataset.labels);

    println!("\nABL-GRAN: stability AUROC at product vs segment granularity\n");
    let mut table = Table::new(["month", "product level", "segment level", "delta"]);
    for (p, s) in product_series.iter().zip(&segment_series) {
        table.row([
            p.month.to_string(),
            fmt_f64(p.auroc, 3),
            fmt_f64(s.auroc, 3),
            fmt_f64(s.auroc - p.auroc, 3),
        ]);
    }
    println!("{table}");

    // Post-onset means.
    let onset = cfg.onset_month;
    let mean_post = |series: &[AurocPoint]| -> f64 {
        let post: Vec<f64> = series
            .iter()
            .filter(|p| p.month > onset)
            .map(|p| p.auroc)
            .collect();
        post.iter().sum::<f64>() / post.len() as f64
    };
    println!(
        "mean post-onset AUROC: product {:.3}, segment {:.3}",
        mean_post(&product_series),
        mean_post(&segment_series)
    );

    let csv = auroc_series_csv(&["product", "segment"], &[&product_series, &segment_series]);
    write_result("ablation_granularity.csv", &csv);
}
