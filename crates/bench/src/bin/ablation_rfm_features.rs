//! ABL-RFM — baseline feature-set ablation.
//!
//! The paper restricts the Buckinx & Van den Poel methodology to pure
//! R/F/M predictors. This experiment measures what that restriction
//! costs: per-window AUROC of the 3-feature R/F/M logistic regression vs
//! a 7-feature extension (R/F/M + trip regularity + frequency/monetary
//! trends), both scored out-of-fold on the default scenario. It also
//! situates the stability model against the stronger baseline.
//!
//! Run: `cargo run -p attrition-bench --release --bin ablation_rfm_features`

use attrition_bench::{
    auroc_series_csv, rfm_auroc_series, stability_auroc_series, write_result, AurocPoint, Prepared,
};
use attrition_core::StabilityParams;
use attrition_datagen::ScenarioConfig;
use attrition_rfm::{extract_extended, out_of_fold_scores_extended, ExtendedFeatures};
use attrition_types::{CustomerId, WindowIndex};
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn extended_series(prepared: &Prepared, windows: impl Iterator<Item = u32>) -> Vec<AurocPoint> {
    windows
        .map(|k| {
            let rows: Vec<(CustomerId, ExtendedFeatures)> = prepared
                .db
                .customers()
                .iter()
                .filter_map(|w| {
                    extract_extended(w, WindowIndex::new(k), 1).map(|f| (w.customer, f))
                })
                .collect();
            let customers: Vec<CustomerId> = rows.iter().map(|(c, _)| *c).collect();
            let features: Vec<ExtendedFeatures> = rows.iter().map(|(_, f)| *f).collect();
            let labels = prepared.labels_for(&customers);
            let scores = out_of_fold_scores_extended(&features, &labels, 5, 42);
            AurocPoint::from_scores(k, prepared.month_of_window_end(k), &labels, &scores)
        })
        .collect()
}

fn main() {
    let cfg = ScenarioConfig::paper_default();
    eprintln!("generating scenario, scoring three models per window…");
    let prepared = Prepared::new(&cfg, 2, StabilityParams::PAPER);
    let windows = 0..prepared.db.num_windows;

    let stability = stability_auroc_series(&prepared, windows.clone());
    let rfm = rfm_auroc_series(&prepared, windows.clone(), 1, 5, 42);
    let extended = extended_series(&prepared, windows);

    println!("\nABL-RFM: baseline feature-set ablation (AUROC per window)\n");
    let mut table = Table::new([
        "month",
        "stability",
        "RFM (paper's baseline)",
        "extended (7 features)",
    ]);
    for ((s, r), e) in stability.iter().zip(&rfm).zip(&extended) {
        table.row([
            s.month.to_string(),
            fmt_f64(s.auroc, 3),
            fmt_f64(r.auroc, 3),
            fmt_f64(e.auroc, 3),
        ]);
    }
    println!("{table}");

    let onset = cfg.onset_month;
    let early_mean = |series: &[AurocPoint]| {
        let xs: Vec<f64> = series
            .iter()
            .filter(|p| p.month > onset && p.month <= onset + 4)
            .map(|p| p.auroc)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    println!(
        "early-detection means (windows ending in months {}..{}):",
        onset + 1,
        onset + 4
    );
    println!("  stability        {:.3}", early_mean(&stability));
    println!("  RFM              {:.3}", early_mean(&rfm));
    println!("  extended RFM     {:.3}", early_mean(&extended));

    let csv = auroc_series_csv(
        &["stability", "rfm", "extended_rfm"],
        &[&stability, &rfm, &extended],
    );
    write_result("ablation_rfm_features.csv", &csv);
}
