//! ABL-SIG — significance-function ablation (the paper's future work:
//! "deepen the study of the characterization of significant products").
//!
//! Compares defector-detection AUROC per window when the stability
//! ratio's significance function is the paper's `α^(c−l)`, the plain
//! support ratio `c/k`, or an EWMA of the item-presence indicator —
//! asking how much of the paper's result is owed to its specific
//! significance shape versus the windows-and-ratio framing.
//!
//! Run: `cargo run -p attrition-bench --release --bin ablation_significance`

use attrition_bench::{align_labels, write_result, AurocPoint};
use attrition_core::{stability_series_variant, SignificanceVariant};
use attrition_datagen::{generate, ScenarioConfig};
use attrition_store::{WindowAlignment, WindowSpec, WindowedDatabase};
use attrition_types::CustomerId;
use attrition_util::csv::CsvWriter;
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn series_for(
    db: &WindowedDatabase,
    labels: &attrition_datagen::LabelSet,
    variant: SignificanceVariant,
    w_months: u32,
) -> Vec<AurocPoint> {
    let per_customer: Vec<(CustomerId, Vec<f64>)> = db
        .customers()
        .iter()
        .map(|w| {
            (
                w.customer,
                stability_series_variant(w, variant)
                    .iter()
                    .map(|p| 1.0 - p.value)
                    .collect(),
            )
        })
        .collect();
    let customers: Vec<CustomerId> = per_customer.iter().map(|(c, _)| *c).collect();
    let aligned = align_labels(labels, &customers);
    (0..db.num_windows)
        .map(|k| {
            let scores: Vec<f64> = per_customer.iter().map(|(_, s)| s[k as usize]).collect();
            AurocPoint::from_scores(k, (k + 1) * w_months, &aligned, &scores)
        })
        .collect()
}

fn main() {
    let cfg = ScenarioConfig::paper_default();
    let w_months = 2u32;
    eprintln!("generating scenario once, scoring three significance variants…");
    let dataset = generate(&cfg);
    let seg_store = dataset.segment_store();
    let db = WindowedDatabase::from_store(
        &seg_store,
        WindowSpec::months(cfg.start, w_months),
        cfg.n_months.div_ceil(w_months),
        WindowAlignment::Global,
    );

    let variants = [
        SignificanceVariant::PaperExponential { alpha: 2.0 },
        SignificanceVariant::FrequencyRatio,
        SignificanceVariant::Ewma { lambda: 0.3 },
    ];
    let all: Vec<(String, Vec<AurocPoint>)> = variants
        .iter()
        .map(|v| (v.label(), series_for(&db, &dataset.labels, *v, w_months)))
        .collect();

    println!("\nABL-SIG: detection AUROC per window by significance function\n");
    let mut header = vec!["month".to_owned()];
    header.extend(all.iter().map(|(l, _)| l.clone()));
    let mut table = Table::new(header);
    for i in 0..all[0].1.len() {
        let mut row = vec![all[0].1[i].month.to_string()];
        for (_, series) in &all {
            row.push(fmt_f64(series[i].auroc, 3));
        }
        table.row(row);
    }
    println!("{table}");

    // Early-detection summary: mean AUROC over the first two post-onset
    // windows.
    let onset = cfg.onset_month;
    println!("early-detection mean (first two windows ending after month {onset}):");
    for (label, series) in &all {
        let early: Vec<f64> = series
            .iter()
            .filter(|p| p.month > onset && p.month <= onset + 4)
            .map(|p| p.auroc)
            .collect();
        let mean = early.iter().sum::<f64>() / early.len().max(1) as f64;
        println!("  {label:<16} {mean:.3}");
    }

    let mut csv = CsvWriter::new();
    let mut header = vec!["window".to_owned(), "month".to_owned()];
    header.extend(all.iter().map(|(l, _)| l.replace(' ', "_")));
    csv.record_owned(&header);
    for i in 0..all[0].1.len() {
        let mut row = vec![
            all[0].1[i].window.to_string(),
            all[0].1[i].month.to_string(),
        ];
        for (_, series) in &all {
            row.push(format!("{:.6}", series[i].auroc));
        }
        csv.record_owned(&row);
    }
    write_result("ablation_significance.csv", &csv.finish());
}
