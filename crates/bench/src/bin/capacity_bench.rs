//! CAPACITY — how many resident customers one monitor holds.
//!
//! The paper's deployment target is a 6M-customer retailer, so the
//! serving layer's memory story matters as much as its throughput. This
//! bench grows a single [`StabilityMonitor`] to `N` resident customers
//! (default 1,000,000; `ATTRITION_BENCH_QUICK=1` drops to 50,000 for CI
//! smoke runs), sampling process RSS and the monitor's own heap
//! estimate at milestones along the way, then measures both snapshot
//! formats end to end: encode time, artifact size, and restore time —
//! and asserts the binary round-trip is byte-identical before reporting.
//!
//! Output: `results/capacity_bench.json`.
//!
//! Run: `cargo run -p attrition-bench --release --bin capacity_bench`

use attrition_bench::write_result;
use attrition_core::{StabilityMonitor, StabilityParams};
use attrition_store::WindowSpec;
use attrition_types::{Basket, CustomerId, Date, ItemId};
use std::time::Instant;

/// Observed windows per customer: enough to close windows (so trackers
/// carry real histograms), small enough that state size is customer-
/// bound, not history-bound — matching the steady-state serving shape.
const WINDOWS_PER_CUSTOMER: usize = 3;
/// Distinct items each customer buys from, drawn from a 100k catalogue.
const ITEMS_PER_CUSTOMER: usize = 8;
const CATALOGUE: u64 = 100_000;

/// Resident set size of this process in bytes (Linux), from
/// `/proc/self/status` `VmRSS`.
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The customer's deterministic basket for one window: a SplitMix64
/// walk over the catalogue, so neighbouring customers share no items
/// and re-runs are identical.
fn basket_for(customer: u64, window: usize) -> Basket {
    let mut x = customer
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(window as u64);
    let mut items = Vec::with_capacity(ITEMS_PER_CUSTOMER);
    for _ in 0..ITEMS_PER_CUSTOMER {
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        items.push(ItemId::new((x % CATALOGUE) as u32 + 1));
    }
    Basket::new(items)
}

fn main() {
    let quick = std::env::var_os("ATTRITION_BENCH_QUICK").is_some();
    let n_customers: u64 = if quick { 50_000 } else { 1_000_000 };
    let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
    let dates: Vec<Date> = (0..WINDOWS_PER_CUSTOMER)
        .map(|w| Date::from_ymd(2012, 5, 1).unwrap().add_months(w as i32) + 4)
        .collect();

    println!(
        "CAPACITY: growing one monitor to {n_customers} resident customers \
         ({WINDOWS_PER_CUSTOMER} windows × {ITEMS_PER_CUSTOMER} items each{})",
        if quick { ", quick mode" } else { "" }
    );

    let mut monitor = StabilityMonitor::new(spec, StabilityParams::PAPER);
    let milestone_every = (n_customers / 10).max(1);
    let mut milestones = String::new();
    let t_build = Instant::now();
    for customer in 1..=n_customers {
        let id = CustomerId::new(customer);
        for (w, date) in dates.iter().enumerate() {
            // Closed-window results are the serving payload; here they
            // are computed and dropped — the bench measures residency.
            let _ = monitor.ingest(id, *date, &basket_for(customer, w));
        }
        if customer.is_multiple_of(milestone_every) || customer == n_customers {
            let rss = rss_bytes().unwrap_or(0);
            let heap = monitor.heap_bytes();
            println!(
                "  {customer:>9} customers: rss {:>6} MiB, monitor heap est. {:>6} MiB",
                rss >> 20,
                heap >> 20
            );
            if !milestones.is_empty() {
                milestones.push(',');
            }
            milestones.push_str(&format!(
                "{{\"customers\":{customer},\"rss_bytes\":{rss},\"heap_bytes\":{heap}}}"
            ));
        }
    }
    let build_s = t_build.elapsed().as_secs_f64();
    assert_eq!(monitor.num_customers(), n_customers as usize);

    // Snapshot both formats: size, encode time, restore time.
    let t = Instant::now();
    let binary = monitor.snapshot_bytes();
    let binary_encode_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let restored = StabilityMonitor::restore_bytes(&binary).expect("binary snapshot restores");
    let binary_restore_s = t.elapsed().as_secs_f64();
    assert_eq!(restored.num_customers(), n_customers as usize);
    assert_eq!(
        restored.snapshot_bytes(),
        binary,
        "binary round-trip must be byte-identical"
    );
    drop(restored);

    let t = Instant::now();
    let text = monitor.snapshot();
    let text_encode_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let restored = StabilityMonitor::restore(&text).expect("text snapshot restores");
    let text_restore_s = t.elapsed().as_secs_f64();
    assert_eq!(restored.num_customers(), n_customers as usize);
    drop(restored);

    let rss_final = rss_bytes().unwrap_or(0);
    println!(
        "built in {build_s:.1}s; binary snapshot {} MiB \
         (encode {binary_encode_s:.2}s, restore {binary_restore_s:.2}s); \
         text snapshot {} MiB (encode {text_encode_s:.2}s, restore {text_restore_s:.2}s)",
        binary.len() >> 20,
        text.len() >> 20
    );

    let json = format!(
        "{{\n\
         \"config\":{{\"n_customers\":{n_customers},\"windows_per_customer\":{WINDOWS_PER_CUSTOMER},\
         \"items_per_customer\":{ITEMS_PER_CUSTOMER},\"quick\":{quick}}},\n\
         \"milestones\":[{milestones}],\n\
         \"build_seconds\":{build_s:.3},\n\
         \"final_rss_bytes\":{rss_final},\n\
         \"monitor_heap_bytes\":{},\n\
         \"binary_snapshot\":{{\"bytes\":{},\"encode_seconds\":{binary_encode_s:.3},\
         \"restore_seconds\":{binary_restore_s:.3},\"round_trip_byte_identical\":true}},\n\
         \"text_snapshot\":{{\"bytes\":{},\"encode_seconds\":{text_encode_s:.3},\
         \"restore_seconds\":{text_restore_s:.3}}}\n\
         }}\n",
        monitor.heap_bytes(),
        binary.len(),
        text.len(),
    );
    write_result("capacity_bench.json", &json);
}
