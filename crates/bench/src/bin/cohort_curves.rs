//! COHORT — population stability curves and campaign volume.
//!
//! Complements Figure 1 (which plots *discrimination*) with the raw
//! population dynamics: mean stability of the defector cohort vs the
//! loyal cohort per window, plus the fraction of the population a fixed
//! β rule would flag (the retention campaign's volume over time — the
//! operational quantity the paper's retailer budgets against).
//!
//! Run: `cargo run -p attrition-bench --release --bin cohort_curves`

use attrition_bench::{write_result, Prepared};
use attrition_core::{cohort_curves, flag_rate_per_window, StabilityParams};
use attrition_datagen::ScenarioConfig;
use attrition_types::CustomerId;
use attrition_util::chart::{render, ChartConfig, Series};
use attrition_util::csv::CsvWriter;
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn main() {
    let cfg = ScenarioConfig::paper_default();
    let w_months = 2u32;
    let beta = 0.75;
    eprintln!("generating scenario, computing cohort curves…");
    let prepared = Prepared::new(&cfg, w_months, StabilityParams::PAPER);
    let defectors: Vec<CustomerId> = prepared
        .dataset
        .labels
        .labels()
        .iter()
        .filter(|l| l.cohort.is_defector())
        .map(|l| l.customer)
        .collect();
    let curves = cohort_curves(&prepared.matrix, defectors);
    let flag_rates = flag_rate_per_window(&prepared.matrix, beta);

    println!("\nCOHORT: mean stability per cohort and flagged fraction (β = {beta})\n");
    let mut table = Table::new([
        "month",
        "loyal mean stability",
        "defector mean stability",
        "flagged fraction",
    ]);
    for (point, (_, rate)) in curves.iter().zip(&flag_rates) {
        table.row([
            ((point.window.raw() + 1) * w_months).to_string(),
            fmt_f64(point.rest_mean, 3),
            fmt_f64(point.cohort_mean, 3),
            fmt_f64(*rate, 3),
        ]);
    }
    println!("{table}");

    let to_points = |f: &dyn Fn(&attrition_core::CohortPoint) -> f64| -> Vec<(f64, f64)> {
        curves
            .iter()
            .map(|p| (((p.window.raw() + 1) * w_months) as f64, f(p)))
            .collect()
    };
    let chart = render(
        &[
            Series::new("Loyal cohort", 'o', to_points(&|p| p.rest_mean)),
            Series::new("Defector cohort", '*', to_points(&|p| p.cohort_mean)),
        ],
        &ChartConfig {
            width: 72,
            height: 18,
            y_range: Some((0.0, 1.0)),
            vmarks: vec![(cfg.onset_month as f64, "Start of attrition".into())],
            x_label: "Number of months".into(),
            y_label: "Mean stability".into(),
        },
    );
    println!("{chart}");

    let mut csv = CsvWriter::new();
    csv.record(&[
        "window",
        "month",
        "loyal_mean",
        "defector_mean",
        "flagged_fraction",
    ]);
    for (point, (_, rate)) in curves.iter().zip(&flag_rates) {
        csv.record(&[
            &point.window.raw().to_string(),
            &((point.window.raw() + 1) * w_months).to_string(),
            &format!("{:.6}", point.rest_mean),
            &format!("{:.6}", point.cohort_mean),
            &format!("{rate:.6}"),
        ]);
    }
    write_result("cohort_curves.csv", &csv.finish());
}
