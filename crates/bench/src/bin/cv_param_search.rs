//! CV — reproduce the paper's hyper-parameter selection (Section 3.1):
//! "The window length for this experiment is set to two months and the α
//! parameter is set to 2. These values were chosen after performing a
//! 5-fold cross-validation search."
//!
//! Grid: α ∈ {1.25, 1.5, 2, 3, 4} × window ∈ {1, 2, 3, 4} months. For
//! every candidate, customers are split into 5 stratified folds and the
//! early-detection AUROC (mean over the first two windows that end after
//! the onset) is averaged over held-out folds. The stability model has no
//! fitted parameters, so CV here measures the *selection* criterion
//! leak-free, exactly as the paper used it.
//!
//! Run: `cargo run -p attrition-bench --release --bin cv_param_search`

use attrition_bench::{align_labels, write_result, Prepared};
use attrition_core::StabilityParams;
use attrition_datagen::ScenarioConfig;
use attrition_eval::{auroc, grid::product2, StratifiedKFold};
use attrition_store::WindowAlignment;
use attrition_types::{CustomerId, WindowIndex};
use attrition_util::csv::CsvWriter;
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn main() {
    let mut cfg = ScenarioConfig::paper_default();
    // A lighter population keeps the 20-candidate sweep fast while
    // leaving the AUROC ranking stable.
    cfg.n_loyal = 300;
    cfg.n_defectors = 300;
    let alphas = [1.25, 1.5, 2.0, 3.0, 4.0];
    let windows = [1u32, 2, 3, 4];
    let k_folds = 5;

    eprintln!(
        "generating scenario once, sweeping {} candidates…",
        alphas.len() * windows.len()
    );
    let dataset = attrition_datagen::generate(&cfg);
    let onset = cfg.onset_month;

    // All-customer labels in id order (the fold split is shared across
    // candidates so candidates see identical folds).
    let customers: Vec<CustomerId> = dataset.store.customers().collect();
    let labels = align_labels(&dataset.labels, &customers);
    let folds = StratifiedKFold::new(&labels, k_folds, 0xCF);

    let grid = product2(&windows, &alphas);
    let mut results: Vec<(u32, f64, f64)> = Vec::new(); // (w, alpha, cv auroc)
    for (w_months, alpha) in &grid {
        let prepared = Prepared::from_dataset(
            dataset.clone(),
            *w_months,
            StabilityParams::new(*alpha).expect("grid alphas are valid"),
            WindowAlignment::Global,
        );
        // Early-detection windows at a fixed wall-clock budget: every
        // window ending within 4 months after the onset. A fixed *window
        // count* would mechanically favor long windows (more evidence per
        // window) even though they delay detection in calendar time.
        let eval_windows: Vec<u32> = (0..prepared.db.num_windows)
            .filter(|k| {
                let end_month = (k + 1) * w_months;
                end_month > onset && end_month <= onset + 4
            })
            .collect();
        let mut fold_scores = Vec::with_capacity(k_folds);
        for fold in folds.folds() {
            let mut per_window = Vec::new();
            for &k in &eval_windows {
                if k >= prepared.db.num_windows {
                    continue;
                }
                let pairs = prepared.matrix.attrition_scores_at(WindowIndex::new(k));
                // pairs are in customer-id order == `customers` order.
                let scores: Vec<f64> = fold.test.iter().map(|&i| pairs[i].1).collect();
                let fold_labels: Vec<bool> = fold.test.iter().map(|&i| labels[i]).collect();
                let a = auroc(&fold_labels, &scores);
                if !a.is_nan() {
                    per_window.push(a);
                }
            }
            if !per_window.is_empty() {
                fold_scores.push(per_window.iter().sum::<f64>() / per_window.len() as f64);
            }
        }
        let cv = fold_scores.iter().sum::<f64>() / fold_scores.len() as f64;
        results.push((*w_months, *alpha, cv));
    }

    // --- Table: windows × alphas matrix -------------------------------
    println!("\nCV: 5-fold cross-validated early-detection AUROC by (window, α)\n");
    let mut header: Vec<String> = vec!["window \\ α".into()];
    header.extend(alphas.iter().map(|a| format!("{a}")));
    let mut table = Table::new(header);
    for w in &windows {
        let mut row = vec![format!("{w} month(s)")];
        for a in &alphas {
            let score = results
                .iter()
                .find(|(rw, ra, _)| rw == w && ra == a)
                .map(|(_, _, s)| *s)
                .unwrap_or(f64::NAN);
            row.push(fmt_f64(score, 3));
        }
        table.row(row);
    }
    println!("{table}");

    let best = results
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty grid");
    println!(
        "selected: window = {} month(s), α = {}  (CV AUROC {:.3}; paper selected w = 2 months, α = 2)",
        best.0, best.1, best.2
    );

    // --- Artifact ------------------------------------------------------
    let mut csv = CsvWriter::new();
    csv.record(&["window_months", "alpha", "cv_auroc"]);
    for (w, a, s) in &results {
        csv.record(&[&w.to_string(), &a.to_string(), &format!("{s:.6}")]);
    }
    write_result("cv_param_search.csv", &csv.finish());
}
