//! DATA — reproduce the paper's dataset description (Section 3):
//! "The dataset provided by a major French retailer contains anonymized
//! receipts of 6 millions customers, from May 2012 to August 2014. …
//! The dataset contains 4 millions products, that are grouped into
//! 3 388 segments."
//!
//! Prints the synthetic dataset's statistics at product and segment
//! granularity next to the paper's numbers, plus the distributional
//! summaries the paper does not report (basket sizes, trip rates) that
//! characterize the simulator.
//!
//! Run: `cargo run -p attrition-bench --release --bin dataset_stats`

use attrition_bench::write_result;
use attrition_datagen::{generate, ScenarioConfig};
use attrition_store::DatasetStats;
use attrition_util::csv::CsvWriter;
use attrition_util::Table;

fn main() {
    let cfg = ScenarioConfig::paper_default();
    eprintln!("generating the default paper-shaped scenario…");
    let dataset = generate(&cfg);
    let product_stats = DatasetStats::compute(&dataset.store, Some(&dataset.taxonomy));
    let seg_store = dataset.segment_store();
    let segment_stats = DatasetStats::compute(&seg_store, None);

    println!("\nDATA: synthetic dataset vs the paper's description\n");
    let mut table = Table::new(["statistic", "paper", "this repo (synthetic)"]);
    table.row([
        "customers",
        "6,000,000",
        &product_stats.customers.to_string(),
    ]);
    table.row([
        "observation period",
        "May 2012 – Aug 2014",
        &product_stats
            .date_range
            .map(|(lo, hi)| format!("{lo} – {hi}"))
            .unwrap_or_default(),
    ]);
    table.row([
        "span (months)",
        "28",
        &product_stats.span_months.to_string(),
    ]);
    table.row([
        "products",
        "4,000,000",
        &dataset.taxonomy.num_products().to_string(),
    ]);
    table.row([
        "segments",
        "3,388",
        &dataset.taxonomy.num_segments().to_string(),
    ]);
    table.row([
        "cohorts",
        "loyal + defected last 6 months",
        &format!(
            "{} loyal + {} defectors (onset month {})",
            dataset.labels.num_loyal(),
            dataset.labels.num_defectors(),
            cfg.onset_month
        ),
    ]);
    println!("{table}");

    println!("full product-granularity statistics:\n\n{product_stats}");
    println!("segment-granularity statistics (modeling level):\n\n{segment_stats}");

    let mut csv = CsvWriter::new();
    csv.record(&["statistic", "value"]);
    csv.record(&["customers", &product_stats.customers.to_string()]);
    csv.record(&["receipts", &product_stats.receipts.to_string()]);
    csv.record(&["products", &dataset.taxonomy.num_products().to_string()]);
    csv.record(&["segments", &dataset.taxonomy.num_segments().to_string()]);
    csv.record(&["span_months", &product_stats.span_months.to_string()]);
    csv.record(&[
        "mean_basket_size",
        &format!("{:.3}", product_stats.basket_size.mean),
    ]);
    csv.record(&[
        "mean_trips_per_customer",
        &format!("{:.3}", product_stats.trips_per_customer.mean),
    ]);
    write_result("dataset_stats.csv", &csv.finish());
}
