//! LATENCY — detection delay at a fixed false-alarm budget.
//!
//! The paper argues its identification "takes place in the first months
//! of the customer defection"; AUROC alone doesn't show *when*. This
//! experiment operationalizes earliness: pick the threshold β so that at
//! most `fpr_budget` of loyal customers are ever falsely flagged after
//! the onset month, then measure, per defector, how many months pass
//! between the true onset and the first flagged window. Reported for the
//! stability model and the RFM baseline (same protocol, threshold on the
//! out-of-fold probability).
//!
//! Run: `cargo run -p attrition-bench --release --bin detection_latency`

use attrition_bench::{write_result, Prepared};
use attrition_core::StabilityParams;
use attrition_datagen::ScenarioConfig;
use attrition_rfm::{out_of_fold_scores, RfmModel};
use attrition_types::{CustomerId, WindowIndex};
use attrition_util::csv::CsvWriter;
use attrition_util::stats::{quantile, Summary};
use attrition_util::table::fmt_f64;
use attrition_util::Table;
use std::collections::HashMap;

/// Per-customer score series indexed `[window]`, customers in id order.
fn collect_series(prepared: &Prepared, model: Model) -> (Vec<CustomerId>, Vec<Vec<f64>>) {
    let n_windows = prepared.db.num_windows;
    match model {
        Model::Stability => {
            let customers: Vec<CustomerId> = prepared
                .matrix
                .analyses()
                .iter()
                .map(|a| a.customer)
                .collect();
            let series = prepared
                .matrix
                .analyses()
                .iter()
                .map(|a| a.points.iter().map(|p| 1.0 - p.value).collect())
                .collect();
            (customers, series)
        }
        Model::Rfm => {
            let rfm = RfmModel::new(1);
            let mut customers: Vec<CustomerId> = Vec::new();
            let mut by_customer: HashMap<CustomerId, Vec<f64>> = HashMap::new();
            for k in 0..n_windows {
                let rows = rfm.features_at(&prepared.db, WindowIndex::new(k));
                if customers.is_empty() {
                    customers = rows.iter().map(|(c, _)| *c).collect();
                }
                let features: Vec<attrition_rfm::RfmFeatures> =
                    rows.iter().map(|(_, f)| *f).collect();
                let labels = prepared.labels_for(&customers);
                let scores = out_of_fold_scores(&features, &labels, 1, 5, 42);
                for ((c, _), s) in rows.iter().zip(scores) {
                    by_customer.entry(*c).or_default().push(s);
                }
            }
            let series = customers
                .iter()
                .map(|c| by_customer.remove(c).expect("series built"))
                .collect();
            (customers, series)
        }
    }
}

#[derive(Clone, Copy)]
enum Model {
    Stability,
    Rfm,
}

fn main() {
    // Stage timings (windowing, scoring, rfm/eval histograms) of the full
    // run are exported as JSON next to the CSV artifact.
    attrition_obs::set_enabled(true);
    let cfg = ScenarioConfig::paper_default();
    let w_months = 2u32;
    let fpr_budget = 0.10;
    eprintln!("generating scenario, building per-customer score series…");
    let prepared = Prepared::new(&cfg, w_months, StabilityParams::PAPER);
    let onset_window = cfg.onset_month / w_months; // first affected window

    println!(
        "\nLATENCY: months from onset (month {}) to first alarm, at ≤{:.0}% loyal false-alarm rate\n",
        cfg.onset_month,
        fpr_budget * 100.0
    );
    let mut table = Table::new([
        "model",
        "threshold",
        "loyal FPR",
        "defectors detected",
        "median delay (months)",
        "p90 delay",
        "mean delay",
    ]);
    let mut csv = CsvWriter::new();
    csv.record(&[
        "model",
        "threshold",
        "loyal_fpr",
        "detected_fraction",
        "median_delay_months",
        "p90_delay_months",
        "mean_delay_months",
    ]);

    for (name, model) in [("stability", Model::Stability), ("rfm", Model::Rfm)] {
        let (customers, series) = collect_series(&prepared, model);
        let is_defector: Vec<bool> = prepared.labels_for(&customers);
        // Threshold: the (1 − budget) quantile of loyal customers' maximum
        // post-onset score — at most `budget` of loyal customers ever
        // cross it during the evaluation period.
        let loyal_max: Vec<f64> = series
            .iter()
            .zip(&is_defector)
            .filter(|(_, &d)| !d)
            .map(|(s, _)| {
                s[onset_window as usize..]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        let threshold = quantile(&loyal_max, 1.0 - fpr_budget);
        let loyal_fpr =
            loyal_max.iter().filter(|&&m| m > threshold).count() as f64 / loyal_max.len() as f64;

        // Delay per defector: first post-onset window above threshold.
        let mut delays = Vec::new();
        let mut detected = 0usize;
        let mut total_defectors = 0usize;
        for (s, &defector) in series.iter().zip(&is_defector) {
            if !defector {
                continue;
            }
            total_defectors += 1;
            if let Some(offset) = s[onset_window as usize..]
                .iter()
                .position(|&v| v > threshold)
            {
                detected += 1;
                // Delay = end of the flagged window minus the onset month.
                let flagged_window = onset_window + offset as u32;
                delays.push(((flagged_window + 1) * w_months - cfg.onset_month) as f64);
            }
        }
        let summary = Summary::of(&delays);
        table.row([
            name.to_owned(),
            fmt_f64(threshold, 3),
            format!("{:.1}%", loyal_fpr * 100.0),
            format!("{detected}/{total_defectors}"),
            fmt_f64(summary.median, 1),
            fmt_f64(quantile(&delays, 0.9), 1),
            fmt_f64(summary.mean, 2),
        ]);
        csv.record(&[
            name,
            &format!("{threshold:.6}"),
            &format!("{loyal_fpr:.4}"),
            &format!("{:.4}", detected as f64 / total_defectors as f64),
            &format!("{:.2}", summary.median),
            &format!("{:.2}", quantile(&delays, 0.9)),
            &format!("{:.3}", summary.mean),
        ]);
    }
    println!("{table}");
    println!(
        "(delay = months from the true onset to the end of the first flagged window;\n\
         minimum possible is {w_months} — a flag in the very first affected window)"
    );
    write_result("detection_latency.csv", &csv.finish());
    let mut metrics_json = attrition_obs::global().snapshot().to_json();
    metrics_json.push('\n');
    write_result("detection_latency_metrics.json", &metrics_json);
}
