//! LATENCY — detection delay at a fixed false-alarm budget.
//!
//! The paper argues its identification "takes place in the first months
//! of the customer defection"; AUROC alone doesn't show *when*. This
//! experiment operationalizes earliness: pick the threshold β so that at
//! most `fpr_budget` of loyal customers are ever falsely flagged after
//! the onset month, then measure, per defector, how many months pass
//! between the true onset and the first flagged window. Reported for the
//! stability model and the RFM baseline (same protocol, threshold on the
//! out-of-fold probability).
//!
//! Run: `cargo run -p attrition-bench --release --bin detection_latency`

use attrition_bench::{write_result, Prepared};
use attrition_core::StabilityParams;
use attrition_datagen::ScenarioConfig;
use attrition_eval::{detection_latency, LatencyConfig};
use attrition_rfm::{out_of_fold_scores, RfmModel};
use attrition_types::{CustomerId, WindowIndex};
use attrition_util::csv::CsvWriter;
use attrition_util::table::fmt_f64;
use attrition_util::Table;
use std::collections::HashMap;

/// Per-customer score series indexed `[window]`, customers in id order.
fn collect_series(prepared: &Prepared, model: Model) -> (Vec<CustomerId>, Vec<Vec<f64>>) {
    let n_windows = prepared.db.num_windows;
    match model {
        Model::Stability => {
            let customers: Vec<CustomerId> = prepared
                .matrix
                .analyses()
                .iter()
                .map(|a| a.customer)
                .collect();
            let series = prepared
                .matrix
                .analyses()
                .iter()
                .map(|a| a.points.iter().map(|p| 1.0 - p.value).collect())
                .collect();
            (customers, series)
        }
        Model::Rfm => {
            let rfm = RfmModel::new(1);
            let mut customers: Vec<CustomerId> = Vec::new();
            let mut by_customer: HashMap<CustomerId, Vec<f64>> = HashMap::new();
            for k in 0..n_windows {
                let rows = rfm.features_at(&prepared.db, WindowIndex::new(k));
                if customers.is_empty() {
                    customers = rows.iter().map(|(c, _)| *c).collect();
                }
                let features: Vec<attrition_rfm::RfmFeatures> =
                    rows.iter().map(|(_, f)| *f).collect();
                let labels = prepared.labels_for(&customers);
                let scores = out_of_fold_scores(&features, &labels, 1, 5, 42);
                for ((c, _), s) in rows.iter().zip(scores) {
                    by_customer.entry(*c).or_default().push(s);
                }
            }
            let series = customers
                .iter()
                .map(|c| by_customer.remove(c).expect("series built"))
                .collect();
            (customers, series)
        }
    }
}

#[derive(Clone, Copy)]
enum Model {
    Stability,
    Rfm,
}

fn main() {
    // Stage timings (windowing, scoring, rfm/eval histograms) of the full
    // run are exported as JSON next to the CSV artifact.
    attrition_obs::set_enabled(true);
    let cfg = ScenarioConfig::paper_default();
    let w_months = 2u32;
    let fpr_budget = 0.10;
    eprintln!("generating scenario, building per-customer score series…");
    let prepared = Prepared::new(&cfg, w_months, StabilityParams::PAPER);
    let onset_window = cfg.onset_month / w_months; // first affected window

    println!(
        "\nLATENCY: months from onset (month {}) to first alarm, at ≤{:.0}% loyal false-alarm rate\n",
        cfg.onset_month,
        fpr_budget * 100.0
    );
    let mut table = Table::new([
        "model",
        "threshold",
        "loyal FPR",
        "defectors detected",
        "median delay (months)",
        "p90 delay",
        "mean delay",
    ]);
    let mut csv = CsvWriter::new();
    csv.record(&[
        "model",
        "threshold",
        "loyal_fpr",
        "detected_fraction",
        "median_delay_months",
        "p90_delay_months",
        "mean_delay_months",
    ]);

    for (name, model) in [("stability", Model::Stability), ("rfm", Model::Rfm)] {
        let (customers, series) = collect_series(&prepared, model);
        let is_defector: Vec<bool> = prepared.labels_for(&customers);
        // Shared protocol (attrition-eval::latency): threshold at the
        // (1 − budget) quantile of loyal customers' maximum post-onset
        // score, delay = end of the first flagged window minus the onset.
        let onsets: Vec<Option<u32>> = is_defector
            .iter()
            .map(|&d| d.then_some(cfg.onset_month))
            .collect();
        let out = detection_latency(
            &series,
            &onsets,
            &LatencyConfig {
                fpr_budget,
                w_months,
                eval_from_window: onset_window,
            },
        );
        table.row([
            name.to_owned(),
            fmt_f64(out.threshold, 3),
            format!("{:.1}%", out.loyal_fpr * 100.0),
            format!("{}/{}", out.detected, out.num_defectors),
            fmt_f64(out.median_delay, 1),
            fmt_f64(out.p90_delay, 1),
            fmt_f64(out.mean_delay, 2),
        ]);
        csv.record(&[
            name,
            &format!("{:.6}", out.threshold),
            &format!("{:.4}", out.loyal_fpr),
            &format!("{:.4}", out.detected_fraction()),
            &format!("{:.2}", out.median_delay),
            &format!("{:.2}", out.p90_delay),
            &format!("{:.3}", out.mean_delay),
        ]);
    }
    println!("{table}");
    println!(
        "(delay = months from the true onset to the end of the first flagged window;\n\
         minimum possible is {w_months} — a flag in the very first affected window)"
    );
    write_result("detection_latency.csv", &csv.finish());
    let mut metrics_json = attrition_obs::global().snapshot().to_json();
    metrics_json.push('\n');
    write_result("detection_latency_metrics.json", &metrics_json);
}
