//! FIG1 — reproduce Figure 1: "Performance of the attrition detection."
//!
//! AUROC of defector-vs-loyal discrimination per window, for the
//! stability model and the RFM baseline, on the paper-shaped scenario:
//! 28 months from May 2012, defection onset at month 18, window length
//! two months, α = 2 (the paper's cross-validated choices).
//!
//! Paper reference points: both models ≈ chance before the onset; "Two
//! months after the start of attrition, our model scores an AUROC of
//! 0.79"; stability and RFM comparable thereafter.
//!
//! Run: `cargo run -p attrition-bench --release --bin fig1_auroc`

use attrition_bench::{
    auroc_series_csv, rfm_auroc_series, stability_auroc_series, write_result, Prepared,
};
use attrition_core::StabilityParams;
use attrition_datagen::ScenarioConfig;
use attrition_util::chart::{render, ChartConfig, Series};
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn main() {
    let cfg = ScenarioConfig::paper_default();
    let w_months = 2u32;
    let onset_month = cfg.onset_month;
    eprintln!(
        "generating scenario: {} loyal + {} defectors, {} months, onset at month {onset_month}…",
        cfg.n_loyal, cfg.n_defectors, cfg.n_months
    );
    let prepared = Prepared::new(&cfg, w_months, StabilityParams::PAPER);
    eprintln!(
        "dataset: {} receipts, {} customers, {} windows",
        prepared.seg_store.num_receipts(),
        prepared.seg_store.num_customers(),
        prepared.db.num_windows
    );

    let windows = 0..prepared.db.num_windows;
    let stability = stability_auroc_series(&prepared, windows.clone());
    let rfm = rfm_auroc_series(&prepared, windows, 1, 5, 42);

    // --- Table ------------------------------------------------------
    let mut table = Table::new([
        "month",
        "window",
        "stability AUROC",
        "95% CI",
        "RFM AUROC",
        "95% CI",
    ]);
    for (s, r) in stability.iter().zip(&rfm) {
        table.row([
            s.month.to_string(),
            s.window.to_string(),
            fmt_f64(s.auroc, 3),
            format!("[{}, {}]", fmt_f64(s.ci_lo, 3), fmt_f64(s.ci_hi, 3)),
            fmt_f64(r.auroc, 3),
            format!("[{}, {}]", fmt_f64(r.ci_lo, 3), fmt_f64(r.ci_hi, 3)),
        ]);
    }
    println!("\nFIG1: AUROC of attrition detection per window (onset at month {onset_month})\n");
    println!("{table}");

    // --- Headline ----------------------------------------------------
    let headline_month = onset_month + 2;
    if let Some(point) = stability.iter().find(|p| p.month == headline_month) {
        println!(
            "headline: stability AUROC at month {headline_month} (two months after onset) = {:.3}  (paper: 0.79)",
            point.auroc
        );
    }

    // --- Paired model comparison (paper: "similar performances") -----
    // DeLong's paired test on the shared customers, per post-onset window.
    println!("\npaired DeLong test, stability vs RFM (post-onset windows):");
    let rfm_model = attrition_rfm::RfmModel::new(1);
    for k in (0..prepared.db.num_windows).filter(|k| (k + 1) * w_months > onset_month) {
        let widx = attrition_types::WindowIndex::new(k);
        let stab_pairs = prepared.matrix.attrition_scores_at(widx);
        let rfm_rows = rfm_model.features_at(&prepared.db, widx);
        // Same customer order by construction (both walk the db).
        let customers: Vec<_> = stab_pairs.iter().map(|(c, _)| *c).collect();
        let labels = prepared.labels_for(&customers);
        let stab_scores: Vec<f64> = stab_pairs.iter().map(|(_, s)| *s).collect();
        let rfm_features: Vec<attrition_rfm::RfmFeatures> =
            rfm_rows.iter().map(|(_, f)| *f).collect();
        let rfm_scores = attrition_rfm::out_of_fold_scores(&rfm_features, &labels, 1, 5, 42);
        match attrition_eval::delong_paired_test(&labels, &stab_scores, &rfm_scores) {
            Some(t) => println!(
                "  month {:>2}: ΔAUC = {:+.3}  z = {:+.2}  p = {:.2e}{}",
                (k + 1) * w_months,
                t.delta,
                t.z,
                t.p_value,
                if t.p_value < 0.05 {
                    "  (significant)"
                } else {
                    ""
                }
            ),
            None => println!("  month {:>2}: degenerate", (k + 1) * w_months),
        }
    }

    // --- Figure ------------------------------------------------------
    // The paper plots months 12–24; clip the chart to the same range.
    let clip = |pts: &[attrition_bench::AurocPoint]| -> Vec<(f64, f64)> {
        pts.iter()
            .filter(|p| (12..=24).contains(&p.month))
            .map(|p| (p.month as f64, p.auroc))
            .collect()
    };
    let chart = render(
        &[
            Series::new("Stability model", '*', clip(&stability)),
            Series::new("RFM model", 'o', clip(&rfm)),
        ],
        &ChartConfig {
            width: 72,
            height: 20,
            y_range: Some((0.0, 1.0)),
            vmarks: vec![(onset_month as f64, "Start of attrition".into())],
            x_label: "Number of months".into(),
            y_label: "AUROC".into(),
        },
    );
    println!("{chart}");

    // --- Artifacts ---------------------------------------------------
    let csv = auroc_series_csv(&["stability", "rfm"], &[&stability, &rfm]);
    write_result("fig1_auroc.csv", &csv);
}
