//! FIG2 — reproduce Figure 2: "Defecting customer stability value example."
//!
//! One scripted defecting customer: loyal through month 19, stops buying
//! **coffee** in month 20 ("Coffee loss") and **milk, sponges and
//! cheese** in month 22 ("Milk, sponge and cheese loss"). The experiment
//! plots their stability trajectory and prints, for every window where
//! the stability dropped, the model's lost-product explanation — the
//! actionable knowledge of Section 3.2.
//!
//! Run: `cargo run -p attrition-bench --release --bin fig2_case_study`

use attrition_bench::write_result;
use attrition_core::{analyze_customer, StabilityParams};
use attrition_datagen::{figure2_customer, generate, ScenarioConfig, Simulator};
use attrition_store::{project_to_segments, WindowAlignment, WindowSpec, WindowedDatabase};
use attrition_types::{CustomerId, SegmentId};
use attrition_util::chart::{render, ChartConfig, Series};
use attrition_util::csv::CsvWriter;
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn main() {
    let cfg = ScenarioConfig::paper_default();
    let w_months = 2u32;
    let coffee_loss_month = 20u32;
    eprintln!("generating catalog and scripted Figure-2 customer…");
    let dataset = generate(&cfg);

    // Simulate the scripted customer over the same observation period.
    let customer = CustomerId::new(1_000_000);
    let profile = figure2_customer(&dataset.taxonomy, customer, coffee_loss_month);
    let sim = Simulator::new(
        cfg.start,
        cfg.n_months,
        cfg.seasonality.clone(),
        cfg.seed ^ 0xF16,
    );
    let store = sim.run(&[profile], &dataset.taxonomy);
    let seg_store = project_to_segments(&store, &dataset.taxonomy)
        .expect("simulated receipts reference cataloged products");

    let spec = WindowSpec::months(cfg.start, w_months);
    let db = WindowedDatabase::from_store(
        &seg_store,
        spec,
        cfg.n_months.div_ceil(w_months),
        WindowAlignment::Global,
    );
    let windows = db.customer(customer).expect("customer was simulated");
    let analysis = analyze_customer(windows, StabilityParams::PAPER, 4);

    let seg_name = |raw: u32| -> String {
        dataset
            .taxonomy
            .segment(SegmentId::new(raw))
            .map(|s| s.name.clone())
            .unwrap_or_else(|_| format!("segment {raw}"))
    };

    // --- Table ------------------------------------------------------
    println!("\nFIG2: stability trajectory of the scripted defecting customer\n");
    let mut table = Table::new([
        "month",
        "window",
        "stability",
        "explanation (lost products, share)",
    ]);
    for (point, expl) in analysis.points.iter().zip(&analysis.explanations) {
        let month = (point.window.raw() + 1) * w_months;
        let drop_note: String = expl
            .lost
            .iter()
            .filter(|l| l.share >= 0.04)
            .map(|l| format!("{} ({:.0}%)", seg_name(l.item.raw()), l.share * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        table.row([
            month.to_string(),
            point.window.to_string(),
            fmt_f64(point.value, 3),
            drop_note,
        ]);
    }
    println!("{table}");

    // --- Narrative check against the paper ---------------------------
    let value_at = |month: u32| -> f64 {
        let k = (month / w_months - 1) as usize;
        analysis.points[k].value
    };
    let expl_at = |month: u32| -> Vec<String> {
        let k = (month / w_months - 1) as usize;
        analysis.explanations[k]
            .lost
            .iter()
            .filter(|l| l.share >= 0.04)
            .map(|l| seg_name(l.item.raw()))
            .collect()
    };
    // Window ending at coffee_loss_month+2 contains months 20–21 (coffee
    // already gone); window ending +4 contains 22–23 (milk/sponge/cheese
    // gone as well).
    println!(
        "month {}: stability {:.3}, lost: {:?}   (paper: coffee loss)",
        coffee_loss_month + 2,
        value_at(coffee_loss_month + 2),
        expl_at(coffee_loss_month + 2)
    );
    println!(
        "month {}: stability {:.3}, lost: {:?}   (paper: milk, sponge and cheese loss)",
        coffee_loss_month + 4,
        value_at(coffee_loss_month + 4),
        expl_at(coffee_loss_month + 4)
    );

    // --- Figure ------------------------------------------------------
    let points: Vec<(f64, f64)> = analysis
        .points
        .iter()
        .map(|p| (((p.window.raw() + 1) * w_months) as f64, p.value))
        .collect();
    let chart = render(
        &[Series::new("Stability value", '*', points)],
        &ChartConfig {
            width: 72,
            height: 18,
            y_range: Some((0.0, 1.0)),
            vmarks: vec![
                ((coffee_loss_month + 2) as f64, "Coffee loss".into()),
                (
                    (coffee_loss_month + 4) as f64,
                    "Milk, sponge and cheese loss".into(),
                ),
            ],
            x_label: "Number of months".into(),
            y_label: "Stability value".into(),
        },
    );
    println!("{chart}");

    // --- Artifacts ---------------------------------------------------
    let mut csv = CsvWriter::new();
    csv.record(&["window", "month", "stability", "top_lost_segments"]);
    for (point, expl) in analysis.points.iter().zip(&analysis.explanations) {
        let month = (point.window.raw() + 1) * w_months;
        let lost: Vec<String> = expl
            .lost
            .iter()
            .filter(|l| l.share >= 0.04)
            .map(|l| seg_name(l.item.raw()))
            .collect();
        csv.record(&[
            &point.window.raw().to_string(),
            &month.to_string(),
            &format!("{:.6}", point.value),
            &lost.join("; "),
        ]);
    }
    write_result("fig2_case_study.csv", &csv.finish());
}
