//! KERNEL — significance-kernel microbenchmark, tracked across PRs.
//!
//! The stability score's inner loop is `total_significance()` (the
//! denominator recomputed per customer per window in every workload:
//! batch engine, streaming monitor, serve shards). This bench pins its
//! cost at repertoire sizes 10/100/1k/10k and measures the
//! count-histogram kernel against the pre-histogram per-item `powi`
//! recomputation (`total_significance_naive`, kept in-tree precisely as
//! this baseline), writing `results/kernel_bench.json` so the perf
//! trajectory is tracked from the PR that introduced the histogram
//! onward.
//!
//! Run: `cargo run -p attrition-bench --release --bin kernel_bench`
//! (`ATTRITION_BENCH_QUICK=1` shrinks the time budget ~10× for CI smoke
//! runs; the same sizes are still measured).

use attrition_bench::micro::{black_box, Runner};
use attrition_bench::write_result;
use attrition_core::{SignificanceTracker, StabilityParams};
use attrition_types::{Basket, ItemId};
use attrition_util::Rng;

/// Windows folded into each tracker before measuring — the paper's
/// 2-year horizon at monthly windows.
const WINDOWS: u32 = 24;

/// A tracker over `repertoire` distinct items with a spread count
/// histogram: every item appears in window 0 (so `num_tracked ==
/// repertoire`), then recurs with a per-item persistent probability.
/// Returns the tracker and a typical window's basket for numerator
/// measurements.
fn build_tracker(repertoire: u32, seed: u64) -> (SignificanceTracker, Basket) {
    let mut rng = Rng::seed_from_u64(seed);
    let probs: Vec<f64> = (0..repertoire).map(|_| rng.f64_in(0.1, 1.0)).collect();
    let mut tracker = SignificanceTracker::new(StabilityParams::PAPER);
    let mut last = Basket::empty();
    for window in 0..WINDOWS {
        let items: Vec<ItemId> = (0..repertoire)
            .filter(|&i| window == 0 || rng.f64() < probs[i as usize])
            .map(ItemId::new)
            .collect();
        let basket = Basket::new(items);
        tracker.observe_window(&basket);
        last = basket;
    }
    (tracker, last)
}

struct SizeResult {
    repertoire: u32,
    tracked: usize,
    hist_buckets: usize,
    total_hist_ns: f64,
    total_naive_ns: f64,
    window_score_ns: f64,
}

fn main() {
    let quick = std::env::var("ATTRITION_BENCH_QUICK").is_ok_and(|v| v != "0");
    let available_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nKERNEL: total_significance() — count-histogram vs per-item powi \
         ({WINDOWS} windows, α = 2)\n"
    );

    let mut results: Vec<SizeResult> = Vec::new();
    for &repertoire in &[10u32, 100, 1_000, 10_000] {
        let (tracker, window) = build_tracker(repertoire, 0xBEEF + repertoire as u64);
        // Histogram and naive totals must agree (ULP-level: the naive
        // path sums in hash-map order) before timing means anything.
        let (hist_total, naive_total) = (
            tracker.total_significance(),
            tracker.total_significance_naive(),
        );
        assert!(
            (hist_total - naive_total).abs() <= 1e-9 * hist_total.max(1.0),
            "kernel mismatch at repertoire {repertoire}: {hist_total} vs {naive_total}"
        );

        let mut runner = Runner::group(&format!("kernel/repertoire_{repertoire}"));
        let total_hist_ns = runner
            .bench("total_significance (histogram)", || {
                black_box(tracker.total_significance())
            })
            .min_ns;
        let total_naive_ns = runner
            .bench("total_significance (naive per-item)", || {
                black_box(tracker.total_significance_naive())
            })
            .min_ns;
        // Full per-window scoring cost: numerator over a typical basket
        // plus the denominator — what batch/monitor/serve pay per
        // (customer, window).
        let window_score_ns = runner
            .bench("score_window (present + total)", || {
                black_box(tracker.present_significance(&window) / tracker.total_significance())
            })
            .min_ns;
        results.push(SizeResult {
            repertoire,
            tracked: tracker.num_tracked(),
            hist_buckets: tracker.count_histogram().len(),
            total_hist_ns,
            total_naive_ns,
            window_score_ns,
        });
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"repertoire\": {}, \"tracked\": {}, \"hist_buckets\": {}, \
                 \"total_hist_ns\": {:.1}, \"total_naive_ns\": {:.1}, \
                 \"speedup_total\": {:.2}, \"window_score_ns\": {:.1}}}",
                r.repertoire,
                r.tracked,
                r.hist_buckets,
                r.total_hist_ns,
                r.total_naive_ns,
                r.total_naive_ns / r.total_hist_ns,
                r.window_score_ns
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernel_bench\",\n  \"windows\": {WINDOWS},\n  \
         \"alpha\": 2.0,\n  \"available_parallelism\": {available_parallelism},\n  \
         \"quick\": {quick},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    write_result("kernel_bench.json", &json);

    for r in &results {
        println!(
            "repertoire {:>6}: histogram {:>9.1} ns  naive {:>11.1} ns  \
             speedup {:>7.1}x  ({} buckets)",
            r.repertoire,
            r.total_hist_ns,
            r.total_naive_ns,
            r.total_naive_ns / r.total_hist_ns,
            r.hist_buckets
        );
    }
    let at_1k = results
        .iter()
        .find(|r| r.repertoire == 1_000)
        .expect("1k size always measured");
    let speedup = at_1k.total_naive_ns / at_1k.total_hist_ns;
    assert!(
        speedup >= 5.0,
        "kernel regression: histogram total_significance is only {speedup:.1}x \
         the naive per-item recomputation at repertoire 1k (contract: ≥5x)"
    );
    println!("\nspeedup at repertoire 1k: {speedup:.1}x (contract: ≥5x) — OK");
}
