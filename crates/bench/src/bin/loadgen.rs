//! LOADGEN — paced load generator and saturation sweep for the online
//! scoring server.
//!
//! **Replay mode** (default): replays a datagen scenario's receipts
//! chronologically over the TCP line protocol at a target request rate,
//! spreading requests over several connections, then fills the
//! remaining run time with `SCORE` reads. With `--scenario NAME` the
//! workload comes from the named scenario-library simulation and the
//! uniform pacer is replaced by the scenario's own arrival process: the
//! simulated timeline is mapped onto the run (mean rate still `--rps`),
//! so promo bursts, closure dips and seasonal swings show up as real
//! traffic non-uniformity instead of a constant inter-arrival gap. An optional warmup phase runs
//! first at the same rate and is excluded from the percentiles, so p99
//! is not polluted by cold caches and connection setup. Reports
//! per-request latency percentiles, the achieved rate, sample counts,
//! the protocol error count, and the resilience counters (`ERR busy`
//! rejections absorbed and retries spent), both as a table and as
//! `results/<name>.json` (machine-readable, consumed by CI). With
//! `--batch N` (N > 1) ops are sent as `BATCH` frames of N members and
//! each sample is one frame round-trip.
//!
//! **Sweep mode** (`--sweep`): for each (batch size, shard count) in
//! {1, 8, 64, 256} × {1, 8}, steps the target rate up by ×1.6 until the
//! achieved rate falls under 92% of target or the error rate passes 1%,
//! and records the last sustained step as that config's saturation
//! point — max sustainable RPS, p50/p95/p99 at saturation, and the
//! per-batch/per-op fsync counts — into `results/throughput_sweep.json`.
//! Batch sizes > 1 use the pipelined client (bounded in-flight window);
//! batch size 1 is the status-quo one-op-per-round-trip baseline. The
//! sweep always runs the durability stack on a scratch WAL dir
//! (checkpoint triggers disabled so the numbers isolate append + group
//! commit). `ATTRITION_BENCH_QUICK=1` shrinks it to {1, 64} × {2} with
//! short slices for CI smoke jobs.
//!
//! Run: `cargo run -p attrition-bench --release --bin loadgen --
//!       [--addr HOST:PORT] [--rps 500] [--duration-secs 5]
//!       [--warmup-secs 1] [--batch 1] [--pipeline 4] [--sweep]
//!       [--connections 4] [--customers 200] [--seed 7] [--shutdown]
//!       [--scenario NAME] [--wal-dir DIR] [--sync-policy always]
//!       [--results NAME]`
//!
//! (`--duration-s` is kept as an alias of `--duration-secs`.)

use attrition_bench::write_result;
use attrition_core::StabilityParams;
use attrition_datagen::{run_scenario, ScenarioConfig, ScenarioId};
use attrition_serve::server::{self, DurabilityConfig, ServerConfig};
use attrition_serve::{Client, Pipeline, Reply, RetryPolicy, SyncPolicy};
use attrition_store::{chronological, WindowSpec};
use attrition_types::Date;
use attrition_util::stats::quantile_sorted;
use attrition_util::Table;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Flags {
    addr: Option<String>,
    rps: f64,
    duration: Duration,
    warmup: Duration,
    batch: usize,
    pipeline: usize,
    sweep: bool,
    connections: usize,
    customers: usize,
    seed: u64,
    shutdown: bool,
    scenario: Option<ScenarioId>,
    wal_dir: Option<String>,
    sync_policy: SyncPolicy,
    results: String,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        addr: None,
        rps: 500.0,
        duration: Duration::from_secs(5),
        warmup: Duration::ZERO,
        batch: 1,
        pipeline: 4,
        sweep: false,
        connections: 4,
        customers: 200,
        seed: 7,
        shutdown: false,
        scenario: None,
        wal_dir: None,
        sync_policy: SyncPolicy::Always,
        results: "serve_latency".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => flags.addr = Some(value("--addr")),
            "--rps" => flags.rps = value("--rps").parse().expect("--rps"),
            "--duration-s" | "--duration-secs" => {
                flags.duration = Duration::from_secs_f64(
                    value("--duration-secs").parse().expect("--duration-secs"),
                )
            }
            "--warmup-secs" => {
                flags.warmup =
                    Duration::from_secs_f64(value("--warmup-secs").parse().expect("--warmup-secs"))
            }
            "--batch" => flags.batch = value("--batch").parse().expect("--batch"),
            "--pipeline" => flags.pipeline = value("--pipeline").parse().expect("--pipeline"),
            "--sweep" => flags.sweep = true,
            "--connections" => {
                flags.connections = value("--connections").parse().expect("--connections")
            }
            "--customers" => flags.customers = value("--customers").parse().expect("--customers"),
            "--seed" => flags.seed = value("--seed").parse().expect("--seed"),
            "--shutdown" => flags.shutdown = true,
            "--scenario" => {
                let name = value("--scenario");
                flags.scenario = Some(ScenarioId::parse(&name).unwrap_or_else(|| {
                    let known: Vec<&str> = ScenarioId::ALL.iter().map(|i| i.name()).collect();
                    panic!(
                        "--scenario: unknown {name:?} (one of: {})",
                        known.join(", ")
                    )
                }));
            }
            "--wal-dir" => flags.wal_dir = Some(value("--wal-dir")),
            "--sync-policy" => {
                flags.sync_policy =
                    SyncPolicy::parse(&value("--sync-policy")).expect("--sync-policy")
            }
            "--results" => flags.results = value("--results"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    assert!(flags.rps > 0.0, "--rps must be positive");
    assert!(flags.connections > 0, "--connections must be at least 1");
    assert!(flags.batch >= 1, "--batch must be at least 1");
    assert!(flags.pipeline >= 1, "--pipeline must be at least 1");
    flags
}

/// One replayable request: an ingest line or a score read.
enum Op {
    Ingest {
        customer: u64,
        date: Date,
        items: Vec<u32>,
    },
    Score {
        customer: u64,
    },
}

impl Op {
    fn line(&self) -> String {
        match self {
            Op::Ingest {
                customer,
                date,
                items,
            } => {
                let mut line = format!("INGEST {customer} {date}");
                for item in items {
                    line.push(' ');
                    line.push_str(&item.to_string());
                }
                line
            }
            Op::Score { customer } => format!("SCORE {customer}"),
        }
    }
}

/// What one timed phase (warmup or measured) observed.
#[derive(Default)]
struct Phase {
    ops: u64,
    ingests: u64,
    errors: u64,
    busy_rejections: u64,
    retries: u64,
    /// One sample per round-trip: a single op, or a whole frame when
    /// batching.
    latencies_ms: Vec<f64>,
    elapsed: Duration,
}

impl Phase {
    fn achieved_rps(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn percentiles(&mut self) -> (f64, f64, f64, f64) {
        self.latencies_ms.sort_by(|a, b| a.total_cmp(b));
        let pct = |q: f64| quantile_sorted(&self.latencies_ms, q);
        let max = self.latencies_ms.last().copied().unwrap_or(f64::NAN);
        (pct(0.50), pct(0.95), pct(0.99), max)
    }
}

fn main() {
    let flags = parse_flags();
    if flags.sweep {
        run_sweep(&flags);
        return;
    }
    run_replay(&flags);
}

// ---------------------------------------------------------------------------
// Replay mode
// ---------------------------------------------------------------------------

/// Per-op arrival offsets for `--scenario` mode: the simulated timeline
/// mapped onto the replay, at day resolution. Each simulated day owns a
/// fixed-width slice of the replay and its receipts are spread across
/// that slice, so a day with 3× the trips runs at 3× the instantaneous
/// rate — the scenario's bursts and dips become real traffic shape
/// while the mean rate stays at `--rps`.
fn scenario_schedule(dates: &[Date], rps: f64) -> Vec<f64> {
    if dates.is_empty() {
        return Vec::new();
    }
    // Monotone day key (months are at most 31 days, so gaps between
    // short months only shift slice boundaries, never reorder them).
    let origin = dates[0].first_of_month();
    let key = |d: Date| d.months_since(origin) as i64 * 31 + d.day() as i64 - 1;
    let first = key(dates[0]);
    let span = (key(*dates.last().unwrap()) - first + 1) as f64;
    let replay_secs = dates.len() as f64 / rps;
    let mut offsets = Vec::with_capacity(dates.len());
    let mut i = 0;
    while i < dates.len() {
        let day = key(dates[i]);
        let n = dates[i..].iter().take_while(|d| key(**d) == day).count();
        for j in 0..n {
            let within = (j as f64 + 0.5) / n as f64;
            offsets.push(((day - first) as f64 + within) / span * replay_secs);
        }
        i += n;
    }
    offsets
}

fn run_replay(flags: &Flags) {
    // The replay workload: receipts globally date-sorted (per-customer
    // order is what the server enforces) — from the legacy two-cohort
    // generator, or from a scenario-library simulation with its own
    // arrival schedule when `--scenario` is given.
    let quick = std::env::var("ATTRITION_BENCH_QUICK").is_ok();
    let (seg_store, start_date, workload) = match flags.scenario {
        Some(id) => {
            let run = run_scenario(id, flags.seed, quick);
            let label = format!("scenario {}", run.name());
            (run.segment_store(), run.start, label)
        }
        None => {
            let mut cfg = ScenarioConfig::small();
            cfg.seed = flags.seed;
            cfg.n_loyal = flags.customers / 2;
            cfg.n_defectors = flags.customers - flags.customers / 2;
            let dataset = attrition_datagen::generate(&cfg);
            (dataset.segment_store(), cfg.start, "cohort replay".into())
        }
    };
    let dates: Vec<Date> = chronological(&seg_store).map(|r| r.date).collect();
    let ops: Vec<Op> = chronological(&seg_store)
        .map(|r| Op::Ingest {
            customer: r.customer.raw(),
            date: r.date,
            items: r.items.iter().map(|i| i.raw()).collect(),
        })
        .collect();
    // In scenario mode each replay op carries its own due time; the
    // uniform pacer takes over for the SCORE fill past the replay end.
    let schedule: Vec<f64> = if flags.scenario.is_some() {
        scenario_schedule(&dates, flags.rps)
    } else {
        Vec::new()
    };
    let customer_ids: Vec<u64> = {
        let mut ids: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Ingest { customer, .. } => Some(*customer),
                Op::Score { .. } => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };

    // Target: an external server, or an in-process one on loopback
    // (with the durability stack when --wal-dir is given).
    let durable = flags.wal_dir.is_some();
    let (addr, _server) = match &flags.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let spec = WindowSpec::months(start_date, 1);
            let mut config = ServerConfig::new("127.0.0.1:0", spec, StabilityParams::PAPER);
            if let Some(dir) = &flags.wal_dir {
                let mut dcfg = DurabilityConfig::new(dir);
                dcfg.sync_policy = flags.sync_policy;
                config.durability = Some(dcfg);
            }
            let handle = server::start(config).expect("in-process server must start");
            (handle.local_addr().to_string(), Some(handle))
        }
    };
    eprintln!(
        "loadgen [{workload}]: {} receipts from {} customers → {} at {} req/s over {} connections for {:?} (warmup {:?}, batch {}){}",
        ops.len(),
        customer_ids.len(),
        addr,
        flags.rps,
        flags.connections,
        flags.duration,
        flags.warmup,
        flags.batch,
        if durable {
            format!(" (durable, sync-policy {})", flags.sync_policy)
        } else {
            String::new()
        }
    );

    // One retry policy per connection, seeds decorrelated so their
    // backoff jitter does not re-stampede the server in lockstep.
    let policies: Vec<RetryPolicy> = (0..flags.connections)
        .map(|i| RetryPolicy {
            seed: flags.seed ^ (0x9E37_79B9 + i as u64),
            ..RetryPolicy::default()
        })
        .collect();
    let mut clients: Vec<Client> = (0..flags.connections)
        .map(|i| {
            Client::connect_retrying(&addr, Duration::from_secs(10), &policies[i])
                .expect("connect to server")
        })
        .collect();

    // The op stream: the receipt replay (each op carrying its scenario
    // due time, when there is one), then SCORE reads forever.
    let mut ops_iter = ops.into_iter().zip(
        schedule
            .into_iter()
            .map(Some)
            .chain(std::iter::repeat(None)),
    );
    let mut issued = 0u64;
    let mut next_op = move || -> (Op, Option<f64>) {
        let (op, at) = ops_iter.next().unwrap_or_else(|| {
            (
                Op::Score {
                    customer: customer_ids[issued as usize % customer_ids.len()],
                },
                None,
            )
        });
        issued += 1;
        (op, at)
    };

    // Paced closed-loop phases: request i is due at start + i/rps, or at
    // its scenario arrival offset when the workload carries one. Warmup
    // first (samples discarded), then the measured window.
    let mut run_phase = |clients: &mut Vec<Client>, duration: Duration| -> Phase {
        let mut phase = Phase::default();
        let started = Instant::now();
        let mut members: Vec<String> = Vec::with_capacity(flags.batch);
        let pace = |phase: &Phase, started: Instant, at: Option<f64>| -> bool {
            let due = match at {
                Some(secs) => started + Duration::from_secs_f64(secs),
                None => started + Duration::from_secs_f64(phase.ops as f64 / flags.rps),
            };
            let now = Instant::now();
            if now < due {
                std::thread::sleep(due - now);
            }
            started.elapsed() < duration
        };
        loop {
            if started.elapsed() >= duration {
                break;
            }
            let slot = phase.ops as usize % flags.connections;
            if flags.batch <= 1 {
                let (op, at) = next_op();
                if !pace(&phase, started, at) {
                    break;
                }
                if matches!(op, Op::Ingest { .. }) {
                    phase.ingests += 1;
                }
                let line = op.line();
                let t0 = Instant::now();
                let (reply, attempt_stats) = clients[slot]
                    .send_retrying(&line, &policies[slot])
                    .expect("transport error talking to server");
                phase.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                phase.ops += 1;
                phase.busy_rejections += attempt_stats.busy_rejections as u64;
                phase.retries += attempt_stats.retries as u64;
                // An `ERR unknown customer` is only possible before that
                // customer's first ingest reached the server — not with
                // this workload, so any surviving ERR is a real protocol
                // failure (`ERR busy` past the retry budget included: it
                // means the server shed load faster than the budget
                // could absorb).
                if let Reply::Err(message) = reply {
                    phase.errors += 1;
                    eprintln!("loadgen: ERR {message}");
                }
            } else {
                members.clear();
                let mut first_at = None;
                for k in 0..flags.batch {
                    let (op, at) = next_op();
                    if k == 0 {
                        first_at = at;
                    }
                    if matches!(op, Op::Ingest { .. }) {
                        phase.ingests += 1;
                    }
                    members.push(op.line());
                }
                if !pace(&phase, started, first_at) {
                    break;
                }
                let t0 = Instant::now();
                let replies = clients[slot]
                    .send_batch(&members)
                    .expect("transport error talking to server");
                phase.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                phase.ops += members.len() as u64;
                for reply in replies {
                    if let Reply::Err(message) = reply {
                        phase.errors += 1;
                        eprintln!("loadgen: ERR {message}");
                    }
                }
            }
        }
        phase.elapsed = started.elapsed();
        phase
    };

    let warmup = if flags.warmup > Duration::ZERO {
        run_phase(&mut clients, flags.warmup)
    } else {
        Phase::default()
    };
    let mut measured = run_phase(&mut clients, flags.duration);
    let achieved_rps = measured.achieved_rps();

    if flags.shutdown {
        let reply = clients[0].send("SHUTDOWN").expect("shutdown rpc");
        assert!(matches!(reply, Reply::Ok(_)), "unexpected {reply:?}");
    }
    drop(clients);

    let samples = measured.latencies_ms.len();
    let (p50, p95, p99, max) = measured.percentiles();
    let sync_policy_label = if durable {
        flags.sync_policy.to_string()
    } else {
        "none".to_owned()
    };

    let mut table = Table::new(["metric", "value"]);
    table.row(["requests sent".into(), measured.ops.to_string()]);
    table.row(["ingest requests".into(), measured.ingests.to_string()]);
    table.row(["warmup requests".into(), warmup.ops.to_string()]);
    table.row(["latency samples".into(), samples.to_string()]);
    table.row(["batch size".into(), flags.batch.to_string()]);
    table.row(["protocol errors".into(), measured.errors.to_string()]);
    table.row([
        "busy rejections".into(),
        measured.busy_rejections.to_string(),
    ]);
    table.row(["retries".into(), measured.retries.to_string()]);
    table.row(["sync policy".into(), sync_policy_label.clone()]);
    table.row(["target req/s".into(), format!("{:.0}", flags.rps)]);
    table.row(["achieved req/s".into(), format!("{achieved_rps:.1}")]);
    table.row(["p50 latency (ms)".into(), format!("{p50:.3}")]);
    table.row(["p95 latency (ms)".into(), format!("{p95:.3}")]);
    table.row(["p99 latency (ms)".into(), format!("{p99:.3}")]);
    table.row(["max latency (ms)".into(), format!("{max:.3}")]);
    println!("\nLOADGEN: serve latency under paced replay\n\n{table}");

    let json = format!(
        "{{\"requests\": {}, \"ingests\": {}, \"errors\": {}, \
         \"busy_rejections\": {}, \"retries\": {}, \
         \"warmup_requests\": {}, \"warmup_secs\": {:.3}, \
         \"samples\": {samples}, \"batch\": {}, \
         \"sync_policy\": \"{sync_policy_label}\", \
         \"target_rps\": {:.1}, \"achieved_rps\": {achieved_rps:.3}, \
         \"p50_ms\": {p50:.6}, \"p95_ms\": {p95:.6}, \"p99_ms\": {p99:.6}, \
         \"max_ms\": {max:.6}, \"connections\": {}, \"customers\": {}, \
         \"workload\": \"{workload}\"}}\n",
        measured.ops,
        measured.ingests,
        measured.errors,
        measured.busy_rejections,
        measured.retries,
        warmup.ops,
        flags.warmup.as_secs_f64(),
        flags.batch,
        flags.rps,
        flags.connections,
        flags.customers,
    );
    write_result(&format!("{}.json", flags.results), &json);
    write_result(&format!("{}.txt", flags.results), &format!("{table}\n"));

    assert_eq!(measured.errors, 0, "protocol errors during replay");
}

// ---------------------------------------------------------------------------
// Saturation sweep
// ---------------------------------------------------------------------------

/// One (batch size, shard count) saturation point.
struct SweepPoint {
    batch: usize,
    shards: usize,
    max_sustainable_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    samples: usize,
    target_rps: f64,
    steps: usize,
    total_ops: u64,
    total_batches: u64,
    wal_appends: u64,
    wal_fsyncs: u64,
    errors: u64,
}

/// Synthetic all-INGEST op stream for the sweep: two items per receipt,
/// fixed date inside the serving window (same-date ingests are in
/// order), customers round-robined. 100% mutating so every batch pays
/// exactly one group commit — the per-batch fsync count is exact.
fn synthetic_ingests(customers: u64) -> impl FnMut() -> String {
    let mut i = 0u64;
    move || {
        let customer = 1 + i % customers;
        let a = 1 + i % 47;
        let b = 1 + (i * 7 + 3) % 47;
        i += 1;
        format!("INGEST {customer} 2012-05-15 {a} {b}")
    }
}

/// Run one paced slice at `target_rps` against an already-connected
/// client. Batch > 1 pipelines frames with a bounded in-flight window;
/// batch == 1 is the synchronous one-op-per-round-trip baseline.
fn run_slice(
    client: &mut Client,
    batch: usize,
    window: usize,
    target_rps: f64,
    duration: Duration,
    next_op: &mut dyn FnMut() -> String,
) -> Phase {
    let mut phase = Phase::default();
    let started = Instant::now();
    if batch <= 1 {
        loop {
            let due = started + Duration::from_secs_f64(phase.ops as f64 / target_rps);
            let now = Instant::now();
            if now < due {
                std::thread::sleep(due - now);
            }
            if started.elapsed() >= duration {
                break;
            }
            let line = next_op();
            let t0 = Instant::now();
            let reply = client.send(&line).expect("transport error during sweep");
            phase.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            phase.ops += 1;
            if matches!(reply, Reply::Err(_)) {
                phase.errors += 1;
            }
        }
    } else {
        let mut pipeline: Pipeline<'_, Instant> = Pipeline::new(client, window);
        let mut members: Vec<String> = Vec::with_capacity(batch);
        let mut submitted = 0u64;
        let complete = |phase: &mut Phase, replies: Vec<Reply>, sent_at: Instant| {
            phase
                .latencies_ms
                .push(sent_at.elapsed().as_secs_f64() * 1e3);
            phase.ops += replies.len() as u64;
            phase.errors += replies
                .iter()
                .filter(|r| matches!(r, Reply::Err(_)))
                .count() as u64;
        };
        loop {
            let due = started + Duration::from_secs_f64(submitted as f64 / target_rps);
            let now = Instant::now();
            if now < due {
                std::thread::sleep(due - now);
            }
            if started.elapsed() >= duration {
                break;
            }
            members.clear();
            for _ in 0..batch {
                members.push(next_op());
            }
            submitted += batch as u64;
            if let Some((replies, sent_at)) = pipeline
                .submit(&members, Instant::now())
                .expect("transport error during sweep")
            {
                complete(&mut phase, replies, sent_at);
            }
        }
        for (replies, sent_at) in pipeline.drain().expect("transport error during sweep") {
            complete(&mut phase, replies, sent_at);
        }
    }
    phase.elapsed = started.elapsed();
    phase
}

/// Step the target rate up ×1.6 until the server stops keeping up
/// (achieved < 92% of target) or errors pass 1%, and return the last
/// sustained step as this config's saturation point.
fn saturate(
    addr: &str,
    batch: usize,
    window: usize,
    customers: u64,
    slice: Duration,
    start_rps: f64,
) -> (Phase, f64, usize, u64) {
    let mut client =
        Client::connect(addr, Duration::from_secs(10)).expect("connect to sweep server");
    let mut next_op = synthetic_ingests(customers);

    // Warmup slice: connections, allocator pools, WAL appender.
    let _ = run_slice(
        &mut client,
        batch,
        window,
        start_rps,
        slice / 2,
        &mut next_op,
    );

    let mut best: Option<(Phase, f64)> = None;
    let mut target = start_rps;
    let mut steps = 0usize;
    let mut total_batches = 0u64;
    for _ in 0..14 {
        let phase = run_slice(&mut client, batch, window, target, slice, &mut next_op);
        steps += 1;
        total_batches += phase.latencies_ms.len() as u64;
        let achieved = phase.achieved_rps();
        let error_rate = phase.errors as f64 / phase.ops.max(1) as f64;
        let sustained = achieved >= 0.92 * target && error_rate <= 0.01;
        eprintln!(
            "  batch {batch}: target {target:>9.0} req/s → achieved {achieved:>9.0} \
             ({} errors){}",
            phase.errors,
            if sustained { "" } else { "  [saturated]" }
        );
        let stop = !sustained;
        if best
            .as_ref()
            .is_none_or(|(b, _)| achieved > b.achieved_rps())
        {
            best = Some((phase, target));
        }
        if stop {
            break;
        }
        target *= 1.6;
    }
    let (phase, target) = best.expect("at least one sweep step ran");
    (phase, target, steps, total_batches)
}

fn run_sweep(flags: &Flags) {
    let quick = std::env::var("ATTRITION_BENCH_QUICK").is_ok();
    let (batch_sizes, shard_counts, slice): (&[usize], &[usize], Duration) = if quick {
        (&[1, 64], &[2], Duration::from_millis(600))
    } else {
        (&[1, 8, 64, 256], &[1, 8], Duration::from_millis(1500))
    };
    let customers = flags.customers.max(1) as u64;
    eprintln!(
        "loadgen sweep: batches {batch_sizes:?} × shards {shard_counts:?}, sync-policy {}, \
         {:?} slices{}",
        flags.sync_policy,
        slice,
        if quick { " (quick mode)" } else { "" }
    );

    let mut points: Vec<SweepPoint> = Vec::new();
    for &shards in shard_counts {
        for &batch in batch_sizes {
            let wal_dir = sweep_wal_dir(batch, shards);
            let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1);
            let mut config = ServerConfig::new("127.0.0.1:0", spec, StabilityParams::PAPER);
            config.n_shards = shards;
            let mut dcfg = DurabilityConfig::new(&wal_dir);
            dcfg.sync_policy = flags.sync_policy;
            // Isolate append + group commit: a checkpoint every 1024
            // requests would dominate a sweep running at tens of
            // thousands of requests per second.
            dcfg.checkpoint_every_requests = 0;
            dcfg.checkpoint_every = None;
            config.durability = Some(dcfg);
            let handle = server::start(config).expect("sweep server must start");
            let addr = handle.local_addr().to_string();

            let start_rps = if batch <= 1 { 100.0 } else { 2000.0 };
            let (mut phase, target, steps, total_batches) =
                saturate(&addr, batch, flags.pipeline, customers, slice, start_rps);

            handle.request_shutdown();
            let summary = handle.join();
            let _ = std::fs::remove_dir_all(&wal_dir);

            let samples = phase.latencies_ms.len();
            let (p50, p95, p99, _) = phase.percentiles();
            eprintln!(
                "  batch {batch} × shards {shards}: {:.0} req/s sustained, p99 {p99:.3} ms, \
                 {} fsyncs / {} appends",
                phase.achieved_rps(),
                summary.wal_fsyncs,
                summary.wal_appends
            );
            points.push(SweepPoint {
                batch,
                shards,
                max_sustainable_rps: phase.achieved_rps(),
                p50_ms: p50,
                p95_ms: p95,
                p99_ms: p99,
                samples,
                target_rps: target,
                steps,
                total_ops: phase.ops,
                total_batches,
                wal_appends: summary.wal_appends,
                wal_fsyncs: summary.wal_fsyncs,
                errors: phase.errors,
            });
        }
    }

    // Render the sweep as a table and as machine-readable JSON.
    let mut table = Table::new([
        "batch",
        "shards",
        "max req/s",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "samples",
        "fsync/batch",
        "fsync/op",
    ]);
    let mut json = String::from("{\n  \"mode\": \"saturation_sweep\",\n");
    let _ = writeln!(json, "  \"sync_policy\": \"{}\",", flags.sync_policy);
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"slice_secs\": {:.3},", slice.as_secs_f64());
    let _ = writeln!(json, "  \"pipeline_window\": {},", flags.pipeline);
    let _ = writeln!(json, "  \"customers\": {customers},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        // All-INGEST stream: every logged op is one WAL append, every
        // frame one group commit, so fsyncs/batches ≈ 1 and fsyncs/op
        // shrinks with the batch size — the amortization being claimed.
        let fsync_per_batch = p.wal_fsyncs as f64 / p.total_batches.max(1) as f64;
        let fsync_per_op = p.wal_fsyncs as f64 / p.wal_appends.max(1) as f64;
        table.row([
            p.batch.to_string(),
            p.shards.to_string(),
            format!("{:.0}", p.max_sustainable_rps),
            format!("{:.3}", p.p50_ms),
            format!("{:.3}", p.p95_ms),
            format!("{:.3}", p.p99_ms),
            p.samples.to_string(),
            format!("{fsync_per_batch:.3}"),
            format!("{fsync_per_op:.4}"),
        ]);
        let _ = write!(
            json,
            "    {{\"batch\": {}, \"shards\": {}, \"max_sustainable_rps\": {:.1}, \
             \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \
             \"samples\": {}, \"target_rps\": {:.1}, \"steps\": {}, \
             \"total_ops\": {}, \"total_batches\": {}, \
             \"wal_appends\": {}, \"wal_fsyncs\": {}, \
             \"fsyncs_per_batch\": {fsync_per_batch:.4}, \
             \"fsyncs_per_op\": {fsync_per_op:.5}, \"errors\": {}}}",
            p.batch,
            p.shards,
            p.max_sustainable_rps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.samples,
            p.target_rps,
            p.steps,
            p.total_ops,
            p.total_batches,
            p.wal_appends,
            p.wal_fsyncs,
            p.errors,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    println!(
        "\nLOADGEN: saturation sweep (sync-policy {})\n\n{table}",
        flags.sync_policy
    );
    write_result("throughput_sweep.json", &json);
    write_result("throughput_sweep.txt", &format!("{table}\n"));

    // The point of the batched path: it must beat the one-op baseline
    // on the same hardware. (The ≥5× acceptance bar is asserted on the
    // checked-in full sweep; ≥2× here keeps the smoke job meaningful on
    // noisy shared runners.)
    for &shards in shard_counts {
        let baseline = points
            .iter()
            .find(|p| p.shards == shards && p.batch == 1)
            .map(|p| p.max_sustainable_rps);
        let best_batched = points
            .iter()
            .filter(|p| p.shards == shards && p.batch > 1)
            .map(|p| p.max_sustainable_rps)
            .fold(f64::NAN, f64::max);
        if let Some(base) = baseline {
            eprintln!(
                "sweep: shards {shards}: batched {best_batched:.0} req/s vs unbatched {base:.0} \
                 req/s ({:.1}×)",
                best_batched / base
            );
        }
    }
}

fn sweep_wal_dir(batch: usize, shards: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "attrition_sweep_b{batch}_s{shards}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
