//! LOADGEN — paced load generator for the online scoring server.
//!
//! Replays a datagen scenario's receipts chronologically over the TCP
//! line protocol at a target request rate, spreading requests over
//! several connections, then fills the remaining run time with `SCORE`
//! reads. Reports per-request latency percentiles, the achieved rate,
//! the protocol error count, and the resilience counters (`ERR busy`
//! rejections absorbed and retries spent), both as a table and as
//! `results/<name>.json` (machine-readable, consumed by CI).
//!
//! By default it spawns an in-process server on an ephemeral loopback
//! port; point it at an externally started server with `--addr`
//! (e.g. `attrition serve --origin 2012-05-01 --window 1`). With
//! `--wal-dir` the in-process server runs the full durability stack, so
//! `--sync-policy never|interval:N|always` measures the latency cost of
//! each ack guarantee (CI uploads the `always` run as the
//! durability-overhead artifact).
//!
//! Run: `cargo run -p attrition-bench --release --bin loadgen --
//!       [--addr HOST:PORT] [--rps 500] [--duration-s 5]
//!       [--connections 4] [--customers 200] [--seed 7] [--shutdown]
//!       [--wal-dir DIR] [--sync-policy always] [--results NAME]`

use attrition_bench::write_result;
use attrition_core::StabilityParams;
use attrition_datagen::ScenarioConfig;
use attrition_serve::server::{self, DurabilityConfig, ServerConfig};
use attrition_serve::{Client, Reply, RetryPolicy, SyncPolicy};
use attrition_store::{chronological, WindowSpec};
use attrition_types::Date;
use attrition_util::stats::quantile_sorted;
use attrition_util::Table;
use std::time::{Duration, Instant};

struct Flags {
    addr: Option<String>,
    rps: f64,
    duration: Duration,
    connections: usize,
    customers: usize,
    seed: u64,
    shutdown: bool,
    wal_dir: Option<String>,
    sync_policy: SyncPolicy,
    results: String,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        addr: None,
        rps: 500.0,
        duration: Duration::from_secs(5),
        connections: 4,
        customers: 200,
        seed: 7,
        shutdown: false,
        wal_dir: None,
        sync_policy: SyncPolicy::Always,
        results: "serve_latency".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => flags.addr = Some(value("--addr")),
            "--rps" => flags.rps = value("--rps").parse().expect("--rps"),
            "--duration-s" => {
                flags.duration =
                    Duration::from_secs_f64(value("--duration-s").parse().expect("--duration-s"))
            }
            "--connections" => {
                flags.connections = value("--connections").parse().expect("--connections")
            }
            "--customers" => flags.customers = value("--customers").parse().expect("--customers"),
            "--seed" => flags.seed = value("--seed").parse().expect("--seed"),
            "--shutdown" => flags.shutdown = true,
            "--wal-dir" => flags.wal_dir = Some(value("--wal-dir")),
            "--sync-policy" => {
                flags.sync_policy =
                    SyncPolicy::parse(&value("--sync-policy")).expect("--sync-policy")
            }
            "--results" => flags.results = value("--results"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    assert!(flags.rps > 0.0, "--rps must be positive");
    assert!(flags.connections > 0, "--connections must be at least 1");
    flags
}

/// One replayable request: an ingest line or a score read.
enum Op {
    Ingest {
        customer: u64,
        date: Date,
        items: Vec<u32>,
    },
    Score {
        customer: u64,
    },
}

impl Op {
    fn line(&self) -> String {
        match self {
            Op::Ingest {
                customer,
                date,
                items,
            } => {
                let mut line = format!("INGEST {customer} {date}");
                for item in items {
                    line.push(' ');
                    line.push_str(&item.to_string());
                }
                line
            }
            Op::Score { customer } => format!("SCORE {customer}"),
        }
    }
}

fn main() {
    let flags = parse_flags();

    // The replay workload: the scenario's receipts, globally
    // date-sorted (per-customer order is what the server enforces).
    let mut cfg = ScenarioConfig::small();
    cfg.seed = flags.seed;
    cfg.n_loyal = flags.customers / 2;
    cfg.n_defectors = flags.customers - flags.customers / 2;
    let dataset = attrition_datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let ops: Vec<Op> = chronological(&seg_store)
        .map(|r| Op::Ingest {
            customer: r.customer.raw(),
            date: r.date,
            items: r.items.iter().map(|i| i.raw()).collect(),
        })
        .collect();
    let customer_ids: Vec<u64> = {
        let mut ids: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Ingest { customer, .. } => Some(*customer),
                Op::Score { .. } => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };

    // Target: an external server, or an in-process one on loopback
    // (with the durability stack when --wal-dir is given).
    let durable = flags.wal_dir.is_some();
    let (addr, _server) = match &flags.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let spec = WindowSpec::months(cfg.start, 1);
            let mut config = ServerConfig::new("127.0.0.1:0", spec, StabilityParams::PAPER);
            if let Some(dir) = &flags.wal_dir {
                let mut dcfg = DurabilityConfig::new(dir);
                dcfg.sync_policy = flags.sync_policy;
                config.durability = Some(dcfg);
            }
            let handle = server::start(config).expect("in-process server must start");
            (handle.local_addr().to_string(), Some(handle))
        }
    };
    eprintln!(
        "loadgen: {} receipts from {} customers → {} at {} req/s over {} connections for {:?}{}",
        ops.len(),
        customer_ids.len(),
        addr,
        flags.rps,
        flags.connections,
        flags.duration,
        if durable {
            format!(" (durable, sync-policy {})", flags.sync_policy)
        } else {
            String::new()
        }
    );

    // One retry policy per connection, seeds decorrelated so their
    // backoff jitter does not re-stampede the server in lockstep.
    let policies: Vec<RetryPolicy> = (0..flags.connections)
        .map(|i| RetryPolicy {
            seed: flags.seed ^ (0x9E37_79B9 + i as u64),
            ..RetryPolicy::default()
        })
        .collect();
    let mut clients: Vec<Client> = (0..flags.connections)
        .map(|i| {
            Client::connect_retrying(&addr, Duration::from_secs(10), &policies[i])
                .expect("connect to server")
        })
        .collect();

    // Paced closed-loop replay: request i is due at start + i/rps; once
    // the receipt stream is exhausted, keep the rate up with SCORE reads.
    let started = Instant::now();
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut errors = 0u64;
    let mut sent = 0u64;
    let mut ingests = 0u64;
    let mut busy_rejections = 0u64;
    let mut retries = 0u64;
    let mut ops_iter = ops.into_iter();
    loop {
        let due = started + Duration::from_secs_f64(sent as f64 / flags.rps);
        let now = Instant::now();
        if now < due {
            std::thread::sleep(due - now);
        }
        if started.elapsed() >= flags.duration {
            break;
        }
        let op = ops_iter.next().unwrap_or_else(|| Op::Score {
            customer: customer_ids[sent as usize % customer_ids.len()],
        });
        if matches!(op, Op::Ingest { .. }) {
            ingests += 1;
        }
        let slot = sent as usize % flags.connections;
        let line = op.line();
        let t0 = Instant::now();
        let (reply, attempt_stats) = clients[slot]
            .send_retrying(&line, &policies[slot])
            .expect("transport error talking to server");
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        sent += 1;
        busy_rejections += attempt_stats.busy_rejections as u64;
        retries += attempt_stats.retries as u64;
        // An `ERR unknown customer` is only possible before that
        // customer's first ingest reached the server — not with this
        // workload, so any surviving ERR is a real protocol failure
        // (`ERR busy` past the retry budget included: it means the
        // server shed load faster than the budget could absorb).
        if let Reply::Err(message) = reply {
            errors += 1;
            eprintln!("loadgen: ERR {message}");
        }
    }
    let elapsed = started.elapsed();
    let achieved_rps = sent as f64 / elapsed.as_secs_f64();

    if flags.shutdown {
        let reply = clients[0].send("SHUTDOWN").expect("shutdown rpc");
        assert!(matches!(reply, Reply::Ok(_)), "unexpected {reply:?}");
    }
    drop(clients);

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |q: f64| quantile_sorted(&latencies_ms, q);
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    let max = latencies_ms.last().copied().unwrap_or(f64::NAN);
    let sync_policy_label = if durable {
        flags.sync_policy.to_string()
    } else {
        "none".to_owned()
    };

    let mut table = Table::new(["metric", "value"]);
    table.row(["requests sent".into(), sent.to_string()]);
    table.row(["ingest requests".into(), ingests.to_string()]);
    table.row(["protocol errors".into(), errors.to_string()]);
    table.row(["busy rejections".into(), busy_rejections.to_string()]);
    table.row(["retries".into(), retries.to_string()]);
    table.row(["sync policy".into(), sync_policy_label.clone()]);
    table.row(["target req/s".into(), format!("{:.0}", flags.rps)]);
    table.row(["achieved req/s".into(), format!("{achieved_rps:.1}")]);
    table.row(["p50 latency (ms)".into(), format!("{p50:.3}")]);
    table.row(["p95 latency (ms)".into(), format!("{p95:.3}")]);
    table.row(["p99 latency (ms)".into(), format!("{p99:.3}")]);
    table.row(["max latency (ms)".into(), format!("{max:.3}")]);
    println!("\nLOADGEN: serve latency under paced replay\n\n{table}");

    let json = format!(
        "{{\"requests\": {sent}, \"ingests\": {ingests}, \"errors\": {errors}, \
         \"busy_rejections\": {busy_rejections}, \"retries\": {retries}, \
         \"sync_policy\": \"{sync_policy_label}\", \
         \"target_rps\": {:.1}, \"achieved_rps\": {achieved_rps:.3}, \
         \"p50_ms\": {p50:.6}, \"p95_ms\": {p95:.6}, \"p99_ms\": {p99:.6}, \
         \"max_ms\": {max:.6}, \"connections\": {}, \"customers\": {}}}\n",
        flags.rps,
        flags.connections,
        customer_ids.len(),
    );
    write_result(&format!("{}.json", flags.results), &json);
    write_result(&format!("{}.txt", flags.results), &format!("{table}\n"));

    assert_eq!(errors, 0, "protocol errors during replay");
}
