//! SCALE — end-to-end throughput sweep.
//!
//! Not a paper artifact: the paper's substrate is a 6M-customer
//! production dataset, so a credible open-source release must show how
//! this implementation scales toward that regime. Sweeps the population
//! size and reports wall time and throughput of each pipeline stage
//! (simulation, segment projection, windowing, stability scoring) plus
//! the stability engine's thread scaling.
//!
//! Run: `cargo run -p attrition-bench --release --bin scalability`

use attrition_bench::write_result;
use attrition_core::{StabilityEngine, StabilityParams};
use attrition_datagen::{generate, ScenarioConfig};
use attrition_store::{WindowAlignment, WindowSpec, WindowedDatabase};
use attrition_util::csv::CsvWriter;
use attrition_util::Table;
use std::time::Instant;

fn main() {
    // Record stage timings (windowing, scoring, …) while the sweep runs;
    // one JSON breakdown per population size lands in results/.
    attrition_obs::set_enabled(true);
    let mut stage_breakdowns: Vec<(usize, String)> = Vec::new();
    let mut txt = String::new();
    let sizes = [250usize, 500, 1_000, 2_000, 4_000, 8_000];
    let w_months = 2u32;
    let heading = "SCALE: pipeline wall time by population size (2-month windows, α = 2)";
    println!("\n{heading}\n");
    txt.push_str(&format!("\n{heading}\n\n"));
    let mut table = Table::new([
        "customers",
        "receipts",
        "simulate (ms)",
        "project (ms)",
        "window (ms)",
        "stability (ms)",
        "receipts/s (stability)",
    ]);
    let mut csv = CsvWriter::new();
    csv.record(&[
        "customers",
        "receipts",
        "simulate_ms",
        "project_ms",
        "window_ms",
        "stability_ms",
        "receipts_per_s",
    ]);

    for &n in &sizes {
        attrition_obs::global().reset();
        let mut cfg = ScenarioConfig::paper_default();
        cfg.n_loyal = n / 2;
        cfg.n_defectors = n / 2;

        let t0 = Instant::now();
        let dataset = generate(&cfg);
        let simulate_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let seg_store = dataset.segment_store();
        let project_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let spec = WindowSpec::months(cfg.start, w_months);
        let db = WindowedDatabase::from_store(
            &seg_store,
            spec,
            cfg.n_months.div_ceil(w_months),
            WindowAlignment::Global,
        );
        let window_ms = t2.elapsed().as_secs_f64() * 1e3;

        let t3 = Instant::now();
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
        let stability_ms = t3.elapsed().as_secs_f64() * 1e3;
        assert_eq!(matrix.num_customers(), n);

        let receipts = seg_store.num_receipts();
        let throughput = receipts as f64 / (stability_ms / 1e3);
        table.row([
            n.to_string(),
            receipts.to_string(),
            format!("{simulate_ms:.0}"),
            format!("{project_ms:.0}"),
            format!("{window_ms:.0}"),
            format!("{stability_ms:.0}"),
            format!("{throughput:.0}"),
        ]);
        csv.record(&[
            &n.to_string(),
            &receipts.to_string(),
            &format!("{simulate_ms:.1}"),
            &format!("{project_ms:.1}"),
            &format!("{window_ms:.1}"),
            &format!("{stability_ms:.1}"),
            &format!("{throughput:.0}"),
        ]);
        stage_breakdowns.push((n, attrition_obs::global().snapshot().to_json()));
    }
    println!("{table}");
    txt.push_str(&format!("{table}\n"));

    // Thread-scaling of the stability engine on the largest population.
    // The sweep is always 1/2/4/8 (via `with_threads`, which caps the
    // worker count regardless of the hardware) and the output records
    // `available_parallelism`, so thread-scaling rows are never silently
    // missing on a small CI box — rows beyond the hardware width are
    // oversubscribed and say so via the recorded parallelism.
    let mut cfg = ScenarioConfig::paper_default();
    cfg.n_loyal = 4_000;
    cfg.n_defectors = 4_000;
    let dataset = generate(&cfg);
    let seg_store = dataset.segment_store();
    let db = WindowedDatabase::from_store(
        &seg_store,
        WindowSpec::months(cfg.start, w_months),
        cfg.n_months.div_ceil(w_months),
        WindowAlignment::Global,
    );
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scaling_heading =
        format!("stability engine thread scaling (8,000 customers, available_parallelism = {hw}):");
    println!("{scaling_heading}\n");
    txt.push_str(&format!("{scaling_heading}\n\n"));
    let mut scaling = Table::new([
        "threads",
        "time (ms)",
        "speedup",
        "available_parallelism",
        "oversubscribed",
    ]);
    let mut threads_csv = CsvWriter::new();
    threads_csv.record(&[
        "threads",
        "time_ms",
        "speedup",
        "available_parallelism",
        "oversubscribed",
    ]);
    let mut base_ms = 0.0f64;
    let mut best_claim: Option<(usize, f64)> = None;
    for &threads in &[1usize, 2, 4, 8] {
        let t = Instant::now();
        let _ = StabilityEngine::new(StabilityParams::PAPER)
            .with_threads(threads)
            .compute(&db);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            base_ms = ms;
        }
        // Rows wider than the hardware are kept (they prove the pool
        // still works) but flagged: their speedup is not a scaling
        // measurement, just scheduler overhead on contended cores.
        let oversubscribed = threads > hw;
        let speedup = base_ms / ms;
        if !oversubscribed && best_claim.is_none_or(|(_, s)| speedup > s) {
            best_claim = Some((threads, speedup));
        }
        scaling.row([
            threads.to_string(),
            format!("{ms:.0}"),
            format!("{speedup:.2}x"),
            hw.to_string(),
            oversubscribed.to_string(),
        ]);
        threads_csv.record(&[
            &threads.to_string(),
            &format!("{ms:.1}"),
            &format!("{speedup:.3}"),
            &hw.to_string(),
            &oversubscribed.to_string(),
        ]);
    }
    println!("{scaling}");
    txt.push_str(&format!("{scaling}\n"));
    // The headline scaling claim is gated on the `oversubscribed` flag:
    // only rows that had real cores behind them count, so a 1-core
    // runner records "no claim" instead of a misleading speedup.
    let claim = match best_claim {
        Some((threads, speedup)) if hw > 1 => format!(
            "scaling claim: {speedup:.2}x at {threads} threads \
             (rows beyond {hw} hardware threads excluded as oversubscribed)"
        ),
        _ => format!(
            "scaling claim: none — every multi-thread row is oversubscribed \
             (available_parallelism = {hw}); speedups above are scheduler noise, \
             not scaling measurements"
        ),
    };
    println!("{claim}");
    txt.push_str(&format!("{claim}\n"));
    write_result("scalability.csv", &csv.finish());
    write_result("scalability_threads.csv", &threads_csv.finish());
    write_result("scalability.txt", &txt);
    // Machine-readable stage breakdown, keyed by population size.
    let entries: Vec<String> = stage_breakdowns
        .iter()
        .map(|(n, json)| format!("\"{n}\":{json}"))
        .collect();
    write_result(
        "scalability_metrics.json",
        &format!("{{{}}}\n", entries.join(",")),
    );
}
