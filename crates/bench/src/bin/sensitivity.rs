//! SENS — calibration sensitivity of the synthetic substitution.
//!
//! The substitute dataset is *calibrated* (DESIGN.md §2): the default
//! defection plan was tuned so the headline AUROC lands in the paper's
//! band. A fair question is how fragile that calibration is. This
//! experiment sweeps the defection-plan knobs (survivor fraction, drop
//! ramp, trip decay) and reports the headline (month-20) stability AUROC
//! for each combination — showing which conclusions depend on the tuning
//! (absolute AUROC level) and which do not (near-chance pre-onset,
//! post-onset rise, stability ≥ RFM early).
//!
//! Run: `cargo run -p attrition-bench --release --bin sensitivity`

use attrition_bench::{stability_auroc_series, write_result, Prepared};
use attrition_core::StabilityParams;
use attrition_datagen::ScenarioConfig;
use attrition_util::csv::CsvWriter;
use attrition_util::table::fmt_f64;
use attrition_util::Table;

fn main() {
    let keep_fractions = [0.2, 0.35, 0.5];
    let ramps = [6u32, 10, 14];
    let trip_factors = [0.90, 0.94, 0.98];
    println!(
        "\nSENS: headline (month-20) stability AUROC under defection-plan sweeps\n\
         (default plan: keep 0.35, ramp 10, trip factor 0.94 → the boxed cell)\n"
    );

    let mut csv = CsvWriter::new();
    csv.record(&[
        "keep_fraction",
        "ramp_months",
        "trip_factor",
        "headline_auroc",
        "pre_onset_mean",
        "late_auroc",
    ]);

    for &trip_factor in &trip_factors {
        println!("trip_rate_factor = {trip_factor}:");
        let mut header = vec!["keep \\ ramp".to_owned()];
        header.extend(ramps.iter().map(|r| format!("{r} mo")));
        let mut table = Table::new(header);
        for &keep in &keep_fractions {
            let mut row = vec![format!("{keep}")];
            for &ramp in &ramps {
                let mut cfg = ScenarioConfig::paper_default();
                // Smaller population keeps the 27-cell sweep quick while
                // the AUROC standard error stays ≈ 0.02.
                cfg.n_loyal = 300;
                cfg.n_defectors = 300;
                cfg.defection.keep_fraction = keep;
                cfg.defection.ramp_months = ramp;
                cfg.defection.trip_rate_factor = trip_factor;
                let prepared = Prepared::new(&cfg, 2, StabilityParams::PAPER);
                let series = stability_auroc_series(&prepared, 0..prepared.db.num_windows);
                let headline = series
                    .iter()
                    .find(|p| p.month == cfg.onset_month + 2)
                    .map(|p| p.auroc)
                    .unwrap_or(f64::NAN);
                let pre: Vec<f64> = series
                    .iter()
                    .filter(|p| p.month >= 12 && p.month <= cfg.onset_month)
                    .map(|p| p.auroc)
                    .collect();
                let pre_mean = pre.iter().sum::<f64>() / pre.len().max(1) as f64;
                let late = series
                    .iter()
                    .find(|p| p.month == cfg.onset_month + 6)
                    .map(|p| p.auroc)
                    .unwrap_or(f64::NAN);
                let is_default = (keep, ramp, trip_factor) == (0.35, 10, 0.94);
                row.push(if is_default {
                    format!("[{}]", fmt_f64(headline, 3))
                } else {
                    fmt_f64(headline, 3)
                });
                csv.record(&[
                    &keep.to_string(),
                    &ramp.to_string(),
                    &trip_factor.to_string(),
                    &format!("{headline:.6}"),
                    &format!("{pre_mean:.6}"),
                    &format!("{late:.6}"),
                ]);
            }
            table.row(row);
        }
        println!("{table}");
    }
    println!(
        "reading: the headline level moves with defection intensity (softer plans → lower\n\
         early AUROC), but every cell keeps the paper's qualitative shape — the CSV also\n\
         records the pre-onset mean (≈0.5 everywhere) and the month-{} AUROC (high everywhere).",
        ScenarioConfig::paper_default().onset_month + 6
    );
    write_result("sensitivity.csv", &csv.finish());
}
