//! SIMCTL — seed-sweep driver for the deterministic simulation harness.
//!
//! Runs `attrition-sim` worlds for a contiguous range of seeds (the
//! real serve/WAL/checkpoint/recovery stack under simulated time, disk,
//! and faults — see `crates/sim`), aggregates what every world injected
//! and checked, and writes a machine-readable results file consumed by
//! CI (64 seeds on every push, 4096 weekly).
//!
//! Two sweep modes:
//!
//! - `--mode serve` (default): single-node crash/recovery worlds
//!   (`results/sim_sweep.json`).
//! - `--mode repl`: replicated primary+replica worlds with a lossy
//!   network, epoch-fenced failover and the R1/R2 invariants
//!   (`results/repl_sweep.json`).
//! - `--mode rejoin`: the same worlds extended with the deposed-primary
//!   rejoin phase — the old primary reopens as a replica, discards its
//!   divergent suffix via the `REJOIN` handshake, and invariant R3
//!   holds throughout (`results/rejoin_sweep.json`).
//!
//! Any failing seed is printed with the one-command repro line and the
//! process exits non-zero, so the CI log carries everything needed to
//! replay the exact interleaving locally.
//!
//! Run: `cargo run -p attrition-bench --release --bin simctl --
//!       [--mode serve|repl|rejoin] [--seeds 64] [--start 0] [--results NAME]`

use attrition_bench::write_result;
use attrition_sim::{
    repro_command, repro_rejoin_command, repro_repl_command, run, run_repl, ReplSimConfig,
    SimConfig,
};
use attrition_util::Table;
use std::time::Instant;

struct Flags {
    mode: String,
    seeds: u64,
    start: u64,
    results: Option<String>,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        mode: "serve".to_owned(),
        seeds: 64,
        start: 0,
        results: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--mode" => flags.mode = value("--mode"),
            "--seeds" => flags.seeds = value("--seeds").parse().expect("--seeds"),
            "--start" => flags.start = value("--start").parse().expect("--start"),
            "--results" => flags.results = Some(value("--results")),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    flags
}

fn main() {
    let flags = parse_flags();
    match flags.mode.as_str() {
        "serve" => serve_sweep(&flags),
        "repl" => repl_sweep(&flags, false),
        "rejoin" => repl_sweep(&flags, true),
        other => panic!("unknown --mode {other} (serve | repl | rejoin)"),
    }
}

fn serve_sweep(flags: &Flags) {
    let started = Instant::now();

    let mut ops = 0u64;
    let mut acked = 0u64;
    let mut crashes = 0u64;
    let mut clean_restarts = 0u64;
    let mut faults_injected = 0u64;
    let mut score_checks = 0u64;
    let mut invariant_checks = 0u64;
    let mut wal_records = 0u64;
    let mut failures: Vec<(u64, String)> = Vec::new();

    for seed in flags.start..flags.start + flags.seeds {
        let report = run(&SimConfig::for_seed(seed));
        ops += report.ops;
        acked += report.acked;
        crashes += report.crashes;
        clean_restarts += report.clean_restarts;
        faults_injected += report.faults_injected;
        score_checks += report.score_checks;
        invariant_checks += report.invariant_checks;
        wal_records += report.wal_records;
        if let Some(first) = report.violations.first() {
            eprintln!("SIMCTL: seed {seed} FAILED: {first}");
            eprintln!("SIMCTL:   reproduce with: {}", repro_command(seed));
            failures.push((seed, first.clone()));
        }
    }
    let elapsed = started.elapsed();

    let mut table = Table::new(["metric", "value"]);
    table.row(["seeds run".into(), flags.seeds.to_string()]);
    table.row(["first seed".into(), flags.start.to_string()]);
    table.row(["requests executed".into(), ops.to_string()]);
    table.row(["responses acked".into(), acked.to_string()]);
    table.row(["crash-restarts".into(), crashes.to_string()]);
    table.row(["clean restarts".into(), clean_restarts.to_string()]);
    table.row(["faults injected".into(), faults_injected.to_string()]);
    table.row(["wal records".into(), wal_records.to_string()]);
    table.row(["score checks".into(), score_checks.to_string()]);
    table.row(["invariant checks".into(), invariant_checks.to_string()]);
    table.row(["failing seeds".into(), failures.len().to_string()]);
    table.row([
        "wall time (s)".into(),
        format!("{:.2}", elapsed.as_secs_f64()),
    ]);
    println!("\nSIMCTL: deterministic simulation sweep\n\n{table}");

    let failing_seeds = failures
        .iter()
        .map(|(seed, _)| seed.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\"seeds\": {}, \"start\": {}, \"ops\": {ops}, \"acked\": {acked}, \
         \"crashes\": {crashes}, \"clean_restarts\": {clean_restarts}, \
         \"faults_injected\": {faults_injected}, \"wal_records\": {wal_records}, \
         \"score_checks\": {score_checks}, \"invariant_checks\": {invariant_checks}, \
         \"failing_seeds\": [{failing_seeds}], \"wall_s\": {:.3}}}\n",
        flags.seeds,
        flags.start,
        elapsed.as_secs_f64(),
    );
    let results = flags.results.as_deref().unwrap_or("sim_sweep");
    write_result(&format!("{results}.json"), &json);

    if let Some((seed, violation)) = failures.first() {
        eprintln!(
            "SIMCTL: {} of {} seeds failed; first: seed {seed}: {violation}",
            failures.len(),
            flags.seeds
        );
        eprintln!("SIMCTL: reproduce with: {}", repro_command(*seed));
        std::process::exit(1);
    }
    println!(
        "SIMCTL: all {} seeds passed both invariants ({} checks, {} faults injected)",
        flags.seeds, invariant_checks, faults_injected
    );
}

fn repl_sweep(flags: &Flags, rejoin: bool) {
    let started = Instant::now();

    let mut ops = 0u64;
    let mut wal_records = 0u64;
    let mut records_replicated = 0u64;
    let mut records_skipped = 0u64;
    let mut snapshots_installed = 0u64;
    let mut fenced = 0u64;
    let mut repl_errors = 0u64;
    let mut primary_crashes = 0u64;
    let mut replica_crashes = 0u64;
    let mut failovers = 0u64;
    let mut partitions = 0u64;
    let mut transport_faults = 0u64;
    let mut score_checks = 0u64;
    let mut invariant_checks = 0u64;
    let mut rejoins = 0u64;
    let mut divergent_discarded = 0u64;
    let mut rejoin_records = 0u64;
    let mut rejoined_crashes = 0u64;
    let mut failures: Vec<(u64, String)> = Vec::new();

    let repro = if rejoin {
        repro_rejoin_command
    } else {
        repro_repl_command
    };
    for seed in flags.start..flags.start + flags.seeds {
        let config = if rejoin {
            ReplSimConfig::for_rejoin_seed(seed)
        } else {
            ReplSimConfig::for_seed(seed)
        };
        let report = run_repl(&config);
        ops += report.ops;
        wal_records += report.wal_records;
        records_replicated += report.records_replicated;
        records_skipped += report.records_skipped;
        snapshots_installed += report.snapshots_installed;
        fenced += report.fenced;
        repl_errors += report.repl_errors;
        primary_crashes += report.primary_crashes;
        replica_crashes += report.replica_crashes;
        failovers += report.failovers;
        partitions += report.partitions;
        transport_faults += report.transport_faults;
        score_checks += report.score_checks;
        invariant_checks += report.invariant_checks;
        rejoins += report.rejoins;
        divergent_discarded += report.divergent_records_discarded;
        rejoin_records += report.rejoin_records_applied;
        rejoined_crashes += report.rejoined_crashes;
        if let Some(first) = report.violations.first() {
            eprintln!("SIMCTL: seed {seed} FAILED: {first}");
            eprintln!("SIMCTL:   reproduce with: {}", repro(seed));
            failures.push((seed, first.clone()));
        }
    }
    let elapsed = started.elapsed();

    let mut table = Table::new(["metric", "value"]);
    table.row(["seeds run".into(), flags.seeds.to_string()]);
    table.row(["first seed".into(), flags.start.to_string()]);
    table.row(["requests executed".into(), ops.to_string()]);
    table.row(["wal records".into(), wal_records.to_string()]);
    table.row(["records replicated".into(), records_replicated.to_string()]);
    table.row(["records skipped".into(), records_skipped.to_string()]);
    table.row([
        "snapshot bootstraps".into(),
        snapshots_installed.to_string(),
    ]);
    table.row(["stale shipments fenced".into(), fenced.to_string()]);
    table.row(["repl errors retried".into(), repl_errors.to_string()]);
    table.row(["primary crashes".into(), primary_crashes.to_string()]);
    table.row(["replica crashes".into(), replica_crashes.to_string()]);
    table.row(["failovers".into(), failovers.to_string()]);
    table.row(["partition windows".into(), partitions.to_string()]);
    table.row(["transport faults".into(), transport_faults.to_string()]);
    table.row(["score checks".into(), score_checks.to_string()]);
    table.row(["invariant checks".into(), invariant_checks.to_string()]);
    if rejoin {
        table.row(["rejoin adoptions".into(), rejoins.to_string()]);
        table.row([
            "divergent records discarded".into(),
            divergent_discarded.to_string(),
        ]);
        table.row(["rejoin records applied".into(), rejoin_records.to_string()]);
        table.row(["rejoined-node crashes".into(), rejoined_crashes.to_string()]);
    }
    table.row(["failing seeds".into(), failures.len().to_string()]);
    table.row([
        "wall time (s)".into(),
        format!("{:.2}", elapsed.as_secs_f64()),
    ]);
    let label = if rejoin { "rejoin" } else { "replication" };
    println!("\nSIMCTL: deterministic {label} sweep\n\n{table}");

    let failing_seeds = failures
        .iter()
        .map(|(seed, _)| seed.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\"seeds\": {}, \"start\": {}, \"ops\": {ops}, \"wal_records\": {wal_records}, \
         \"records_replicated\": {records_replicated}, \"records_skipped\": {records_skipped}, \
         \"snapshots_installed\": {snapshots_installed}, \"fenced\": {fenced}, \
         \"repl_errors\": {repl_errors}, \"primary_crashes\": {primary_crashes}, \
         \"replica_crashes\": {replica_crashes}, \"failovers\": {failovers}, \
         \"partitions\": {partitions}, \"transport_faults\": {transport_faults}, \
         \"score_checks\": {score_checks}, \"invariant_checks\": {invariant_checks}, \
         \"rejoins\": {rejoins}, \"divergent_records_discarded\": {divergent_discarded}, \
         \"rejoin_records_applied\": {rejoin_records}, \
         \"rejoined_crashes\": {rejoined_crashes}, \
         \"failing_seeds\": [{failing_seeds}], \"wall_s\": {:.3}}}\n",
        flags.seeds,
        flags.start,
        elapsed.as_secs_f64(),
    );
    let results =
        flags
            .results
            .as_deref()
            .unwrap_or(if rejoin { "rejoin_sweep" } else { "repl_sweep" });
    write_result(&format!("{results}.json"), &json);

    if let Some((seed, violation)) = failures.first() {
        eprintln!(
            "SIMCTL: {} of {} seeds failed; first: seed {seed}: {violation}",
            failures.len(),
            flags.seeds
        );
        eprintln!("SIMCTL: reproduce with: {}", repro(*seed));
        std::process::exit(1);
    }
    let held = if rejoin { "R1, R2 and R3" } else { "R1 and R2" };
    println!(
        "SIMCTL: all {} seeds passed {held} ({} checks, {} transport faults, {} failovers)",
        flags.seeds, invariant_checks, transport_faults, failovers
    );
}
