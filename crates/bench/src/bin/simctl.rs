//! SIMCTL — seed-sweep driver for the deterministic simulation harness.
//!
//! Runs `attrition-sim` worlds for a contiguous range of seeds (the
//! real serve/WAL/checkpoint/recovery stack under simulated time, disk,
//! and faults — see `crates/sim`), aggregates what every world injected
//! and checked, and writes `results/sim_sweep.json` (machine-readable,
//! consumed by CI: 64 seeds on every push, 4096 weekly).
//!
//! Any failing seed is printed with the one-command repro line and the
//! process exits non-zero, so the CI log carries everything needed to
//! replay the exact interleaving locally.
//!
//! Run: `cargo run -p attrition-bench --release --bin simctl --
//!       [--seeds 64] [--start 0] [--results sim_sweep]`

use attrition_bench::write_result;
use attrition_sim::{repro_command, run, SimConfig};
use attrition_util::Table;
use std::time::Instant;

struct Flags {
    seeds: u64,
    start: u64,
    results: String,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        seeds: 64,
        start: 0,
        results: "sim_sweep".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => flags.seeds = value("--seeds").parse().expect("--seeds"),
            "--start" => flags.start = value("--start").parse().expect("--start"),
            "--results" => flags.results = value("--results"),
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    flags
}

fn main() {
    let flags = parse_flags();
    let started = Instant::now();

    let mut ops = 0u64;
    let mut acked = 0u64;
    let mut crashes = 0u64;
    let mut clean_restarts = 0u64;
    let mut faults_injected = 0u64;
    let mut score_checks = 0u64;
    let mut invariant_checks = 0u64;
    let mut wal_records = 0u64;
    let mut failures: Vec<(u64, String)> = Vec::new();

    for seed in flags.start..flags.start + flags.seeds {
        let report = run(&SimConfig::for_seed(seed));
        ops += report.ops;
        acked += report.acked;
        crashes += report.crashes;
        clean_restarts += report.clean_restarts;
        faults_injected += report.faults_injected;
        score_checks += report.score_checks;
        invariant_checks += report.invariant_checks;
        wal_records += report.wal_records;
        if let Some(first) = report.violations.first() {
            eprintln!("SIMCTL: seed {seed} FAILED: {first}");
            eprintln!("SIMCTL:   reproduce with: {}", repro_command(seed));
            failures.push((seed, first.clone()));
        }
    }
    let elapsed = started.elapsed();

    let mut table = Table::new(["metric", "value"]);
    table.row(["seeds run".into(), flags.seeds.to_string()]);
    table.row(["first seed".into(), flags.start.to_string()]);
    table.row(["requests executed".into(), ops.to_string()]);
    table.row(["responses acked".into(), acked.to_string()]);
    table.row(["crash-restarts".into(), crashes.to_string()]);
    table.row(["clean restarts".into(), clean_restarts.to_string()]);
    table.row(["faults injected".into(), faults_injected.to_string()]);
    table.row(["wal records".into(), wal_records.to_string()]);
    table.row(["score checks".into(), score_checks.to_string()]);
    table.row(["invariant checks".into(), invariant_checks.to_string()]);
    table.row(["failing seeds".into(), failures.len().to_string()]);
    table.row([
        "wall time (s)".into(),
        format!("{:.2}", elapsed.as_secs_f64()),
    ]);
    println!("\nSIMCTL: deterministic simulation sweep\n\n{table}");

    let failing_seeds = failures
        .iter()
        .map(|(seed, _)| seed.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\"seeds\": {}, \"start\": {}, \"ops\": {ops}, \"acked\": {acked}, \
         \"crashes\": {crashes}, \"clean_restarts\": {clean_restarts}, \
         \"faults_injected\": {faults_injected}, \"wal_records\": {wal_records}, \
         \"score_checks\": {score_checks}, \"invariant_checks\": {invariant_checks}, \
         \"failing_seeds\": [{failing_seeds}], \"wall_s\": {:.3}}}\n",
        flags.seeds,
        flags.start,
        elapsed.as_secs_f64(),
    );
    write_result(&format!("{}.json", flags.results), &json);

    if let Some((seed, violation)) = failures.first() {
        eprintln!(
            "SIMCTL: {} of {} seeds failed; first: seed {seed}: {violation}",
            failures.len(),
            flags.seeds
        );
        eprintln!("SIMCTL: reproduce with: {}", repro_command(*seed));
        std::process::exit(1);
    }
    println!(
        "SIMCTL: all {} seeds passed both invariants ({} checks, {} faults injected)",
        flags.seeds, invariant_checks, faults_injected
    );
}
