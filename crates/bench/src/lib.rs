//! # attrition-bench
//!
//! Experiment harness. Each binary under `src/bin/` regenerates one
//! artifact of the paper (see DESIGN.md's experiment index):
//!
//! | binary                 | paper artifact |
//! |------------------------|----------------|
//! | `fig1_auroc`           | Figure 1 — AUROC of stability vs RFM over months |
//! | `fig2_case_study`      | Figure 2 — individual stability trajectory with product-loss annotations |
//! | `cv_param_search`      | Section 3.1 — 5-fold CV selection of (α, window) |
//! | `dataset_stats`        | Section 3 — dataset description statistics |
//! | `ablation_alignment`   | design ablation — global vs per-customer window alignment |
//! | `ablation_granularity` | design ablation — product vs segment granularity |
//! | `ablation_significance`| future-work ablation — significance-function variants |
//! | `ablation_rfm_features`| baseline ablation — R/F/M vs extended feature set |
//! | `cohort_curves`        | population dynamics: per-cohort mean stability + flag volume |
//! | `detection_latency`    | earliness claim quantified: onset-to-alarm delay at fixed FPR |
//! | `sensitivity`          | calibration sensitivity of the synthetic substitution |
//! | `scalability`          | systems benchmark — end-to-end throughput sweep |
//! | `loadgen`              | systems benchmark — paced latency measurement of the serving layer |
//!
//! This library holds the shared plumbing: scenario preparation, the
//! per-window AUROC series for both models, and result-file output under
//! `results/`.

pub mod micro;

use attrition_core::{StabilityEngine, StabilityMatrix, StabilityParams};
use attrition_datagen::{GeneratedDataset, LabelSet, ScenarioConfig};
use attrition_eval::auroc;
use attrition_rfm::{out_of_fold_scores, RfmModel};
use attrition_store::{ReceiptStore, WindowAlignment, WindowSpec, WindowedDatabase};
use attrition_types::{CustomerId, WindowIndex};
use std::io::Write as _;
use std::path::PathBuf;

/// A prepared experiment: dataset + segment-level windowed database +
/// stability matrix.
pub struct Prepared {
    /// The generated dataset (product granularity + taxonomy + labels).
    pub dataset: GeneratedDataset,
    /// Receipts projected to segment granularity.
    pub seg_store: ReceiptStore,
    /// Windowed database over the segment store.
    pub db: WindowedDatabase,
    /// Window length used, in months.
    pub w_months: u32,
    /// Stability matrix at the configured α.
    pub matrix: StabilityMatrix,
}

impl Prepared {
    /// Generate the scenario and compute everything the experiments need.
    pub fn new(cfg: &ScenarioConfig, w_months: u32, params: StabilityParams) -> Prepared {
        let dataset = attrition_datagen::generate(cfg);
        Prepared::from_dataset(dataset, w_months, params, WindowAlignment::Global)
    }

    /// Same, from an already generated dataset (lets experiments reuse
    /// one dataset across parameter settings).
    pub fn from_dataset(
        dataset: GeneratedDataset,
        w_months: u32,
        params: StabilityParams,
        alignment: WindowAlignment,
    ) -> Prepared {
        let seg_store = dataset.segment_store();
        let spec = WindowSpec::months(dataset.config.start, w_months);
        let n_windows = dataset.config.n_months.div_ceil(w_months);
        let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, alignment);
        let matrix = StabilityEngine::new(params).compute(&db);
        Prepared {
            dataset,
            seg_store,
            db,
            w_months,
            matrix,
        }
    }

    /// The calendar month (0-based, relative to the start) at which
    /// window `k` *ends* — the x-coordinate the paper plots AUROC at.
    pub fn month_of_window_end(&self, k: u32) -> u32 {
        (k + 1) * self.w_months
    }

    /// Labels aligned to a customer list (defector = `true`).
    pub fn labels_for(&self, customers: &[CustomerId]) -> Vec<bool> {
        align_labels(&self.dataset.labels, customers)
    }
}

/// Labels aligned to a customer list (defector = `true`). Panics if a
/// customer is unlabeled (cannot happen for generated datasets).
pub fn align_labels(labels: &LabelSet, customers: &[CustomerId]) -> Vec<bool> {
    customers
        .iter()
        .map(|&c| {
            labels
                .cohort_of(c)
                .unwrap_or_else(|| panic!("customer {c} missing a cohort label"))
                .is_defector()
        })
        .collect()
}

/// One point of a per-window AUROC series, with a 95% DeLong interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AurocPoint {
    /// Window index.
    pub window: u32,
    /// Month (relative to start) at which the window ends.
    pub month: u32,
    /// AUROC of defector-vs-loyal discrimination at that window.
    pub auroc: f64,
    /// Lower bound of the 95% DeLong confidence interval.
    pub ci_lo: f64,
    /// Upper bound of the 95% DeLong confidence interval.
    pub ci_hi: f64,
}

impl AurocPoint {
    /// Build a point from labels and scores, computing the DeLong CI.
    pub fn from_scores(window: u32, month: u32, labels: &[bool], scores: &[f64]) -> AurocPoint {
        let ci = attrition_eval::auroc_ci_delong(labels, scores, 0.05);
        AurocPoint {
            window,
            month,
            auroc: auroc(labels, scores),
            ci_lo: ci.lo,
            ci_hi: ci.hi,
        }
    }
}

/// Per-window AUROC of the stability model (score = `1 − stability`).
pub fn stability_auroc_series(
    prepared: &Prepared,
    windows: impl Iterator<Item = u32>,
) -> Vec<AurocPoint> {
    windows
        .map(|k| {
            let pairs = prepared.matrix.attrition_scores_at(WindowIndex::new(k));
            let customers: Vec<CustomerId> = pairs.iter().map(|(c, _)| *c).collect();
            let scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
            let labels = prepared.labels_for(&customers);
            AurocPoint::from_scores(k, prepared.month_of_window_end(k), &labels, &scores)
        })
        .collect()
}

/// Per-window AUROC of the RFM baseline, scored out-of-fold with
/// `k_folds` stratified folds (the paper's 5).
pub fn rfm_auroc_series(
    prepared: &Prepared,
    windows: impl Iterator<Item = u32>,
    horizon_windows: usize,
    k_folds: usize,
    seed: u64,
) -> Vec<AurocPoint> {
    let model = RfmModel::new(horizon_windows);
    windows
        .map(|k| {
            let rows = model.features_at(&prepared.db, WindowIndex::new(k));
            let customers: Vec<CustomerId> = rows.iter().map(|(c, _)| *c).collect();
            let features: Vec<attrition_rfm::RfmFeatures> = rows.iter().map(|(_, f)| *f).collect();
            let labels = prepared.labels_for(&customers);
            let scores = out_of_fold_scores(&features, &labels, horizon_windows, k_folds, seed);
            AurocPoint::from_scores(k, prepared.month_of_window_end(k), &labels, &scores)
        })
        .collect()
}

/// Directory experiment outputs are written to (`results/` next to the
/// workspace root, creatable), overridable via `ATTRITION_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("ATTRITION_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // CARGO_MANIFEST_DIR = crates/bench → workspace root is ../..
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        });
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Write an experiment artifact to `results/<name>` and echo the path.
pub fn write_result(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    f.write_all(contents.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
    path
}

/// Render an AUROC-series CSV (month, series1, series2, …).
pub fn auroc_series_csv(names: &[&str], series: &[&[AurocPoint]]) -> String {
    use attrition_util::csv::CsvWriter;
    assert_eq!(names.len(), series.len());
    let mut w = CsvWriter::new();
    let mut header = vec!["window".to_owned(), "month".to_owned()];
    for n in names {
        header.push(format!("auroc_{n}"));
        header.push(format!("ci_lo_{n}"));
        header.push(format!("ci_hi_{n}"));
    }
    w.record_owned(&header);
    if let Some(first) = series.first() {
        for (i, point) in first.iter().enumerate() {
            let mut row = vec![point.window.to_string(), point.month.to_string()];
            for s in series {
                row.push(format!("{:.6}", s[i].auroc));
                row.push(format!("{:.6}", s[i].ci_lo));
                row.push(format!("{:.6}", s[i].ci_hi));
            }
            w.record_owned(&row);
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared() -> Prepared {
        Prepared::new(&ScenarioConfig::small(), 2, StabilityParams::PAPER)
    }

    #[test]
    fn preparation_shapes() {
        let p = prepared();
        assert_eq!(p.db.num_windows, 8); // 16 months / 2
        assert_eq!(p.matrix.num_customers(), 120);
        assert_eq!(p.month_of_window_end(0), 2);
        assert_eq!(p.month_of_window_end(7), 16);
    }

    #[test]
    fn stability_series_has_signal_after_onset() {
        let p = prepared();
        let series = stability_auroc_series(&p, 0..8);
        assert_eq!(series.len(), 8);
        // Onset at month 10 = window 5; pre-onset windows ≈ chance.
        let pre: f64 = series[2..5].iter().map(|p| p.auroc).sum::<f64>() / 3.0;
        assert!((0.35..0.65).contains(&pre), "pre-onset AUROC {pre}");
        // Post-onset must rise substantially.
        let post = series[6].auroc.max(series[7].auroc);
        assert!(post > 0.75, "post-onset AUROC {post}");
    }

    #[test]
    fn rfm_series_has_signal_after_onset() {
        let p = prepared();
        let series = rfm_auroc_series(&p, 4..8, 2, 5, 11);
        let post = series.last().unwrap().auroc;
        assert!(post > 0.65, "post-onset RFM AUROC {post}");
    }

    #[test]
    fn csv_rendering() {
        let a = [AurocPoint {
            window: 0,
            month: 2,
            auroc: 0.5,
            ci_lo: 0.4,
            ci_hi: 0.6,
        }];
        let b = [AurocPoint {
            window: 0,
            month: 2,
            auroc: 0.75,
            ci_lo: 0.7,
            ci_hi: 0.8,
        }];
        let csv = auroc_series_csv(&["stability", "rfm"], &[&a, &b]);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "window,month,auroc_stability,ci_lo_stability,ci_hi_stability,auroc_rfm,ci_lo_rfm,ci_hi_rfm"
        );
        assert_eq!(
            lines.next().unwrap(),
            "0,2,0.500000,0.400000,0.600000,0.750000,0.700000,0.800000"
        );
    }
}
