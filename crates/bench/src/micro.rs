//! Minimal in-repo microbenchmark harness.
//!
//! Replaces the previous Criterion benches with something that builds
//! offline: the `[[bench]]` targets under `benches/` keep
//! `harness = false` and drive this runner from their `main`.
//!
//! Per benchmark the runner (1) calibrates an iteration count so one
//! measurement round lasts roughly [`Runner::round_target`], (2) runs a
//! warm-up round, (3) measures [`Runner::rounds`] rounds, and (4) prints
//! the per-iteration minimum / mean / maximum. The minimum is the
//! headline number: noise from scheduling is strictly additive, so the
//! fastest round is the best estimate of the true cost.
//!
//! Set `ATTRITION_BENCH_QUICK=1` to shrink the time budget ~10× for
//! smoke runs.

use attrition_util::Table;
use std::time::{Duration, Instant};

/// Re-export so bench targets don't reach into `std::hint` themselves.
pub use std::hint::black_box;

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name within its group.
    pub name: String,
    /// Iterations per measured round.
    pub iters: u64,
    /// Fastest per-iteration time over the measured rounds, in ns.
    pub min_ns: f64,
    /// Mean per-iteration time, in ns.
    pub mean_ns: f64,
    /// Slowest per-iteration time, in ns.
    pub max_ns: f64,
    /// Optional elements-per-iteration for throughput reporting.
    pub elements: Option<u64>,
}

impl Measurement {
    /// Elements per second at the minimum per-iteration time.
    pub fn throughput(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 / (self.min_ns * 1e-9))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} K/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} /s")
    }
}

/// Runs and reports one group of benchmarks.
pub struct Runner {
    group: String,
    round_target: Duration,
    rounds: u32,
    results: Vec<Measurement>,
}

impl Runner {
    /// New runner for a named benchmark group.
    pub fn group(name: &str) -> Runner {
        let quick = std::env::var("ATTRITION_BENCH_QUICK").is_ok_and(|v| v != "0");
        Runner {
            group: name.to_owned(),
            round_target: if quick {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(100)
            },
            rounds: if quick { 2 } else { 5 },
            results: Vec::new(),
        }
    }

    /// Override the per-round time budget.
    pub fn round_target(mut self, target: Duration) -> Runner {
        self.round_target = target;
        self
    }

    /// Override the number of measured rounds.
    pub fn rounds(mut self, rounds: u32) -> Runner {
        assert!(rounds > 0);
        self.rounds = rounds;
        self
    }

    /// Measure `f`, reporting per-iteration times under `name`.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) -> &Measurement {
        self.bench_inner(name, None, f)
    }

    /// Measure `f` which processes `elements` items per call; the report
    /// adds a throughput column.
    pub fn bench_throughput<T>(
        &mut self,
        name: &str,
        elements: u64,
        f: impl FnMut() -> T,
    ) -> &Measurement {
        self.bench_inner(name, Some(elements), f)
    }

    fn bench_inner<T>(
        &mut self,
        name: &str,
        elements: Option<u64>,
        mut f: impl FnMut() -> T,
    ) -> &Measurement {
        // Calibrate: double the iteration count until one round exceeds
        // a quarter of the target, then scale to the target.
        let mut iters = 1u64;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.round_target / 4 || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 2;
        };
        let iters = ((self.round_target.as_nanos() as f64 / per_iter_ns.max(1.0)).ceil() as u64)
            .clamp(1, 1 << 30);

        // Warm-up round (not recorded), then measured rounds.
        for _ in 0..iters {
            black_box(f());
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.rounds as usize);
        for _ in 0..self.rounds {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let min_ns = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max_ns = per_iter.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        self.results.push(Measurement {
            name: name.to_owned(),
            iters,
            min_ns,
            mean_ns,
            max_ns,
            elements,
        });
        self.results.last().expect("just pushed")
    }

    /// Completed measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Print the group's results as an aligned table.
    pub fn report(&self) {
        let mut table = Table::new(["benchmark", "iters", "min", "mean", "max", "throughput"]);
        for m in &self.results {
            table.row([
                m.name.clone(),
                m.iters.to_string(),
                fmt_ns(m.min_ns),
                fmt_ns(m.mean_ns),
                fmt_ns(m.max_ns),
                m.throughput().map(fmt_rate).unwrap_or_else(|| "-".into()),
            ]);
        }
        println!("\n== {} ==\n{table}", self.group);
    }
}

impl Drop for Runner {
    fn drop(&mut self) {
        if !self.results.is_empty() {
            self.report();
            self.results.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut runner = Runner::group("test")
            .round_target(Duration::from_millis(2))
            .rounds(2);
        let m = runner.bench("sum", || (0..100u64).sum::<u64>()).clone();
        assert!(m.iters >= 1);
        assert!(m.min_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
        let t = runner
            .bench_throughput("sum_tp", 100, || (0..100u64).sum::<u64>())
            .clone();
        assert!(t.throughput().unwrap() > 0.0);
        assert_eq!(runner.results().len(), 2);
        runner.results.clear(); // silence the drop report in test output
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(4_500.0), "4.50 µs");
        assert_eq!(fmt_ns(7_800_000.0), "7.80 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.000 s");
        assert_eq!(fmt_rate(2_000_000.0), "2.00 M/s");
        assert_eq!(fmt_rate(1_500.0), "1.5 K/s");
        assert_eq!(fmt_rate(12.0), "12.0 /s");
    }
}
