//! Golden regression for the headline result: the paper-shaped baseline
//! scenario's per-window stability AUROC must match the checked-in
//! `results/fig1_auroc.csv` to within 1e-9.
//!
//! The pipeline under the pin — taxonomy/population sampling, the
//! per-customer RNG streams, the month simulation loop, windowing and
//! the stability engine — is exactly what the scenario-engine refactor
//! reshaped, so any accidental change to the generated trips or the
//! scoring shows up here as a numeric diff against the artifact.

use attrition_bench::{stability_auroc_series, Prepared};
use attrition_core::StabilityParams;
use attrition_datagen::ScenarioConfig;

#[test]
fn baseline_fig1_stability_auroc_matches_checked_in_artifact() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/fig1_auroc.csv");
    let golden = std::fs::read_to_string(path).expect("checked-in results/fig1_auroc.csv");
    let mut lines = golden.lines();
    let header: Vec<&str> = lines.next().expect("header row").split(',').collect();
    let col = |name: &str| {
        header
            .iter()
            .position(|h| *h == name)
            .unwrap_or_else(|| panic!("column {name:?} missing from {header:?}"))
    };
    let window_col = col("window");
    let auroc_col = col("auroc_stability");

    let cfg = ScenarioConfig::paper_default();
    let prepared = Prepared::new(&cfg, 2, StabilityParams::PAPER);
    let series = stability_auroc_series(&prepared, 0..prepared.db.num_windows);

    let mut pinned = 0usize;
    for line in lines.filter(|l| !l.trim().is_empty()) {
        let fields: Vec<&str> = line.split(',').collect();
        let window: usize = fields[window_col].parse().expect("window index");
        let expected: f64 = fields[auroc_col].parse().expect("golden auroc");
        let got = series
            .get(window)
            .unwrap_or_else(|| panic!("window {window} beyond computed series"))
            .auroc;
        // The artifact is written at 6 decimals; compare through the
        // same formatting so the 1e-9 pin is exact at the artifact's
        // own precision.
        let got_at_artifact_precision: f64 = format!("{got:.6}").parse().unwrap();
        assert!(
            (got_at_artifact_precision - expected).abs() < 1e-9,
            "window {window}: stability AUROC {got:.12} drifted from golden {expected:.12}"
        );
        pinned += 1;
    }
    assert_eq!(
        pinned,
        series.len(),
        "golden artifact covers a different window count"
    );
}
