//! Minimal `--flag value` argument parsing.
//!
//! Hand-rolled to stay within the workspace's allowed dependency set;
//! supports `--key value`, `--key=value`, boolean `--key`, and collects
//! positional arguments.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

/// Argument parsing/validation errors, rendered to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments (excluding the program/subcommand names).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(stripped) = token.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err(ArgError("bare `--` is not supported".into()));
                }
                if let Some((key, value)) = stripped.split_once('=') {
                    args.flags.insert(key.to_owned(), value.to_owned());
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let value = iter.next().expect("peeked");
                    args.flags.insert(stripped.to_owned(), value);
                } else {
                    args.flags.insert(stripped.to_owned(), "true".to_owned());
                }
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// A parsed flag with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("flag --{key} has invalid value {raw:?}"))),
        }
    }

    /// A boolean flag (present = true).
    pub fn get_bool(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--seed", "7", "--out", "dir"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("out"), Some("dir"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn equals_form() {
        let a = parse(&["--alpha=2.5"]);
        assert_eq!(a.get("alpha"), Some("2.5"));
    }

    #[test]
    fn boolean_flags() {
        let a = parse(&["--verbose", "--seed", "3"]);
        assert!(a.get_bool("verbose"));
        assert!(!a.get_bool("quiet"));
        assert_eq!(a.get("seed"), Some("3"));
    }

    #[test]
    fn positional_collected() {
        let a = parse(&["file.csv", "--k", "v", "other"]);
        assert_eq!(a.positional(), &["file.csv".to_owned(), "other".into()]);
    }

    #[test]
    fn parsed_with_default() {
        let a = parse(&["--n", "42"]);
        assert_eq!(a.get_parsed("n", 0u32).unwrap(), 42);
        assert_eq!(a.get_parsed("m", 7u32).unwrap(), 7);
        let bad = parse(&["--n", "x"]);
        assert!(bad.get_parsed("n", 0u32).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&[]);
        let err = a.require("receipts").unwrap_err();
        assert!(err.to_string().contains("--receipts"));
    }

    #[test]
    fn bare_double_dash_rejected() {
        assert!(Args::parse(vec!["--".to_owned()]).is_err());
    }
}
