//! CLI subcommand implementations.

use crate::args::Args;
use crate::labels_csv;
use attrition_core::{analyze_customer, StabilityEngine, StabilityMonitor, StabilityParams};
use attrition_datagen::{generate as generate_dataset, ScenarioConfig};
use attrition_eval::auroc;
use attrition_replica::{
    rejoin_via, FetchLoopConfig, PrimaryService, ReplClient, ReplicaConfig, ReplicaEngine,
};
use attrition_rfm::{out_of_fold_scores, RfmModel};
use attrition_serve::{
    DurabilityConfig, Fallback, ServerConfig, Service, ShardedMonitor, SyncPolicy,
};
use attrition_store::{
    csv_io, project_to_segments, DatasetStats, ReceiptStore, WindowAlignment, WindowSpec,
    WindowedDatabase,
};
use attrition_types::{Basket, CustomerId, SegmentId, Taxonomy, WindowIndex};
use attrition_util::table::fmt_f64;
use attrition_util::Table;
use std::error::Error;
use std::path::Path;
use std::sync::Arc;

type CliResult = Result<(), Box<dyn Error>>;

/// Flags every subcommand accepts, appended to each command's help.
const GLOBAL_FLAGS_HELP: &str = "\n\nGLOBAL FLAGS:\n    \
    --metrics[=text|json]  print pipeline metrics after the command (default text)";

/// Per-command help text.
pub fn help_for(command: &str) -> String {
    let body: String = match command {
        "generate" => "\
attrition generate — synthesize a dataset

FLAGS:
    --out DIR           output directory (required; created if missing)
    --preset NAME       paper | small (default: small)
    --format FMT        receipts format: csv | bin (default: csv)
    --seed N            override the preset's seed
    --loyal N           override the loyal cohort size
    --defectors N       override the defector cohort size
    --months N          override the observation length in months
    --onset N           override the defection onset month

Writes receipts.csv (or receipts.bin), taxonomy.csv and labels.csv into DIR."
            .into(),
        "stats" => "\
attrition stats — dataset description statistics

FLAGS:
    --receipts FILE     receipts CSV (required)
    --taxonomy FILE     taxonomy CSV (optional; enables segment counts)"
            .into(),
        "evaluate" => "\
attrition evaluate — per-window AUROC of both models

FLAGS:
    --receipts FILE     receipts CSV (required)
    --taxonomy FILE     taxonomy CSV (required; evaluation runs at segment level)
    --labels FILE       labels CSV (required)
    --alpha X           significance base α (default 2)
    --window N          window length in months (default 2)
    --folds N           RFM cross-fitting folds (default 5)"
            .into(),
        "explain" => "\
attrition explain — one customer's stability trajectory

FLAGS:
    --receipts FILE     receipts CSV (required)
    --taxonomy FILE     taxonomy CSV (required)
    --customer ID       customer to analyze (required)
    --alpha X           significance base α (default 2)
    --window N          window length in months (default 2)
    --top N             lost products shown per window (default 5)"
            .into(),
        "rank" => "\
attrition rank — the most at-risk customers at a window

FLAGS:
    --receipts FILE     receipts CSV/binary (required)
    --taxonomy FILE     taxonomy CSV (required)
    --window-index K    window to rank at (default: last complete window)
    --top N             list size (default 20)
    --alpha X           significance base α (default 2)
    --window N          window length in months (default 2)"
            .into(),
        "export" => "\
attrition export — write stability scores and explanations as CSV

FLAGS:
    --receipts FILE     receipts CSV/binary (required)
    --taxonomy FILE     taxonomy CSV (required)
    --out DIR           output directory (required; created if missing)
    --alpha X           significance base α (default 2)
    --window N          window length in months (default 2)
    --min-share X       minimum significance share for exported losses (default 0.02)

Writes stability_scores.csv and explanations.csv into DIR."
            .into(),
        "monitor" => "\
attrition monitor — replay receipts through the streaming monitor

FLAGS:
    --receipts FILE     receipts CSV (required)
    --taxonomy FILE     taxonomy CSV (required)
    --beta X            alert threshold on stability (default 0.6)
    --alpha X           significance base α (default 2)
    --window N          window length in months (default 2)
    --warmup N          windows to skip before alerting (default 3)"
            .into(),
        "serve" => "\
attrition serve — online scoring server (newline-delimited TCP protocol)

FLAGS:
    --addr HOST:PORT        bind address (default 127.0.0.1:7711; port 0 = ephemeral)
    --origin YYYY-MM-DD     window grid origin (required unless --restore)
    --window N              window length in months (default 2)
    --alpha X               significance base α (default 2)
    --shards N              monitor shards (default 8)
    --workers N             connection worker threads (default 4)
    --queue N               waiting connections before ERR busy (default 64)
    --read-timeout-ms N     idle connection timeout (default 5000)
    --snapshot PATH         checkpoint written by SNAPSHOT and at shutdown
    --restore PATH          start from a checkpoint (grid, α and explanation
                            depth come from its header; --origin/--window/
                            --alpha/--max-explanations are rejected)
    --max-explanations N    lost products per closed-window explanation (default 5)

DURABILITY (see README's Durability section):
    --wal-dir DIR           write-ahead log + checkpoint directory; on start
                            the newest valid checkpoint is recovered and the
                            WAL replayed (--origin etc. only seed first boot;
                            conflicts with --restore)
    --sync-policy P         never | interval:N | always (default always)
    --checkpoint-every N    checkpoint every N logged requests (default 1024;
                            0 disables the count trigger)
    --checkpoint-secs N     checkpoint every N seconds (default 30; 0 disables)
    --checkpoint-format F   text | binary (default binary); recovery reads
                            either format regardless of this setting
    --keep-checkpoints N    checkpoints retained after rotation (default 2)

Serves INGEST/SCORE/FLUSH/SNAPSHOT/STATS/PING/SHUTDOWN until SHUTDOWN or
ctrl-c, then drains connections, writes the snapshot (if configured) and
prints a summary. With --wal-dir the exit code is nonzero when the final
checkpoint or snapshot failed (the WAL is retained; recovery replays it),
and the server also acts as a replication primary: `attrition replicate`
followers pull its WAL over the REPL verb (see README's Replication
section). See README's Serving section for the protocol."
            .into(),
        "replicate" => "\
attrition replicate — read-only replica of a `serve --wal-dir` primary

FLAGS:
    --primary HOST:PORT     the primary to pull the WAL from (required)
    --addr HOST:PORT        bind address (default 127.0.0.1:7712; port 0 = ephemeral)
    --wal-dir DIR           the replica's OWN wal directory (required; never
                            the primary's)
    --origin YYYY-MM-DD     window grid origin (required; only seeds first
                            boot — recovered or shipped state wins)
    --window N              window length in months (default 2)
    --alpha X               significance base α (default 2)
    --max-explanations N    lost products per explanation (default 5)
    --shards N              monitor shards (default 8)
    --workers N             connection worker threads (default 4)
    --queue N               waiting connections before ERR busy (default 64)
    --read-timeout-ms N     idle/replication connection timeout (default 5000)
    --fetch-interval-ms N   pause between fetches once caught up (default 100)
    --batch-max N           records requested per replication batch (default 1024)
    --sync-policy P         never | interval:N | always (default always)
    --checkpoint-every N    checkpoint every N applied records (default 1024)
    --checkpoint-secs N     checkpoint every N seconds (default 30; 0 disables)
    --checkpoint-format F   text | binary (default binary)
    --keep-checkpoints N    checkpoints retained after rotation (default 2)
    --rejoin                run the divergence handshake against the primary
                            before serving: a deposed primary discards any
                            WAL suffix the new timeline disowned and heals
                            back in as a replica of the new epoch

Answers SCORE/STATS/PING locally while rejecting INGEST/FLUSH (read-only);
`PROMOTE` fsyncs the local WAL, durably bumps the epoch and starts
accepting writes — the promoted node then serves REPL to the next replica.
A fenced fetch triggers the rejoin handshake automatically; `--rejoin`
just runs it eagerly at startup. See README's Replication section for the
failover and rejoin walkthroughs."
            .into(),
        "scenarios" => "\
attrition scenarios — evaluate both models on the scenario library

FLAGS:
    --scenario NAME     run one scenario (default: all seven); one of
                        baseline, promo-shock, store-closure,
                        competitor-entry, seasonal-drift, household-coshop,
                        defection-mix
    --seed N            simulation seed (default: the paper seed)
    --quick             small population / short horizon (also enabled by
                        the ATTRITION_BENCH_QUICK environment variable)
    --out DIR           where scenario_eval.{json,csv} go (default: results)
    --window N          window length in months (default 2)
    --folds N           RFM cross-fitting folds (default 5)
    --fpr-budget X      loyal false-alarm budget for detection latency
                        (default 0.10)

Each scenario is simulated by the agent/event engine, which emits an
exact ground-truth label stream alongside the trips; both the stability
model and the RFM baseline are scored against it (final-window AUROC and
detection latency). Exits nonzero if any scenario yields an empty label
stream."
            .into(),
        other => return format!("no detailed help for {other:?}; run `attrition help`"),
    };
    format!("{body}{GLOBAL_FLAGS_HELP}")
}

fn load_store(path: &str) -> Result<ReceiptStore, Box<dyn Error>> {
    let _stage = attrition_obs::Stage::enter("ingest");
    let bytes =
        std::fs::read(path).map_err(|e| format!("cannot read receipts file {path}: {e}"))?;
    // Auto-detect: binary columnar files carry a magic header.
    if bytes.starts_with(&attrition_store::binary_io::MAGIC) {
        return Ok(attrition_store::store_from_bytes(&bytes)?);
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| format!("{path} is neither a binary store nor UTF-8 CSV"))?;
    Ok(csv_io::receipts_from_csv(&text)?)
}

fn load_taxonomy(path: &str) -> Result<Taxonomy, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read taxonomy file {path}: {e}"))?;
    Ok(csv_io::taxonomy_from_csv(&text)?)
}

/// Window grid shared by evaluate/explain/monitor: anchored at the first
/// day of the earliest receipt's month.
fn derive_spec(store: &ReceiptStore, w_months: u32) -> Result<WindowSpec, Box<dyn Error>> {
    let (first, _) = store
        .date_range()
        .ok_or("receipts file contains no receipts")?;
    Ok(WindowSpec::months(first.first_of_month(), w_months))
}

/// `attrition generate`
pub fn generate(args: &Args) -> CliResult {
    let out = args.require("out")?;
    let mut cfg = match args.get("preset").unwrap_or("small") {
        "paper" => ScenarioConfig::paper_default(),
        "small" => ScenarioConfig::small(),
        other => return Err(format!("unknown preset {other:?} (paper|small)").into()),
    };
    cfg.seed = args.get_parsed("seed", cfg.seed)?;
    cfg.n_loyal = args.get_parsed("loyal", cfg.n_loyal)?;
    cfg.n_defectors = args.get_parsed("defectors", cfg.n_defectors)?;
    cfg.n_months = args.get_parsed("months", cfg.n_months)?;
    cfg.onset_month = args.get_parsed("onset", cfg.onset_month)?;
    if cfg.onset_month >= cfg.n_months {
        return Err(format!(
            "onset month {} must precede the end of the observation ({} months)",
            cfg.onset_month, cfg.n_months
        )
        .into());
    }

    if !args.get_bool("quiet") {
        eprintln!(
            "generating {} loyal + {} defectors over {} months (seed {})…",
            cfg.n_loyal, cfg.n_defectors, cfg.n_months, cfg.seed
        );
    }
    let dataset = generate_dataset(&cfg);
    let dir = Path::new(out);
    std::fs::create_dir_all(dir)?;
    match args.get("format").unwrap_or("csv") {
        "csv" => std::fs::write(
            dir.join("receipts.csv"),
            csv_io::receipts_to_csv(&dataset.store),
        )?,
        "bin" => std::fs::write(
            dir.join("receipts.bin"),
            attrition_store::store_to_bytes(&dataset.store),
        )?,
        other => return Err(format!("unknown format {other:?} (csv|bin)").into()),
    }
    std::fs::write(
        dir.join("taxonomy.csv"),
        csv_io::taxonomy_to_csv(&dataset.taxonomy),
    )?;
    std::fs::write(
        dir.join("labels.csv"),
        labels_csv::labels_to_csv(&dataset.labels),
    )?;
    println!(
        "wrote {} receipts, {} products, {} labels to {}",
        dataset.store.num_receipts(),
        dataset.taxonomy.num_products(),
        dataset.labels.len(),
        dir.display()
    );
    Ok(())
}

/// `attrition stats`
pub fn stats(args: &Args) -> CliResult {
    let store = load_store(args.require("receipts")?)?;
    let taxonomy = match args.get("taxonomy") {
        Some(path) => Some(load_taxonomy(path)?),
        None => None,
    };
    println!("{}", DatasetStats::compute(&store, taxonomy.as_ref()));
    Ok(())
}

/// `attrition evaluate`
pub fn evaluate(args: &Args) -> CliResult {
    let store = load_store(args.require("receipts")?)?;
    let taxonomy = load_taxonomy(args.require("taxonomy")?)?;
    let labels_text = std::fs::read_to_string(args.require("labels")?)?;
    let labels = labels_csv::labels_from_csv(&labels_text)?;
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let w_months: u32 = args.get_parsed("window", 2)?;
    let folds: usize = args.get_parsed("folds", 5)?;
    let params = StabilityParams::new(alpha)?;

    let seg_store = project_to_segments(&store, &taxonomy)?;
    let spec = derive_spec(&seg_store, w_months)?;
    let db = WindowedDatabase::covering_store(&seg_store, spec, WindowAlignment::Global);
    let matrix = StabilityEngine::new(params).compute(&db);
    let rfm = RfmModel::new(1);

    let mut table = Table::new(["window", "end month", "stability AUROC", "RFM AUROC"]);
    for k in 0..db.num_windows {
        let pairs = matrix.attrition_scores_at(WindowIndex::new(k));
        let customers: Vec<CustomerId> = pairs.iter().map(|(c, _)| *c).collect();
        let stab_scores: Vec<f64> = pairs.iter().map(|(_, s)| *s).collect();
        let lab: Vec<bool> = customers
            .iter()
            .map(|c| {
                labels
                    .cohort_of(*c)
                    .map(|co| co.is_defector())
                    .unwrap_or(false)
            })
            .collect();
        let stab_auc = auroc(&lab, &stab_scores);

        let rows = rfm.features_at(&db, WindowIndex::new(k));
        let features: Vec<attrition_rfm::RfmFeatures> = rows.iter().map(|(_, f)| *f).collect();
        let rfm_auc = if lab.iter().filter(|&&l| l).count() >= folds
            && lab.iter().filter(|&&l| !l).count() >= folds
        {
            let scores = out_of_fold_scores(&features, &lab, 1, folds, 42);
            auroc(&lab, &scores)
        } else {
            f64::NAN
        };
        table.row([
            k.to_string(),
            ((k + 1) * w_months).to_string(),
            fmt_f64(stab_auc, 3),
            fmt_f64(rfm_auc, 3),
        ]);
    }
    println!(
        "evaluation at segment granularity: {} customers, α = {alpha}, {w_months}-month windows\n",
        db.num_customers()
    );
    println!("{table}");
    Ok(())
}

/// `attrition explain`
pub fn explain(args: &Args) -> CliResult {
    let store = load_store(args.require("receipts")?)?;
    let taxonomy = load_taxonomy(args.require("taxonomy")?)?;
    let customer = CustomerId::new(args.get_parsed("customer", u64::MAX)?);
    if customer.raw() == u64::MAX {
        return Err("missing required flag --customer".into());
    }
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let w_months: u32 = args.get_parsed("window", 2)?;
    let top: usize = args.get_parsed("top", 5)?;
    let params = StabilityParams::new(alpha)?;

    let seg_store = project_to_segments(&store, &taxonomy)?;
    let spec = derive_spec(&seg_store, w_months)?;
    let db = WindowedDatabase::covering_store(&seg_store, spec, WindowAlignment::Global);
    let windows = db.customer(customer)?;
    let analysis = analyze_customer(windows, params, top);

    println!(
        "stability trajectory of customer {customer} (α = {alpha}, {w_months}-month windows):\n"
    );
    let mut table = Table::new(["window", "stability", "lost products (share)"]);
    for (point, expl) in analysis.points.iter().zip(&analysis.explanations) {
        let lost: Vec<String> = expl
            .lost
            .iter()
            .filter(|l| l.share >= 0.02)
            .map(|l| {
                let name = taxonomy
                    .segment(SegmentId::new(l.item.raw()))
                    .map(|s| s.name.clone())
                    .unwrap_or_else(|_| l.item.to_string());
                format!("{name} ({:.0}%)", l.share * 100.0)
            })
            .collect();
        table.row([
            point.window.raw().to_string(),
            fmt_f64(point.value, 3),
            lost.join(", "),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// `attrition rank`
pub fn rank(args: &Args) -> CliResult {
    let store = load_store(args.require("receipts")?)?;
    let taxonomy = load_taxonomy(args.require("taxonomy")?)?;
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let w_months: u32 = args.get_parsed("window", 2)?;
    let top: usize = args.get_parsed("top", 20)?;
    let params = StabilityParams::new(alpha)?;

    let seg_store = project_to_segments(&store, &taxonomy)?;
    let spec = derive_spec(&seg_store, w_months)?;
    let db = WindowedDatabase::covering_store(&seg_store, spec, WindowAlignment::Global);
    if db.num_windows == 0 {
        return Err("no complete windows in the data".into());
    }
    let k = args.get_parsed("window-index", db.num_windows - 1)?;
    if k >= db.num_windows {
        return Err(format!("window {k} out of range (have {})", db.num_windows).into());
    }
    let matrix = StabilityEngine::new(params).compute(&db);

    println!(
        "top {top} at-risk customers at window {k} (of {}):\n",
        db.num_windows
    );
    let mut table = Table::new(["customer", "stability", "top lost products"]);
    for (customer, score) in matrix.rank_at(WindowIndex::new(k), top) {
        let lost: Vec<String> = matrix
            .explanation(customer, WindowIndex::new(k))
            .map(|e| {
                e.lost
                    .iter()
                    .take(3)
                    .map(|l| {
                        taxonomy
                            .segment(SegmentId::new(l.item.raw()))
                            .map(|s| s.name.clone())
                            .unwrap_or_else(|_| l.item.to_string())
                    })
                    .collect()
            })
            .unwrap_or_default();
        table.row([
            customer.to_string(),
            fmt_f64(1.0 - score, 3),
            lost.join(", "),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// `attrition export`
pub fn export(args: &Args) -> CliResult {
    let store = load_store(args.require("receipts")?)?;
    let taxonomy = load_taxonomy(args.require("taxonomy")?)?;
    let out = args.require("out")?;
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let w_months: u32 = args.get_parsed("window", 2)?;
    let min_share: f64 = args.get_parsed("min-share", 0.02)?;
    let params = StabilityParams::new(alpha)?;

    let seg_store = project_to_segments(&store, &taxonomy)?;
    let spec = derive_spec(&seg_store, w_months)?;
    let db = WindowedDatabase::covering_store(&seg_store, spec, WindowAlignment::Global);
    let matrix = StabilityEngine::new(params).compute(&db);

    let dir = Path::new(out);
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("stability_scores.csv"),
        attrition_core::matrix_to_csv(&matrix),
    )?;
    std::fs::write(
        dir.join("explanations.csv"),
        attrition_core::explanations_to_csv(&matrix, min_share),
    )?;
    println!(
        "exported {} customers × {} windows to {}",
        matrix.num_customers(),
        db.num_windows,
        dir.display()
    );
    Ok(())
}

/// `attrition monitor`
pub fn monitor(args: &Args) -> CliResult {
    let store = load_store(args.require("receipts")?)?;
    let taxonomy = load_taxonomy(args.require("taxonomy")?)?;
    let beta: f64 = args.get_parsed("beta", 0.6)?;
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let w_months: u32 = args.get_parsed("window", 2)?;
    let warmup: u32 = args.get_parsed("warmup", 3)?;
    let params = StabilityParams::new(alpha)?;
    if !(0.0..=1.0).contains(&beta) {
        return Err("--beta must be within [0, 1]".into());
    }

    let seg_store = project_to_segments(&store, &taxonomy)?;
    let spec = derive_spec(&seg_store, w_months)?;
    let mut mon = StabilityMonitor::new(spec, params).with_max_explanations(3);
    let mut alerts = 0usize;
    let stream: Vec<(CustomerId, attrition_types::Date, Basket)> =
        attrition_store::chronological(&seg_store)
            .map(|r| (r.customer, r.date, Basket::new(r.items.to_vec())))
            .collect();
    for (customer, date, basket) in stream {
        for closed in mon.ingest(customer, date, &basket) {
            if closed.point.window.raw() >= warmup && closed.point.value <= beta {
                alerts += 1;
                let lost: Vec<String> = closed
                    .explanation
                    .lost
                    .iter()
                    .map(|l| {
                        taxonomy
                            .segment(SegmentId::new(l.item.raw()))
                            .map(|s| s.name.clone())
                            .unwrap_or_else(|_| l.item.to_string())
                    })
                    .collect();
                println!(
                    "ALERT customer {} window {} stability {:.3} lost: {}",
                    closed.customer,
                    closed.point.window.raw(),
                    closed.point.value,
                    lost.join(", ")
                );
            }
        }
    }
    println!("\n{alerts} alerts (stability ≤ {beta}, warm-up {warmup} windows)");
    Ok(())
}

/// `attrition serve`
pub fn serve(args: &Args) -> CliResult {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7711").to_owned();
    let shards: usize = args.get_parsed("shards", 8)?;
    let workers: usize = args.get_parsed("workers", 4)?;
    let queue: usize = args.get_parsed("queue", 64)?;
    let read_timeout_ms: u64 = args.get_parsed("read-timeout-ms", 5000)?;
    if shards == 0 || workers == 0 {
        return Err("--shards and --workers must be at least 1".into());
    }

    // Durable mode: `--wal-dir` recovers the newest valid checkpoint +
    // WAL from the directory and keeps logging there; `--restore` is the
    // legacy one-shot snapshot load and conflicts with it.
    let wal_dir = args.get("wal-dir").map(std::path::PathBuf::from);
    if wal_dir.is_some() && args.get("restore").is_some() {
        return Err(
            "--restore conflicts with --wal-dir (recovery already loads the newest \
             checkpoint in the wal directory)"
                .into(),
        );
    }
    if let Some(dir) = wal_dir {
        return serve_durable(args, dir, addr, shards, workers, queue, read_timeout_ms);
    }

    // The window grid comes either from flags or — under `--restore` —
    // from the checkpoint's own header; mixing the two is rejected.
    let (spec, params, monitor) = match args.get("restore") {
        Some(path) => {
            for flag in ["origin", "window", "alpha", "max-explanations"] {
                if args.get(flag).is_some() {
                    return Err(format!(
                        "--{flag} conflicts with --restore (the checkpoint header fixes it)"
                    )
                    .into());
                }
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read checkpoint {path}: {e}"))?;
            let merged = StabilityMonitor::restore(&text)
                .map_err(|e| format!("cannot restore checkpoint {path}: {e}"))?;
            eprintln!("restored {} customers from {path}", merged.num_customers());
            let (spec, params) = (merged.spec(), merged.params());
            (spec, params, ShardedMonitor::from_monitor(merged, shards))
        }
        None => {
            let origin = attrition_types::Date::parse_iso(args.require("origin")?)
                .map_err(|e| format!("bad --origin: {e}"))?;
            let w_months: u32 = args.get_parsed("window", 2)?;
            let alpha: f64 = args.get_parsed("alpha", 2.0)?;
            let max_explanations: usize = args.get_parsed("max-explanations", 5)?;
            let params = StabilityParams::new(alpha)?;
            let spec = WindowSpec::months(origin, w_months);
            (
                spec,
                params,
                ShardedMonitor::new(shards, spec, params, max_explanations),
            )
        }
    };

    let mut config = ServerConfig::new(addr, spec, params);
    config.n_shards = shards;
    config.workers = workers;
    config.queue_capacity = queue;
    config.read_timeout = std::time::Duration::from_millis(read_timeout_ms);
    config.snapshot_path = args.get("snapshot").map(std::path::PathBuf::from);

    attrition_serve::install_sigint_handler();
    let handle = attrition_serve::start_with(config, monitor)?;
    println!("listening on {}", handle.local_addr());
    let summary = handle.join();
    println!(
        "served {} requests ({} errors) over {} connections ({} rejected busy); \
         {} customers tracked",
        summary.requests,
        summary.errors,
        summary.connections,
        summary.rejected_busy,
        summary.customers
    );
    if let Some(path) = &summary.snapshot_path {
        println!("snapshot written to {}", path.display());
    }
    Ok(())
}

/// `attrition serve --wal-dir …`: recover, then serve with WAL +
/// periodic checkpoints. Split out of [`serve`] because the grid comes
/// from recovery (checkpoint header wins over flags) and the exit code
/// must reflect shutdown durability.
#[allow(clippy::too_many_arguments)]
fn serve_durable(
    args: &Args,
    wal_dir: std::path::PathBuf,
    addr: String,
    shards: usize,
    workers: usize,
    queue: usize,
    read_timeout_ms: u64,
) -> CliResult {
    let sync_policy = SyncPolicy::parse(args.get("sync-policy").unwrap_or("always"))
        .map_err(|e| format!("bad --sync-policy: {e}"))?;
    let checkpoint_every: u64 = args.get_parsed("checkpoint-every", 1024)?;
    let checkpoint_secs: u64 = args.get_parsed("checkpoint-secs", 30)?;
    let keep_checkpoints: usize = args.get_parsed("keep-checkpoints", 2)?;
    if keep_checkpoints == 0 {
        return Err("--keep-checkpoints must be at least 1".into());
    }
    let checkpoint_format: attrition_serve::CheckpointFormat = args
        .get("checkpoint-format")
        .unwrap_or("binary")
        .parse()
        .map_err(|e| format!("bad --checkpoint-format: {e}"))?;

    // First boot needs a grid from flags; on restart the recovered
    // checkpoint's header wins and the flags are ignored.
    let fallback = match args.get("origin") {
        Some(raw) => {
            let origin =
                attrition_types::Date::parse_iso(raw).map_err(|e| format!("bad --origin: {e}"))?;
            let w_months: u32 = args.get_parsed("window", 2)?;
            let alpha: f64 = args.get_parsed("alpha", 2.0)?;
            let max_explanations: usize = args.get_parsed("max-explanations", 5)?;
            Some(Fallback {
                spec: WindowSpec::months(origin, w_months),
                params: StabilityParams::new(alpha)?,
                max_explanations,
            })
        }
        None => None,
    };
    let (recovered, stats) = attrition_serve::recover(&wal_dir, fallback.as_ref())
        .map_err(|e| format!("cannot recover from {}: {e}", wal_dir.display()))?;
    eprintln!("recovery: {stats}");

    let (spec, params) = (recovered.spec(), recovered.params());
    let mut config = ServerConfig::new(addr, spec, params);
    config.n_shards = shards;
    config.workers = workers;
    config.queue_capacity = queue;
    config.read_timeout = std::time::Duration::from_millis(read_timeout_ms);
    config.snapshot_path = args.get("snapshot").map(std::path::PathBuf::from);
    config.durability = Some(DurabilityConfig {
        wal_dir: wal_dir.clone(),
        sync_policy,
        checkpoint_every_requests: checkpoint_every,
        checkpoint_every: (checkpoint_secs > 0)
            .then(|| std::time::Duration::from_secs(checkpoint_secs)),
        keep_checkpoints,
        checkpoint_format,
        fault_plan: None,
    });

    attrition_serve::install_sigint_handler();
    // A durable server is also a replication primary: wrap the engine
    // so `REPL` fetches are answered from its own WAL directory.
    let engine = Arc::new(attrition_serve::Engine::open(
        ShardedMonitor::from_monitor(recovered, shards),
        config.snapshot_path.clone(),
        config.durability.as_ref(),
        stats.next_seq,
    )?);
    let primary = Arc::new(PrimaryService::open(engine, &wal_dir)?);
    let handle = attrition_serve::start_service(config, primary)?;
    println!("listening on {}", handle.local_addr());
    let summary = handle.join();
    println!(
        "served {} requests ({} errors) over {} connections ({} rejected busy); \
         {} customers tracked; {} wal appends, {} fsyncs, {} checkpoints",
        summary.requests,
        summary.errors,
        summary.connections,
        summary.rejected_busy,
        summary.customers,
        summary.wal_appends,
        summary.wal_fsyncs,
        summary.checkpoints,
    );
    if let Some(path) = &summary.snapshot_path {
        println!("snapshot written to {}", path.display());
    }
    // A failed shutdown checkpoint/snapshot is a crash-equivalent exit:
    // the WAL still holds the tail, so recovery is safe — but the
    // operator must see a nonzero status, not a silent success.
    if let Some(e) = &summary.checkpoint_error {
        return Err(format!(
            "shutdown checkpoint failed (wal retained, recovery will replay): {e}"
        )
        .into());
    }
    if let Some(e) = &summary.snapshot_error {
        return Err(format!("shutdown snapshot failed: {e}").into());
    }
    Ok(())
}

/// `attrition replicate`: a read-only follower of a `serve --wal-dir`
/// primary. Pulls `REPL` batches over TCP, applies them through its own
/// durable engine, answers `SCORE`/`STATS` locally, and takes over as
/// the primary on `PROMOTE` (see DESIGN §13).
pub fn replicate(args: &Args) -> CliResult {
    let primary_addr = args.require("primary")?.to_owned();
    let addr = args.get("addr").unwrap_or("127.0.0.1:7712").to_owned();
    let wal_dir = std::path::PathBuf::from(args.require("wal-dir")?);
    let shards: usize = args.get_parsed("shards", 8)?;
    let workers: usize = args.get_parsed("workers", 4)?;
    let queue: usize = args.get_parsed("queue", 64)?;
    let read_timeout_ms: u64 = args.get_parsed("read-timeout-ms", 5000)?;
    if shards == 0 || workers == 0 {
        return Err("--shards and --workers must be at least 1".into());
    }
    let fetch_interval_ms: u64 = args.get_parsed("fetch-interval-ms", 100)?;
    let batch_max: u64 = args.get_parsed("batch-max", 1024)?;
    if batch_max == 0 {
        return Err("--batch-max must be at least 1".into());
    }
    let sync_policy = SyncPolicy::parse(args.get("sync-policy").unwrap_or("always"))
        .map_err(|e| format!("bad --sync-policy: {e}"))?;
    let checkpoint_every: u64 = args.get_parsed("checkpoint-every", 1024)?;
    let checkpoint_secs: u64 = args.get_parsed("checkpoint-secs", 30)?;
    let keep_checkpoints: usize = args.get_parsed("keep-checkpoints", 2)?;
    if keep_checkpoints == 0 {
        return Err("--keep-checkpoints must be at least 1".into());
    }
    let checkpoint_format: attrition_serve::CheckpointFormat = args
        .get("checkpoint-format")
        .unwrap_or("binary")
        .parse()
        .map_err(|e| format!("bad --checkpoint-format: {e}"))?;

    // The grid only seeds a replica with no local state yet; a recovered
    // checkpoint (or the first shipped bootstrap snapshot) wins.
    let origin = attrition_types::Date::parse_iso(args.require("origin")?)
        .map_err(|e| format!("bad --origin: {e}"))?;
    let w_months: u32 = args.get_parsed("window", 2)?;
    let alpha: f64 = args.get_parsed("alpha", 2.0)?;
    let max_explanations: usize = args.get_parsed("max-explanations", 5)?;
    let fallback = Fallback {
        spec: WindowSpec::months(origin, w_months),
        params: StabilityParams::new(alpha)?,
        max_explanations,
    };

    let rcfg = ReplicaConfig {
        durability: DurabilityConfig {
            wal_dir: wal_dir.clone(),
            sync_policy,
            checkpoint_every_requests: checkpoint_every,
            checkpoint_every: (checkpoint_secs > 0)
                .then(|| std::time::Duration::from_secs(checkpoint_secs)),
            keep_checkpoints,
            checkpoint_format,
            fault_plan: None,
        },
        wal_dir,
        n_shards: shards,
        fallback,
        accept_stale_epoch: false,
        keep_divergent_suffix: false,
    };
    let (replica, stats) =
        ReplicaEngine::open(rcfg).map_err(|e| format!("cannot recover replica state: {e}"))?;
    eprintln!("recovery: {stats}");
    let replica = Arc::new(replica);

    // `--rejoin`: a deposed primary healing back in runs the divergence
    // handshake eagerly, before serving reads — otherwise clients could
    // briefly read the divergent suffix the new timeline disowned. The
    // fetch loop would also catch it on the first fenced fetch; this
    // just moves the discard ahead of the listener.
    if args.get_bool("rejoin") {
        let policy = attrition_serve::RetryPolicy {
            budget: 10,
            ..attrition_serve::RetryPolicy::default()
        };
        let mut jitter = attrition_serve::SplitMix64::new(policy.seed);
        let mut client = ReplClient::new(
            primary_addr.clone(),
            std::time::Duration::from_millis(read_timeout_ms),
        );
        let mut attempt: u32 = 0;
        let outcome = loop {
            match rejoin_via(&mut client, &replica) {
                Ok(outcome) => break outcome,
                Err(e) if attempt + 1 < policy.budget => {
                    attempt += 1;
                    eprintln!(
                        "rejoin: handshake with {primary_addr} failed (attempt {attempt}): {e}"
                    );
                    std::thread::sleep(policy.backoff(attempt, &mut jitter));
                }
                Err(e) => {
                    return Err(format!(
                        "rejoin handshake with {primary_addr} failed after {} attempts: {e}",
                        attempt + 1
                    )
                    .into());
                }
            }
        };
        if outcome.adopted {
            eprintln!(
                "rejoin: adopted epoch {} ({} divergent records discarded)",
                outcome.epoch, outcome.divergent_records
            );
        } else {
            eprintln!("rejoin: already current at epoch {}", outcome.epoch);
        }
    }

    let mut config = ServerConfig::new(addr, fallback.spec, fallback.params);
    config.n_shards = shards;
    config.workers = workers;
    config.queue_capacity = queue;
    config.read_timeout = std::time::Duration::from_millis(read_timeout_ms);
    config.max_explanations = fallback.max_explanations;

    attrition_serve::install_sigint_handler();
    let handle = attrition_serve::start_service(config, Arc::clone(&replica) as Arc<dyn Service>)?;
    println!("listening on {}", handle.local_addr());

    let fetch_cfg = FetchLoopConfig {
        primary: primary_addr.clone(),
        interval: std::time::Duration::from_millis(fetch_interval_ms),
        batch_max,
        read_timeout: std::time::Duration::from_millis(read_timeout_ms),
        backoff: attrition_serve::RetryPolicy::default(),
    };
    let fetch_replica = Arc::clone(&replica);
    let fetcher = std::thread::Builder::new()
        .name("repl-fetcher".into())
        .spawn(move || attrition_replica::run_fetch_loop(&fetch_replica, &fetch_cfg))
        .map_err(|e| format!("cannot spawn the fetch loop: {e}"))?;

    let summary = handle.join();
    // SIGINT stops the server without tripping the replica's own flag;
    // set it so the fetch loop exits within one interval.
    replica.request_shutdown();
    let rounds = fetcher.join().unwrap_or(0);
    println!(
        "served {} requests ({} errors) over {} connections ({} rejected busy); \
         {} customers tracked; {} wal appends, {} fsyncs, {} checkpoints; \
         {rounds} replication fetch rounds from {primary_addr}",
        summary.requests,
        summary.errors,
        summary.connections,
        summary.rejected_busy,
        summary.customers,
        summary.wal_appends,
        summary.wal_fsyncs,
        summary.checkpoints,
    );
    if replica.promoted() {
        println!(
            "promoted: epoch {}, applied LSN {}",
            replica.epoch(),
            replica.applied_seq()
        );
    }
    if let Some(e) = &summary.checkpoint_error {
        return Err(format!(
            "shutdown checkpoint failed (wal retained, recovery will replay): {e}"
        )
        .into());
    }
    if let Some(e) = &summary.snapshot_error {
        return Err(format!("shutdown snapshot failed: {e}").into());
    }
    Ok(())
}
