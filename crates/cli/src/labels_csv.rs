//! Cohort-label CSV: `customer,cohort,onset_month` with cohort ∈
//! {`loyal`, `defector`} and an empty onset for loyal customers.

use attrition_datagen::{Cohort, CustomerLabel, LabelSet};
use attrition_types::CustomerId;
use attrition_util::csv::{parse_document, CsvWriter};

/// Serialize labels (with header).
pub fn labels_to_csv(labels: &LabelSet) -> String {
    let mut w = CsvWriter::new();
    w.record(&["customer", "cohort", "onset_month"]);
    for label in labels.labels() {
        match label.cohort {
            Cohort::Loyal => w.record(&[&label.customer.raw().to_string(), "loyal", ""]),
            Cohort::Defector { onset_month } => w.record(&[
                &label.customer.raw().to_string(),
                "defector",
                &onset_month.to_string(),
            ]),
        };
    }
    w.finish()
}

/// Parse labels CSV (header optional).
pub fn labels_from_csv(text: &str) -> Result<LabelSet, String> {
    let mut labels = Vec::new();
    for (idx, record) in parse_document(text).enumerate() {
        let line = idx + 1;
        let fields = record.ok_or_else(|| format!("line {line}: malformed record"))?;
        if idx == 0 && fields.first().map(String::as_str) == Some("customer") {
            continue;
        }
        if fields.len() != 3 {
            return Err(format!(
                "line {line}: expected 3 fields, got {}",
                fields.len()
            ));
        }
        let customer: u64 = fields[0]
            .parse()
            .map_err(|_| format!("line {line}: bad customer id"))?;
        let cohort = match fields[1].as_str() {
            "loyal" => Cohort::Loyal,
            "defector" => {
                let onset: u32 = fields[2]
                    .parse()
                    .map_err(|_| format!("line {line}: defector needs an onset_month"))?;
                Cohort::Defector { onset_month: onset }
            }
            other => return Err(format!("line {line}: unknown cohort {other:?}")),
        };
        labels.push(CustomerLabel {
            customer: CustomerId::new(customer),
            cohort,
        });
    }
    Ok(LabelSet::new(labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let set = LabelSet::new(vec![
            CustomerLabel {
                customer: CustomerId::new(1),
                cohort: Cohort::Loyal,
            },
            CustomerLabel {
                customer: CustomerId::new(2),
                cohort: Cohort::Defector { onset_month: 18 },
            },
        ]);
        let csv = labels_to_csv(&set);
        let back = labels_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.cohort_of(CustomerId::new(1)), Some(Cohort::Loyal));
        assert_eq!(
            back.cohort_of(CustomerId::new(2)),
            Some(Cohort::Defector { onset_month: 18 })
        );
    }

    #[test]
    fn bad_rows_rejected() {
        assert!(labels_from_csv("x,loyal,\n").is_err());
        assert!(labels_from_csv("1,ghost,\n").is_err());
        assert!(labels_from_csv("1,defector,\n").is_err());
        assert!(labels_from_csv("1,loyal\n").is_err());
    }

    #[test]
    fn headerless_accepted() {
        let back = labels_from_csv("5,loyal,\n").unwrap();
        assert_eq!(back.len(), 1);
    }
}
