//! `attrition` — command-line interface to the workspace.
//!
//! ```text
//! attrition generate --out DIR [--preset paper|small] [--seed N]
//!                    [--loyal N] [--defectors N]
//! attrition stats    --receipts FILE [--taxonomy FILE]
//! attrition evaluate --receipts FILE --taxonomy FILE --labels FILE
//!                    [--alpha 2] [--window 2] [--folds 5]
//! attrition explain  --receipts FILE --taxonomy FILE --customer ID
//!                    [--alpha 2] [--window 2] [--top 5]
//! attrition rank     --receipts FILE --taxonomy FILE
//!                    [--window-index K] [--top 20] [--alpha 2] [--window 2]
//! attrition export   --receipts FILE --taxonomy FILE --out DIR
//!                    [--alpha 2] [--window 2] [--min-share 0.02]
//! attrition monitor  --receipts FILE --taxonomy FILE [--beta 0.6]
//!                    [--alpha 2] [--window 2] [--warmup 3]
//! attrition serve    --origin DATE [--addr HOST:PORT] [--window 2] [--alpha 2]
//!                    [--shards 8] [--workers 4] [--queue 64]
//!                    [--snapshot PATH | --restore PATH]
//! attrition replicate --primary HOST:PORT --wal-dir DIR --origin DATE
//!                    [--addr HOST:PORT] [--fetch-interval-ms 100] [--rejoin]
//! attrition scenarios [--scenario NAME] [--seed N] [--quick] [--out DIR]
//!                    [--window 2] [--folds 5] [--fpr-budget 0.10]
//! ```
//!
//! Receipt files are CSV (`attrition-store::csv_io`) or the binary
//! columnar format (`attrition-store::binary_io`), auto-detected on
//! load; labels use the `labels_csv` schema.

mod args;
mod commands;
mod labels_csv;
mod metrics;
mod scenarios;

use args::Args;
use metrics::MetricsMode;
use std::process::ExitCode;

const USAGE: &str = "\
attrition — customer stability modeling for grocery retail (EDBT 2016 reproduction)

USAGE:
    attrition <COMMAND> [FLAGS]

COMMANDS:
    generate   synthesize a dataset (receipts.csv, taxonomy.csv, labels.csv)
    stats      dataset description statistics
    evaluate   per-window AUROC of the stability model and the RFM baseline
    explain    one customer's stability trajectory with lost-product explanations
    rank       the most at-risk customers at a window, with lost products
    export     write stability scores and explanations as CSV files
    monitor    replay receipts through the streaming monitor, printing alerts
    serve      run the online scoring server (TCP line protocol)
    replicate  follow a durable server as a read-only, promotable replica
    scenarios  evaluate both models on the scenario library with exact ground truth
    help       show this message

GLOBAL FLAGS:
    --metrics[=text|json]   print pipeline metrics (stage timings, counters)
                            after the command; `json` emits one machine-readable
                            line as the final stdout output

Run `attrition <COMMAND> --help` for the command's flags.";

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = raw.collect();
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", commands::help_for(&command));
        return ExitCode::SUCCESS;
    }
    let parsed = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(stray) = parsed.positional().first() {
        eprintln!("error: unexpected positional argument {stray:?} (all inputs are flags)");
        return ExitCode::FAILURE;
    }
    let metrics_mode = match MetricsMode::from_flag(parsed.get("metrics")) {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if metrics_mode.is_on() {
        attrition_obs::set_enabled(true);
    }
    let result = match command.as_str() {
        "generate" => commands::generate(&parsed),
        "stats" => commands::stats(&parsed),
        "evaluate" => commands::evaluate(&parsed),
        "explain" => commands::explain(&parsed),
        "rank" => commands::rank(&parsed),
        "export" => commands::export(&parsed),
        "monitor" => commands::monitor(&parsed),
        "serve" => commands::serve(&parsed),
        "replicate" => commands::replicate(&parsed),
        "scenarios" => scenarios::scenarios(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => {
            if metrics_mode.is_on() {
                let report = attrition_obs::global().snapshot();
                println!("{}", metrics::render(&report, metrics_mode));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
