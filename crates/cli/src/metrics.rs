//! `--metrics[=text|json]` support.
//!
//! Every subcommand accepts the flag: `main` enables the observability
//! layer before dispatching and renders the collected registry after
//! the command succeeds — as a human-readable set of tables (`text`,
//! the default) or as one compact JSON object on the last stdout line
//! (`json`, for scripting).

use attrition_obs::MetricsReport;
use attrition_util::table::fmt_f64;
use attrition_util::Table;

/// Requested metrics output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsMode {
    /// Flag absent: observability stays disabled.
    Off,
    /// Bare `--metrics` or `--metrics=text`.
    Text,
    /// `--metrics=json`.
    Json,
}

impl MetricsMode {
    /// Interpret the raw `--metrics` flag value (`None` = flag absent;
    /// the parser stores `"true"` for a bare boolean flag).
    pub fn from_flag(value: Option<&str>) -> Result<MetricsMode, String> {
        match value {
            None => Ok(MetricsMode::Off),
            Some("true") | Some("text") => Ok(MetricsMode::Text),
            Some("json") => Ok(MetricsMode::Json),
            Some(other) => Err(format!(
                "flag --metrics has invalid value {other:?} (expected text or json)"
            )),
        }
    }

    /// Whether metric recording should be enabled.
    pub fn is_on(self) -> bool {
        !matches!(self, MetricsMode::Off)
    }
}

/// Render the snapshot per the mode. `Off` renders nothing; `Json` is a
/// single line; `Text` is a set of tables, one per metric kind.
pub fn render(report: &MetricsReport, mode: MetricsMode) -> String {
    match mode {
        MetricsMode::Off => String::new(),
        MetricsMode::Json => report.to_json(),
        MetricsMode::Text => render_text(report),
    }
}

fn render_text(report: &MetricsReport) -> String {
    let mut out = String::from("── pipeline metrics ──\n");
    let stages = report.stages();
    if !stages.is_empty() {
        let mut table = Table::new(["stage", "calls", "total ms", "mean ms", "min ms", "max ms"]);
        for s in &stages {
            table.row([
                s.path.clone(),
                s.calls.to_string(),
                fmt_f64(s.total_ms, 3),
                fmt_f64(s.mean_ms, 3),
                fmt_f64(s.min_ms, 3),
                fmt_f64(s.max_ms, 3),
            ]);
        }
        out.push_str(&format!("\n{table}\n"));
    }
    if !report.counters.is_empty() {
        let mut table = Table::new(["counter", "value"]);
        for (name, value) in &report.counters {
            table.row([name.clone(), value.to_string()]);
        }
        out.push_str(&format!("\n{table}\n"));
    }
    if !report.gauges.is_empty() {
        let mut table = Table::new(["gauge", "value"]);
        for (name, value) in &report.gauges {
            table.row([name.clone(), value.to_string()]);
        }
        out.push_str(&format!("\n{table}\n"));
    }
    // Stage timings already rendered above; list only plain histograms.
    let histograms: Vec<_> = report
        .histograms
        .iter()
        .filter(|h| !h.name.starts_with(attrition_obs::timer::STAGE_PREFIX))
        .collect();
    if !histograms.is_empty() {
        let mut table = Table::new(["histogram", "count", "mean ms", "min ms", "max ms"]);
        for h in histograms {
            table.row([
                h.name.clone(),
                h.count.to_string(),
                fmt_f64(h.mean, 3),
                fmt_f64(h.min, 3),
                fmt_f64(h.max, 3),
            ]);
        }
        out.push_str(&format!("\n{table}\n"));
    }
    if report.is_empty() {
        out.push_str("\n(no metrics were recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        assert_eq!(MetricsMode::from_flag(None).unwrap(), MetricsMode::Off);
        assert_eq!(
            MetricsMode::from_flag(Some("true")).unwrap(),
            MetricsMode::Text
        );
        assert_eq!(
            MetricsMode::from_flag(Some("text")).unwrap(),
            MetricsMode::Text
        );
        assert_eq!(
            MetricsMode::from_flag(Some("json")).unwrap(),
            MetricsMode::Json
        );
        assert!(MetricsMode::from_flag(Some("yaml")).is_err());
        assert!(!MetricsMode::Off.is_on());
        assert!(MetricsMode::Text.is_on());
        assert!(MetricsMode::Json.is_on());
    }

    #[test]
    fn render_modes() {
        let report = MetricsReport {
            counters: vec![("store.rows_read".into(), 42)],
            gauges: vec![("core.scoring.threads".into(), 4)],
            histograms: Vec::new(),
        };
        assert_eq!(render(&report, MetricsMode::Off), "");
        let json = render(&report, MetricsMode::Json);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"store.rows_read\":42"));
        let text = render(&report, MetricsMode::Text);
        assert!(text.contains("pipeline metrics"));
        assert!(text.contains("store.rows_read"));
        assert!(text.contains("core.scoring.threads"));
    }

    #[test]
    fn empty_report_text_says_so() {
        let report = MetricsReport {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        let text = render(&report, MetricsMode::Text);
        assert!(text.contains("no metrics were recorded"));
    }
}
