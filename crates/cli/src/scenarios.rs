//! `attrition scenarios` — per-scenario evaluation against exact ground
//! truth.
//!
//! Runs every scenario in the library (or one, via `--scenario`),
//! scores the stability model and the RFM baseline on the resulting
//! trips, and reports final-window AUROC plus detection latency at a
//! fixed false-alarm budget — all measured against the scenario's exact
//! ground-truth label stream. Writes `scenario_eval.json` and
//! `scenario_eval.csv` into `--out`.

use crate::args::Args;
use attrition_core::{StabilityEngine, StabilityParams};
use attrition_datagen::{run_scenario, ScenarioId, ScenarioRun};
use attrition_eval::{auroc, detection_latency, LatencyConfig, LatencySummary};
use attrition_rfm::{out_of_fold_scores, RfmModel};
use attrition_types::{CustomerId, WindowIndex};
use attrition_util::csv::CsvWriter;
use attrition_util::table::fmt_f64;
use attrition_util::Table;
use std::collections::HashMap;
use std::error::Error;
use std::path::Path;

type CliResult = Result<(), Box<dyn Error>>;

/// The paper seed; `--seed` overrides.
const DEFAULT_SEED: u64 = 0x00A7_7121_7102;

/// Everything measured about one scenario.
struct ScenarioReport {
    name: &'static str,
    summary: &'static str,
    customers: usize,
    months: u32,
    receipts: usize,
    label_events: usize,
    defectors: usize,
    exits: usize,
    reacquired: usize,
    auroc_stability: f64,
    auroc_rfm: f64,
    stability_latency: LatencySummary,
    rfm_latency: LatencySummary,
}

/// `attrition scenarios`
pub fn scenarios(args: &Args) -> CliResult {
    let seed: u64 = args.get_parsed("seed", DEFAULT_SEED)?;
    let quick = args.get_bool("quick") || std::env::var("ATTRITION_BENCH_QUICK").is_ok();
    let w_months: u32 = args.get_parsed("window", 2)?;
    let folds: usize = args.get_parsed("folds", 5)?;
    let fpr_budget: f64 = args.get_parsed("fpr-budget", 0.10)?;
    let out_dir = args.get("out").unwrap_or("results");
    let ids: Vec<ScenarioId> = match args.get("scenario") {
        Some(name) => vec![ScenarioId::parse(name).ok_or_else(|| {
            let known: Vec<&str> = ScenarioId::ALL.iter().map(|i| i.name()).collect();
            format!("unknown scenario {name:?} (one of: {})", known.join(", "))
        })?],
        None => ScenarioId::ALL.to_vec(),
    };

    let mut reports = Vec::new();
    for id in ids {
        eprintln!("running scenario {}…", id.name());
        let run = run_scenario(id, seed, quick);
        if run.truth.events().is_empty() {
            return Err(format!("scenario {} produced an empty label stream", id.name()).into());
        }
        reports.push(evaluate_run(&run, w_months, folds, fpr_budget)?);
    }

    print_table(&reports, seed, quick, fpr_budget);

    let dir = Path::new(out_dir);
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("scenario_eval.json"),
        render_json(&reports, seed, quick, w_months, fpr_budget),
    )?;
    std::fs::write(dir.join("scenario_eval.csv"), render_csv(&reports))?;
    println!(
        "\nwrote scenario_eval.json and scenario_eval.csv to {}",
        dir.display()
    );
    Ok(())
}

/// Score one scenario run with both models.
fn evaluate_run(
    run: &ScenarioRun,
    w_months: u32,
    folds: usize,
    fpr_budget: f64,
) -> Result<ScenarioReport, Box<dyn Error>> {
    use attrition_store::{WindowAlignment, WindowedDatabase};

    let seg_store = run.segment_store();
    let spec = run.window_spec(w_months);
    let n_windows = run.num_windows(w_months);
    let db = WindowedDatabase::from_store(&seg_store, spec, n_windows, WindowAlignment::Global);
    let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
    let labels = run.label_set();

    // Per-customer binary labels + onsets, in the matrix's customer order.
    let customers: Vec<CustomerId> = matrix.analyses().iter().map(|a| a.customer).collect();
    let is_defector: Vec<bool> = customers
        .iter()
        .map(|c| {
            labels
                .cohort_of(*c)
                .map(|k| k.is_defector())
                .unwrap_or(false)
        })
        .collect();
    let onsets: Vec<Option<u32>> = customers
        .iter()
        .map(|c| run.truth.record_of(*c).and_then(|r| r.onset_month))
        .collect();
    let eval_from_window = onsets
        .iter()
        .flatten()
        .map(|m| m / w_months)
        .min()
        .unwrap_or(0);
    let latency_cfg = LatencyConfig {
        fpr_budget,
        w_months,
        eval_from_window,
    };

    // Stability: attrition score = 1 − stability, per window.
    let stability_series: Vec<Vec<f64>> = matrix
        .analyses()
        .iter()
        .map(|a| a.points.iter().map(|p| 1.0 - p.value).collect())
        .collect();
    let last = WindowIndex::new(n_windows.saturating_sub(1));
    let stability_final: Vec<f64> = matrix
        .attrition_scores_at(last)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    let auroc_stability = auroc(&is_defector, &stability_final);
    let stability_latency = detection_latency(&stability_series, &onsets, &latency_cfg);

    // RFM: out-of-fold probability per window (cross-fitting guard as in
    // `attrition evaluate` — fewer positives/negatives than folds → NaN).
    let rfm = RfmModel::new(1);
    let positives = is_defector.iter().filter(|&&d| d).count();
    let negatives = is_defector.len() - positives;
    let (auroc_rfm, rfm_latency) = if positives >= folds && negatives >= folds {
        let mut by_customer: HashMap<CustomerId, Vec<f64>> = HashMap::new();
        let mut final_scores = Vec::new();
        for k in 0..n_windows {
            let rows = rfm.features_at(&db, WindowIndex::new(k));
            let features: Vec<attrition_rfm::RfmFeatures> = rows.iter().map(|(_, f)| *f).collect();
            let scores = out_of_fold_scores(&features, &is_defector, 1, folds, 42);
            if k == n_windows - 1 {
                final_scores = scores.clone();
            }
            for ((c, _), s) in rows.iter().zip(scores) {
                by_customer.entry(*c).or_default().push(s);
            }
        }
        let rfm_series: Vec<Vec<f64>> = customers
            .iter()
            .map(|c| by_customer.remove(c).expect("series built per customer"))
            .collect();
        (
            auroc(&is_defector, &final_scores),
            detection_latency(&rfm_series, &onsets, &latency_cfg),
        )
    } else {
        let empty: Vec<Vec<f64>> = customers.iter().map(|_| vec![]).collect();
        (f64::NAN, detection_latency(&empty, &onsets, &latency_cfg))
    };

    let records = run.truth.records();
    Ok(ScenarioReport {
        name: run.name(),
        summary: run.id.summary(),
        customers: run.n_customers,
        months: run.n_months,
        receipts: run.store.num_receipts(),
        label_events: run.truth.events().len(),
        defectors: run.truth.num_defectors(),
        exits: records.iter().filter(|r| r.exit_month.is_some()).count(),
        reacquired: records
            .iter()
            .filter(|r| r.reacquired_month.is_some())
            .count(),
        auroc_stability,
        auroc_rfm,
        stability_latency,
        rfm_latency,
    })
}

fn print_table(reports: &[ScenarioReport], seed: u64, quick: bool, fpr_budget: f64) {
    println!(
        "scenario library — seed {seed}{}, latency at ≤{:.0}% loyal false-alarm rate\n",
        if quick { ", quick variant" } else { "" },
        fpr_budget * 100.0
    );
    let mut table = Table::new([
        "scenario",
        "customers",
        "defectors",
        "exits",
        "stability AUROC",
        "RFM AUROC",
        "stab delay (med)",
        "rfm delay (med)",
    ]);
    for r in reports {
        table.row([
            r.name.to_string(),
            r.customers.to_string(),
            r.defectors.to_string(),
            r.exits.to_string(),
            fmt_f64(r.auroc_stability, 3),
            fmt_f64(r.auroc_rfm, 3),
            fmt_f64(r.stability_latency.median_delay, 1),
            fmt_f64(r.rfm_latency.median_delay, 1),
        ]);
    }
    println!("{table}");
}

/// `f64` → JSON number, with non-finite values as `null`.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn latency_json(l: &LatencySummary) -> String {
    format!(
        "{{\"threshold\": {}, \"loyal_fpr\": {}, \"defectors\": {}, \"detected\": {}, \
         \"detected_fraction\": {}, \"median_delay_months\": {}, \"p90_delay_months\": {}, \
         \"mean_delay_months\": {}}}",
        json_num(l.threshold),
        json_num(l.loyal_fpr),
        l.num_defectors,
        l.detected,
        json_num(l.detected_fraction()),
        json_num(l.median_delay),
        json_num(l.p90_delay),
        json_num(l.mean_delay),
    )
}

fn render_json(
    reports: &[ScenarioReport],
    seed: u64,
    quick: bool,
    w_months: u32,
    fpr_budget: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"window_months\": {w_months},\n"));
    out.push_str(&format!("  \"fpr_budget\": {},\n", json_num(fpr_budget)));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"summary\": \"{}\",\n", r.summary));
        out.push_str(&format!("      \"customers\": {},\n", r.customers));
        out.push_str(&format!("      \"months\": {},\n", r.months));
        out.push_str(&format!("      \"receipts\": {},\n", r.receipts));
        out.push_str(&format!("      \"label_events\": {},\n", r.label_events));
        out.push_str(&format!("      \"defectors\": {},\n", r.defectors));
        out.push_str(&format!("      \"exits\": {},\n", r.exits));
        out.push_str(&format!("      \"reacquired\": {},\n", r.reacquired));
        out.push_str(&format!(
            "      \"auroc_stability\": {},\n",
            json_num(r.auroc_stability)
        ));
        out.push_str(&format!(
            "      \"auroc_rfm\": {},\n",
            json_num(r.auroc_rfm)
        ));
        out.push_str(&format!(
            "      \"stability_latency\": {},\n",
            latency_json(&r.stability_latency)
        ));
        out.push_str(&format!(
            "      \"rfm_latency\": {}\n",
            latency_json(&r.rfm_latency)
        ));
        out.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_csv(reports: &[ScenarioReport]) -> String {
    let mut csv = CsvWriter::new();
    csv.record(&[
        "scenario",
        "customers",
        "months",
        "receipts",
        "label_events",
        "defectors",
        "exits",
        "reacquired",
        "auroc_stability",
        "auroc_rfm",
        "stab_detected_fraction",
        "stab_median_delay_months",
        "stab_p90_delay_months",
        "rfm_detected_fraction",
        "rfm_median_delay_months",
        "rfm_p90_delay_months",
    ]);
    for r in reports {
        csv.record(&[
            r.name,
            &r.customers.to_string(),
            &r.months.to_string(),
            &r.receipts.to_string(),
            &r.label_events.to_string(),
            &r.defectors.to_string(),
            &r.exits.to_string(),
            &r.reacquired.to_string(),
            &format!("{:.6}", r.auroc_stability),
            &format!("{:.6}", r.auroc_rfm),
            &format!("{:.4}", r.stability_latency.detected_fraction()),
            &format!("{:.2}", r.stability_latency.median_delay),
            &format!("{:.2}", r.stability_latency.p90_delay),
            &format!("{:.4}", r.rfm_latency.detected_fraction()),
            &format!("{:.2}", r.rfm_latency.median_delay),
            &format!("{:.2}", r.rfm_latency.p90_delay),
        ]);
    }
    csv.finish()
}
