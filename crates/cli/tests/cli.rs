//! End-to-end CLI tests: drive the real `attrition` binary through every
//! subcommand on a generated dataset.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_attrition")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary must execute")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Unique temp dir per test to keep parallel tests isolated.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("attrition_cli_tests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn generate_dataset(dir: &Path) {
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--preset",
        "small",
        "--loyal",
        "30",
        "--defectors",
        "30",
        "--quiet",
    ]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn help_flag_succeeds_per_command() {
    for cmd in ["generate", "stats", "evaluate", "explain", "rank", "export", "monitor"] {
        let out = run(&[cmd, "--help"]);
        assert!(out.status.success(), "{cmd} --help failed");
        assert!(stdout(&out).contains("FLAGS"), "{cmd} help lacks FLAGS");
    }
}

#[test]
fn missing_required_flag_reports_name() {
    let out = run(&["stats"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--receipts"));
}

#[test]
fn positional_argument_rejected() {
    let out = run(&["stats", "receipts.csv"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("positional"));
}

#[test]
fn full_pipeline_generate_stats_evaluate_explain_rank_monitor() {
    let dir = temp_dir("pipeline");
    generate_dataset(&dir);
    let receipts = dir.join("receipts.csv");
    let taxonomy = dir.join("taxonomy.csv");
    let labels = dir.join("labels.csv");
    assert!(receipts.exists() && taxonomy.exists() && labels.exists());

    let stats = run(&[
        "stats",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
    ]);
    assert!(stats.status.success(), "{}", stderr(&stats));
    assert!(stdout(&stats).contains("customers"));
    assert!(stdout(&stats).contains("60"));

    let eval = run(&[
        "evaluate",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--labels",
        labels.to_str().unwrap(),
    ]);
    assert!(eval.status.success(), "{}", stderr(&eval));
    assert!(stdout(&eval).contains("stability AUROC"));

    let explain = run(&[
        "explain",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--customer",
        "35",
    ]);
    assert!(explain.status.success(), "{}", stderr(&explain));
    assert!(stdout(&explain).contains("stability"));

    let rank = run(&[
        "rank",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--top",
        "5",
    ]);
    assert!(rank.status.success(), "{}", stderr(&rank));
    assert!(stdout(&rank).contains("at-risk"));

    let export_dir = dir.join("exported");
    let export = run(&[
        "export",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--out",
        export_dir.to_str().unwrap(),
    ]);
    assert!(export.status.success(), "{}", stderr(&export));
    assert!(export_dir.join("stability_scores.csv").exists());
    assert!(export_dir.join("explanations.csv").exists());

    let monitor = run(&[
        "monitor",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--beta",
        "0.5",
    ]);
    assert!(monitor.status.success(), "{}", stderr(&monitor));
    assert!(stdout(&monitor).contains("alerts"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_format_roundtrips_through_cli() {
    let dir = temp_dir("binfmt");
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--format",
        "bin",
        "--quiet",
        "--loyal",
        "10",
        "--defectors",
        "10",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let receipts = dir.join("receipts.bin");
    assert!(receipts.exists());
    let stats = run(&["stats", "--receipts", receipts.to_str().unwrap()]);
    assert!(stats.status.success(), "{}", stderr(&stats));
    assert!(stdout(&stats).contains("20"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_customer_fails_cleanly() {
    let dir = temp_dir("badcust");
    generate_dataset(&dir);
    let out = run(&[
        "explain",
        "--receipts",
        dir.join("receipts.csv").to_str().unwrap(),
        "--taxonomy",
        dir.join("taxonomy.csv").to_str().unwrap(),
        "--customer",
        "999999",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_alpha_rejected() {
    let dir = temp_dir("badalpha");
    generate_dataset(&dir);
    let out = run(&[
        "evaluate",
        "--receipts",
        dir.join("receipts.csv").to_str().unwrap(),
        "--taxonomy",
        dir.join("taxonomy.csv").to_str().unwrap(),
        "--labels",
        dir.join("labels.csv").to_str().unwrap(),
        "--alpha",
        "0.5",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("alpha"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_rejects_bad_preset_and_onset() {
    let dir = temp_dir("badgen");
    let out = run(&["generate", "--out", dir.to_str().unwrap(), "--preset", "huge"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("preset"));
    let out2 = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--months",
        "10",
        "--onset",
        "12",
    ]);
    assert!(!out2.status.success());
    assert!(stderr(&out2).contains("onset"));
    std::fs::remove_dir_all(&dir).ok();
}
