//! End-to-end CLI tests: drive the real `attrition` binary through every
//! subcommand on a generated dataset.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_attrition")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary must execute")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Unique temp dir per test to keep parallel tests isolated.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("attrition_cli_tests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn generate_dataset(dir: &Path) {
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--preset",
        "small",
        "--loyal",
        "30",
        "--defectors",
        "30",
        "--quiet",
    ]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn help_flag_succeeds_per_command() {
    for cmd in [
        "generate", "stats", "evaluate", "explain", "rank", "export", "monitor", "serve",
    ] {
        let out = run(&[cmd, "--help"]);
        assert!(out.status.success(), "{cmd} --help failed");
        assert!(stdout(&out).contains("FLAGS"), "{cmd} help lacks FLAGS");
    }
}

#[test]
fn missing_required_flag_reports_name() {
    let out = run(&["stats"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--receipts"));
}

#[test]
fn positional_argument_rejected() {
    let out = run(&["stats", "receipts.csv"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("positional"));
}

#[test]
fn full_pipeline_generate_stats_evaluate_explain_rank_monitor() {
    let dir = temp_dir("pipeline");
    generate_dataset(&dir);
    let receipts = dir.join("receipts.csv");
    let taxonomy = dir.join("taxonomy.csv");
    let labels = dir.join("labels.csv");
    assert!(receipts.exists() && taxonomy.exists() && labels.exists());

    let stats = run(&[
        "stats",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
    ]);
    assert!(stats.status.success(), "{}", stderr(&stats));
    assert!(stdout(&stats).contains("customers"));
    assert!(stdout(&stats).contains("60"));

    let eval = run(&[
        "evaluate",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--labels",
        labels.to_str().unwrap(),
    ]);
    assert!(eval.status.success(), "{}", stderr(&eval));
    assert!(stdout(&eval).contains("stability AUROC"));

    let explain = run(&[
        "explain",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--customer",
        "35",
    ]);
    assert!(explain.status.success(), "{}", stderr(&explain));
    assert!(stdout(&explain).contains("stability"));

    let rank = run(&[
        "rank",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--top",
        "5",
    ]);
    assert!(rank.status.success(), "{}", stderr(&rank));
    assert!(stdout(&rank).contains("at-risk"));

    let export_dir = dir.join("exported");
    let export = run(&[
        "export",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--out",
        export_dir.to_str().unwrap(),
    ]);
    assert!(export.status.success(), "{}", stderr(&export));
    assert!(export_dir.join("stability_scores.csv").exists());
    assert!(export_dir.join("explanations.csv").exists());

    let monitor = run(&[
        "monitor",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        taxonomy.to_str().unwrap(),
        "--beta",
        "0.5",
    ]);
    assert!(monitor.status.success(), "{}", stderr(&monitor));
    assert!(stdout(&monitor).contains("alerts"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_format_roundtrips_through_cli() {
    let dir = temp_dir("binfmt");
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--format",
        "bin",
        "--quiet",
        "--loyal",
        "10",
        "--defectors",
        "10",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let receipts = dir.join("receipts.bin");
    assert!(receipts.exists());
    let stats = run(&["stats", "--receipts", receipts.to_str().unwrap()]);
    assert!(stats.status.success(), "{}", stderr(&stats));
    assert!(stdout(&stats).contains("20"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_customer_fails_cleanly() {
    let dir = temp_dir("badcust");
    generate_dataset(&dir);
    let out = run(&[
        "explain",
        "--receipts",
        dir.join("receipts.csv").to_str().unwrap(),
        "--taxonomy",
        dir.join("taxonomy.csv").to_str().unwrap(),
        "--customer",
        "999999",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_alpha_rejected() {
    let dir = temp_dir("badalpha");
    generate_dataset(&dir);
    let out = run(&[
        "evaluate",
        "--receipts",
        dir.join("receipts.csv").to_str().unwrap(),
        "--taxonomy",
        dir.join("taxonomy.csv").to_str().unwrap(),
        "--labels",
        dir.join("labels.csv").to_str().unwrap(),
        "--alpha",
        "0.5",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("alpha"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_rejects_bad_preset_and_onset() {
    let dir = temp_dir("badgen");
    let out = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--preset",
        "huge",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("preset"));
    let out2 = run(&[
        "generate",
        "--out",
        dir.to_str().unwrap(),
        "--months",
        "10",
        "--onset",
        "12",
    ]);
    assert!(!out2.status.success());
    assert!(stderr(&out2).contains("onset"));
    std::fs::remove_dir_all(&dir).ok();
}

// ── `serve` subcommand ──────────────────────────────────────────────

#[test]
fn serve_requires_origin_without_restore() {
    let out = run(&["serve", "--addr", "127.0.0.1:0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--origin"));
}

#[test]
fn serve_rejects_grid_flags_with_restore() {
    let out = run(&[
        "serve",
        "--restore",
        "whatever.csv",
        "--origin",
        "2012-05-01",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("conflicts with --restore"));
}

#[test]
fn serve_rejects_restore_with_wal_dir() {
    let out = run(&[
        "serve",
        "--wal-dir",
        "whatever_wal",
        "--restore",
        "whatever.csv",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--restore conflicts with --wal-dir"));
}

#[test]
fn serve_rejects_unknown_sync_policy() {
    let dir = temp_dir("badpolicy");
    let out = run(&[
        "serve",
        "--wal-dir",
        dir.to_str().unwrap(),
        "--origin",
        "2012-05-01",
        "--sync-policy",
        "sometimes",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad --sync-policy"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_corrupt_checkpoint_exits_nonzero_naming_line_and_field() {
    let dir = temp_dir("badsnap");
    let path = dir.join("corrupt.csv");
    // Valid header, then a customer row whose window count is garbage.
    std::fs::write(&path, "#monitor,15461,m1,2,5\nc,7,three,4\n").unwrap();
    let out = run(&["serve", "--restore", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("line 2"), "no line number: {err}");
    assert!(err.contains("current_window"), "no field name: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Full binary-level serve round trip: start on an ephemeral port, read
/// the bound address from stdout, speak the protocol over TCP, shut
/// down, and check the summary and the shutdown snapshot.
#[test]
fn serve_responds_over_tcp_and_writes_snapshot_on_shutdown() {
    use std::io::{BufRead, BufReader, Write};

    let dir = temp_dir("servetcp");
    let snapshot = dir.join("state.csv");
    let mut child = Command::new(bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--origin",
            "2012-05-01",
            "--window",
            "1",
            "--snapshot",
            snapshot.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve must start");

    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    child_out.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_owned();

    let stream = std::net::TcpStream::connect(&addr).expect("connects");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    fn rpc(
        writer: &mut std::net::TcpStream,
        reader: &mut BufReader<std::net::TcpStream>,
        req: &str,
    ) -> String {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_owned()
    }
    assert_eq!(rpc(&mut writer, &mut reader, "PING"), "PONG");
    assert_eq!(
        rpc(&mut writer, &mut reader, "INGEST 5 2012-05-03 1 2"),
        "OK 0"
    );
    // Month 5 → 7 closes two one-month windows.
    assert_eq!(
        rpc(&mut writer, &mut reader, "INGEST 5 2012-07-03 1"),
        "OK 2"
    );
    let mut closed = String::new();
    for _ in 0..2 {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        closed.push_str(&l);
    }
    assert!(
        closed.lines().all(|l| l.starts_with("CLOSED 5 ")),
        "{closed}"
    );
    assert!(rpc(&mut writer, &mut reader, "SCORE 5").starts_with("SCORE 5 "));
    assert_eq!(rpc(&mut writer, &mut reader, "SHUTDOWN"), "OK draining");

    let status = child.wait().expect("serve must exit");
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut child_out, &mut rest).unwrap();
    assert!(rest.contains("served 5 requests"), "{rest}");
    assert!(rest.contains("snapshot written"), "{rest}");
    // The checkpoint restores and still knows customer 5.
    let text = std::fs::read_to_string(&snapshot).unwrap();
    assert!(text.lines().any(|l| l.starts_with("c,5,")), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

// ── `--metrics` observability flag ──────────────────────────────────

/// Minimal JSON value — just enough structure to validate the metrics
/// export and pull out individual numbers (the workspace is
/// dependency-free, so no serde here). The parser keeps every payload
/// so malformed output fails loudly; only `Num` is read back by the
/// assertions, hence the `allow`.
#[derive(Debug)]
#[allow(dead_code)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Strict recursive-descent parser; errors on trailing garbage.
fn parse_json(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {c:?} at {pos}, found {:?}", b.get(*pos)))
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ':')?;
                entries.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    other => return Err(format!("expected , or }} found {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected , or ] found {other:?}")),
                }
            }
        }
        Some('"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some('t') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some('f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some('n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && (b[*pos].is_ascii_digit() || "+-.eE".contains(b[*pos])) {
                *pos += 1;
            }
            let raw: String = b[start..*pos].iter().collect();
            raw.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {raw:?}"))
        }
        other => Err(format!("unexpected {other:?} at {pos}")),
    }
}

fn parse_lit(b: &[char], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    for c in lit.chars() {
        expect(b, pos, c)?;
    }
    Ok(value)
}

fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, '"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = b.get(*pos).copied().ok_or("truncated escape")?;
                *pos += 1;
                match esc {
                    '"' | '\\' | '/' => out.push(esc),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = b[*pos..(*pos + 4).min(b.len())].iter().collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[test]
fn metrics_json_reports_pipeline_stages_and_row_counts() {
    let dir = temp_dir("metricsjson");
    generate_dataset(&dir);
    let receipts = dir.join("receipts.csv");
    let out = run(&[
        "rank",
        "--receipts",
        receipts.to_str().unwrap(),
        "--taxonomy",
        dir.join("taxonomy.csv").to_str().unwrap(),
        "--metrics=json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // The JSON report is the final non-empty stdout line.
    let text = stdout(&out);
    let line = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .expect("stdout has a metrics line");
    let report = parse_json(line).unwrap_or_else(|e| panic!("metrics JSON invalid: {e}\n{line}"));

    // Ingest and scoring stages ran, each with non-zero wall time.
    for stage in ["ingest", "scoring", "windowing"] {
        let s = report
            .get("stages")
            .and_then(|v| v.get(stage))
            .unwrap_or_else(|| panic!("stage {stage:?} missing: {line}"));
        assert!(s.get("calls").and_then(Json::num).unwrap_or(0.0) >= 1.0);
        let total = s.get("total_ms").and_then(Json::num).unwrap();
        assert!(total > 0.0, "stage {stage} total_ms = {total}");
    }

    // Rows-read counter matches the input CSV's data-row count.
    let csv = std::fs::read_to_string(&receipts).unwrap();
    let data_rows = csv.lines().filter(|l| !l.trim().is_empty()).count() - 1; // header
    let rows_read = report
        .get("counters")
        .and_then(|c| c.get("store.rows_read"))
        .and_then(Json::num)
        .expect("store.rows_read counter");
    assert_eq!(rows_read as usize, data_rows);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_text_prints_stage_table() {
    let dir = temp_dir("metricstext");
    generate_dataset(&dir);
    let out = run(&[
        "stats",
        "--receipts",
        dir.join("receipts.csv").to_str().unwrap(),
        "--metrics",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("pipeline metrics"),
        "no metrics block:\n{text}"
    );
    assert!(text.contains("ingest"));
    assert!(text.contains("store.rows_read"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_off_prints_no_metrics() {
    let dir = temp_dir("metricsoff");
    generate_dataset(&dir);
    let out = run(&[
        "stats",
        "--receipts",
        dir.join("receipts.csv").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(!stdout(&out).contains("pipeline metrics"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_rejects_unknown_format() {
    let out = run(&["stats", "--receipts", "x.csv", "--metrics=yaml"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--metrics"));
}
