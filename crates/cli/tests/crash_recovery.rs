//! The paper-grade durability proof at the binary level: a real
//! `attrition serve --wal-dir` process is SIGKILLed mid-stream — no
//! drain, no shutdown checkpoint — restarted on the same directory, and
//! every SCORE it then serves must be **bit-identical** (`f64::to_bits`)
//! to an offline monitor that processed exactly the acknowledged
//! ingests. Scores travel as shortest-roundtrip decimal text, so the
//! parsed values compare exactly.

#![cfg(unix)]

use attrition_core::{StabilityMonitor, StabilityParams};
use attrition_datagen::ScenarioConfig;
use attrition_serve::{Client, Reply};
use attrition_store::chronological;
use attrition_store::WindowSpec;
use attrition_types::Basket;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("attrition_cli_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Server {
    child: Child,
    addr: String,
    stderr: BufReader<std::process::ChildStderr>,
    /// Held open so the server's shutdown summary has somewhere to go.
    #[allow(dead_code)]
    stdout: BufReader<std::process::ChildStdout>,
}

/// Spawn `attrition serve` on the WAL directory and wait for it to bind.
fn spawn_serve(wal_dir: &Path, origin: &str) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_attrition"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--origin",
            origin,
            "--window",
            "1",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--sync-policy",
            "always",
            "--checkpoint-every",
            "64",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve must start");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    // The recovery summary is printed (to stderr) before the listener
    // binds; every start, even the first, states what it recovered.
    let mut recovery_line = String::new();
    stderr.read_line(&mut recovery_line).unwrap();
    assert!(
        recovery_line.starts_with("recovery: "),
        "expected the recovery log line first, got {recovery_line:?}"
    );
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_owned();
    Server {
        child,
        addr,
        stderr,
        stdout,
    }
}

#[test]
fn sigkill_mid_stream_then_restart_serves_bit_identical_scores() {
    let dir = temp_dir("sigkill");
    // 200 customers over 8 months, one-month windows.
    let mut cfg = ScenarioConfig::small();
    cfg.n_loyal = 100;
    cfg.n_defectors = 100;
    cfg.n_months = 8;
    cfg.onset_month = 4;
    let dataset = attrition_datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let receipts: Vec<_> = chronological(&seg_store).collect();
    let origin = cfg.start.to_string();
    let spec = WindowSpec::months(cfg.start, 1);

    // First server: stream the first ~60% of receipts, then SIGKILL.
    // Every reply we read is an acknowledged, WAL-fsynced request; the
    // offline reference applies exactly those.
    let mut server = spawn_serve(&dir, &origin);
    let mut client = Client::connect(&server.addr, TIMEOUT).expect("connects");
    let mut reference = StabilityMonitor::new(spec, StabilityParams::PAPER);
    let killed_at = receipts.len() * 6 / 10;
    for receipt in &receipts[..killed_at] {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match client
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("ingest rpc")
        {
            Reply::Closed(_) => {
                reference.ingest(
                    receipt.customer,
                    receipt.date,
                    &Basket::new(receipt.items.to_vec()),
                );
            }
            other => panic!("unexpected ingest reply: {other:?}"),
        }
    }
    // kill(2) with SIGKILL: the process gets no chance to drain, flush
    // or checkpoint — whatever the WAL holds is all that survives.
    server.child.kill().expect("SIGKILL");
    let status = server.child.wait().expect("reaped");
    assert!(!status.success(), "SIGKILL is not a clean exit");
    drop(client);

    // Second server on the same directory: recovery must replay the
    // WAL tail over the last periodic checkpoint.
    let mut server = spawn_serve(&dir, &origin);
    let mut client = Client::connect(&server.addr, TIMEOUT).expect("reconnects");

    // Every customer acked before the kill scores bit-identically to
    // the offline reference; nothing more, nothing less survived.
    let mut scored = 0u64;
    for customer in reference.customer_ids() {
        let expected = reference.preview(customer).expect("tracked offline");
        match client.score(customer.raw()).expect("score rpc") {
            Reply::Score(s) => {
                assert_eq!(s.customer, customer.raw());
                assert_eq!(
                    s.window,
                    expected.window.raw(),
                    "customer {}",
                    customer.raw()
                );
                assert_eq!(
                    s.value.to_bits(),
                    expected.value.to_bits(),
                    "customer {} diverged after crash recovery",
                    customer.raw()
                );
                scored += 1;
            }
            other => panic!("unexpected score reply: {other:?}"),
        }
    }
    assert!(
        scored >= 190,
        "the kill point must leave most of the 200 customers live"
    );

    // The stream continues where it left off: ingest the rest, then the
    // previews still agree — recovery really reproduced the monitor,
    // not just a read-only lookalike.
    for receipt in &receipts[killed_at..] {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match client
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("ingest rpc")
        {
            Reply::Closed(_) => {
                reference.ingest(
                    receipt.customer,
                    receipt.date,
                    &Basket::new(receipt.items.to_vec()),
                );
            }
            other => panic!("unexpected ingest reply: {other:?}"),
        }
    }
    for customer in reference.customer_ids().into_iter().take(10) {
        let expected = reference.preview(customer).expect("tracked offline");
        match client.score(customer.raw()).expect("score rpc") {
            Reply::Score(s) => assert_eq!(s.value.to_bits(), expected.value.to_bits()),
            other => panic!("unexpected score reply: {other:?}"),
        }
    }

    client.send("SHUTDOWN").expect("shutdown rpc");
    let status = server.child.wait().expect("serve must exit");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut server.stderr, &mut rest).unwrap();
    assert!(
        status.success(),
        "graceful durable shutdown exits zero: {rest}"
    );
    assert!(
        !rest.contains("checkpoint failed"),
        "shutdown checkpoint must succeed: {rest}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
