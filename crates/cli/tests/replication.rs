//! The failover proof at the binary level: a real `attrition serve
//! --wal-dir` primary and a real `attrition replicate` follower, two
//! processes over real TCP. The primary is SIGKILLed, the replica is
//! promoted with one `PROMOTE` line, and every SCORE the promoted node
//! serves must be **bit-identical** (`f64::to_bits`) to what the
//! primary acknowledged before dying — then the new primary accepts
//! writes of its own.

#![cfg(unix)]

use attrition_datagen::ScenarioConfig;
use attrition_serve::{Client, Reply};
use attrition_store::chronological;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("attrition_cli_repl_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Server {
    child: Child,
    addr: String,
    #[allow(dead_code)]
    stderr: BufReader<std::process::ChildStderr>,
    /// Held open so the process's shutdown summary has somewhere to go.
    #[allow(dead_code)]
    stdout: BufReader<std::process::ChildStdout>,
}

/// Spawn one `attrition` subcommand and wait for its two-line start
/// handshake: `recovery: …` on stderr, then `listening on …` on stdout.
fn spawn_node(args: &[&str]) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_attrition"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("node must start");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut recovery_line = String::new();
    stderr.read_line(&mut recovery_line).unwrap();
    assert!(
        recovery_line.starts_with("recovery: "),
        "expected the recovery log line first, got {recovery_line:?}"
    );
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_owned();
    Server {
        child,
        addr,
        stderr,
        stdout,
    }
}

fn spawn_primary(wal_dir: &Path, origin: &str) -> Server {
    spawn_node(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--origin",
        origin,
        "--window",
        "1",
        "--wal-dir",
        wal_dir.to_str().unwrap(),
        "--sync-policy",
        "always",
        "--checkpoint-every",
        "64",
    ])
}

/// Spawn `attrition replicate`; `extra` appends/overrides flags (the
/// rejoin test needs a long fetch interval and the `--rejoin` flag).
fn spawn_replica(wal_dir: &Path, origin: &str, primary_addr: &str, extra: &[&str]) -> Server {
    let mut args = vec![
        "replicate",
        "--primary",
        primary_addr,
        "--addr",
        "127.0.0.1:0",
        "--origin",
        origin,
        "--window",
        "1",
        "--wal-dir",
        wal_dir.to_str().unwrap(),
        "--sync-policy",
        "always",
        "--batch-max",
        "256",
    ];
    args.extend_from_slice(extra);
    spawn_node(&args)
}

/// Pull one numeric metric out of a raw `STATS` JSON payload.
fn stat(stats_json: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = stats_json.find(&key)? + key.len();
    let digits: String = stats_json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pull `serve.repl.applied_seq` out of a raw `STATS` JSON payload.
fn applied_seq(stats_json: &str) -> Option<u64> {
    stat(stats_json, "serve.repl.applied_seq")
}

#[test]
fn two_process_failover_promotes_with_bit_identical_scores() {
    let primary_dir = temp_dir("primary");
    let replica_dir = temp_dir("replica");
    let mut cfg = ScenarioConfig::small();
    cfg.n_loyal = 60;
    cfg.n_defectors = 60;
    cfg.n_months = 6;
    cfg.onset_month = 3;
    let dataset = attrition_datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let receipts: Vec<_> = chronological(&seg_store).collect();
    let origin = cfg.start.to_string();

    let mut primary = spawn_primary(&primary_dir, &origin);
    let mut replica = spawn_replica(
        &replica_dir,
        &origin,
        &primary.addr,
        &["--fetch-interval-ms", "10"],
    );

    // Stream the whole dataset through the primary. Under
    // `--sync-policy always` every `OK` is durable — and therefore
    // shippable: the replication floor is the durable LSN.
    let mut client = Client::connect(&primary.addr, TIMEOUT).expect("primary connects");
    let mut acked = 0u64;
    for receipt in &receipts {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match client
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("ingest rpc")
        {
            Reply::Closed(_) => acked += 1,
            other => panic!("unexpected ingest reply: {other:?}"),
        }
    }

    // Wait for the replica to apply every acknowledged record.
    let mut rclient = Client::connect(&replica.addr, TIMEOUT).expect("replica connects");
    let deadline = Instant::now() + TIMEOUT;
    loop {
        match rclient.send("STATS").expect("stats rpc") {
            Reply::Stats(json) => {
                if applied_seq(&json) == Some(acked) {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "replica never caught up to LSN {acked}: {json}"
                );
            }
            other => panic!("unexpected stats reply: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // A replica is read-only until promoted.
    match rclient.send("INGEST 1 2012-05-02 10").expect("ingest rpc") {
        Reply::Err(message) => assert!(message.contains("read-only"), "{message}"),
        other => panic!("a replica must reject writes, got {other:?}"),
    }

    // Record the primary's answers for every customer, then kill it —
    // SIGKILL, no drain, no final checkpoint.
    let customers: Vec<u64> = {
        let mut ids: Vec<u64> = receipts.iter().map(|r| r.customer.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let mut expected = Vec::with_capacity(customers.len());
    for &customer in &customers {
        match client.score(customer).expect("score rpc") {
            Reply::Score(s) => expected.push((customer, s.window, s.value.to_bits())),
            other => panic!("unexpected score reply: {other:?}"),
        }
    }
    primary.child.kill().expect("SIGKILL");
    primary.child.wait().expect("reaped");
    drop(client);

    // One line of failover: the replica fsyncs, bumps its epoch
    // durably, and starts accepting writes.
    match rclient.send("PROMOTE").expect("promote rpc") {
        Reply::Ok(rest) => assert!(rest.starts_with("promoted 2 "), "{rest}"),
        other => panic!("unexpected promote reply: {other:?}"),
    }

    // Every score the dead primary acknowledged is served bit-identically.
    for (customer, window, bits) in &expected {
        match rclient.score(*customer).expect("score rpc") {
            Reply::Score(s) => {
                assert_eq!(s.window, *window, "customer {customer}");
                assert_eq!(
                    s.value.to_bits(),
                    *bits,
                    "customer {customer} diverged across failover"
                );
            }
            other => panic!("unexpected score reply: {other:?}"),
        }
    }

    // And the promoted node is a real primary: writes are accepted.
    let last = receipts.last().unwrap();
    let items: Vec<u32> = last.items.iter().map(|i| i.raw()).collect();
    match rclient
        .ingest(last.customer.raw(), last.date, &items)
        .expect("ingest rpc")
    {
        Reply::Closed(_) => {}
        other => panic!("a promoted replica must accept writes, got {other:?}"),
    }

    rclient.send("SHUTDOWN").expect("shutdown rpc");
    drop(rclient);
    let status = replica.child.wait().expect("replica must exit");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut replica.stderr, &mut rest).unwrap();
    assert!(
        status.success(),
        "graceful promoted shutdown exits zero: {rest}"
    );
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// The self-healing proof at the binary level: the SIGKILLed primary
/// comes back with `attrition replicate --rejoin` against the node that
/// replaced it. Its WAL holds acknowledged records the replica never
/// fetched — a real divergent suffix — and the handshake must discard
/// exactly those, re-bootstrap from the new primary, and serve SCOREs
/// bit-identical (`f64::to_bits`) to the new timeline's.
#[test]
fn sigkilled_primary_rejoins_and_serves_the_new_timeline_bit_identically() {
    let primary_dir = temp_dir("rejoin_primary");
    let replica_dir = temp_dir("rejoin_replica");
    let mut cfg = ScenarioConfig::small();
    cfg.n_loyal = 40;
    cfg.n_defectors = 40;
    cfg.n_months = 6;
    cfg.onset_month = 3;
    let dataset = attrition_datagen::generate(&cfg);
    let seg_store = dataset.segment_store();
    let receipts: Vec<_> = chronological(&seg_store).collect();
    let origin = cfg.start.to_string();
    // Three chronological slices: A replicates everywhere, B is acked
    // by the primary but never fetched (the divergent suffix), C is the
    // new timeline written after the failover.
    let split_a = receipts.len() * 6 / 10;
    let split_b = receipts.len() * 8 / 10;

    let mut primary = spawn_primary(&primary_dir, &origin);
    let mut client = Client::connect(&primary.addr, TIMEOUT).expect("primary connects");
    let mut acked_a = 0u64;
    for receipt in &receipts[..split_a] {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match client
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("ingest rpc")
        {
            Reply::Closed(_) => acked_a += 1,
            other => panic!("unexpected ingest reply: {other:?}"),
        }
    }

    // All of slice A is durable before the replica exists, so its
    // startup burst drains the whole slice (a fetch that applied
    // records loops immediately) and then — with a huge fetch interval
    // — sleeps far past the end of the test, so nothing of slice B is
    // ever shipped. Spawning the replica mid-slice would race: a fetch
    // landing between two ingests drains early and parks for the full
    // interval.
    let mut replica = spawn_replica(
        &replica_dir,
        &origin,
        &primary.addr,
        &["--fetch-interval-ms", "60000"],
    );

    // The replica holds all of slice A...
    let mut rclient = Client::connect(&replica.addr, TIMEOUT).expect("replica connects");
    let deadline = Instant::now() + TIMEOUT;
    loop {
        match rclient.send("STATS").expect("stats rpc") {
            Reply::Stats(json) => {
                if applied_seq(&json) == Some(acked_a) {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "replica never caught up to LSN {acked_a}: {json}"
                );
            }
            other => panic!("unexpected stats reply: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // ...and slice B lands only on the primary: acknowledged durable
    // (sync=always), never shipped — then SIGKILL.
    let mut acked_b = 0u64;
    for receipt in &receipts[split_a..split_b] {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match client
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("ingest rpc")
        {
            Reply::Closed(_) => acked_b += 1,
            other => panic!("unexpected ingest reply: {other:?}"),
        }
    }
    assert!(acked_b > 0, "the divergent suffix must be non-empty");
    primary.child.kill().expect("SIGKILL");
    primary.child.wait().expect("reaped");
    drop(client);

    // Failover at exactly LSN `acked_a`, then the new timeline: slice C
    // goes through the promoted node only.
    match rclient.send("PROMOTE").expect("promote rpc") {
        Reply::Ok(rest) => assert_eq!(rest, format!("promoted 2 {acked_a}")),
        other => panic!("unexpected promote reply: {other:?}"),
    }
    let mut acked_c = 0u64;
    for receipt in &receipts[split_b..] {
        let items: Vec<u32> = receipt.items.iter().map(|i| i.raw()).collect();
        match rclient
            .ingest(receipt.customer.raw(), receipt.date, &items)
            .expect("ingest rpc")
        {
            Reply::Closed(_) => acked_c += 1,
            other => panic!("unexpected ingest reply: {other:?}"),
        }
    }
    assert!(acked_c > 0, "the new timeline must move on");

    // The truth the rejoined node must reproduce, bit for bit.
    let customers: Vec<u64> = {
        let mut ids: Vec<u64> = receipts.iter().map(|r| r.customer.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let mut expected = Vec::with_capacity(customers.len());
    for &customer in &customers {
        match rclient.score(customer).expect("score rpc") {
            Reply::Score(s) => expected.push((customer, s.window, s.value.to_bits())),
            other => panic!("unexpected score reply: {other:?}"),
        }
    }

    // The deposed primary returns over its own WAL directory, pointed
    // at the node that replaced it. `--rejoin` runs the divergence
    // handshake before serving; the startup log names the discard.
    let mut rejoined = spawn_replica(
        &primary_dir,
        &origin,
        &replica.addr,
        &["--fetch-interval-ms", "10", "--rejoin"],
    );
    let mut rejoin_line = String::new();
    rejoined.stderr.read_line(&mut rejoin_line).unwrap();
    assert_eq!(
        rejoin_line.trim_end(),
        format!("rejoin: adopted epoch 2 ({acked_b} divergent records discarded)"),
        "the startup handshake must discard exactly the divergent suffix"
    );

    // It catches up to the full new timeline, and STATS exposes the
    // heal: the rejoin counter, the discarded-record count, the epoch.
    let mut jclient = Client::connect(&rejoined.addr, TIMEOUT).expect("rejoined node connects");
    let target = acked_a + acked_c;
    let deadline = Instant::now() + TIMEOUT;
    let stats_json = loop {
        match jclient.send("STATS").expect("stats rpc") {
            Reply::Stats(json) => {
                if applied_seq(&json) == Some(target) {
                    break json;
                }
                assert!(
                    Instant::now() < deadline,
                    "rejoined node never caught up to LSN {target}: {json}"
                );
            }
            other => panic!("unexpected stats reply: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(stat(&stats_json, "serve.repl.rejoins"), Some(1));
    assert_eq!(
        stat(&stats_json, "serve.repl.divergent_records_discarded"),
        Some(acked_b)
    );
    assert_eq!(stat(&stats_json, "serve.repl.epoch"), Some(2));

    // Every SCORE the new primary serves, the rejoined node serves
    // bit-identically — no trace of slice B anywhere.
    for (customer, window, bits) in &expected {
        match jclient.score(*customer).expect("score rpc") {
            Reply::Score(s) => {
                assert_eq!(s.window, *window, "customer {customer}");
                assert_eq!(
                    s.value.to_bits(),
                    *bits,
                    "customer {customer} diverged after the rejoin"
                );
            }
            other => panic!("unexpected score reply: {other:?}"),
        }
    }

    // And it is an ordinary replica again: read-only until promoted.
    match jclient.send("INGEST 1 2012-05-02 10").expect("ingest rpc") {
        Reply::Err(message) => assert!(message.contains("read-only"), "{message}"),
        other => panic!("a rejoined replica must reject writes, got {other:?}"),
    }

    drop(jclient);
    rejoined.child.kill().expect("kill rejoined node");
    rejoined.child.wait().expect("reaped");
    rclient.send("SHUTDOWN").expect("shutdown rpc");
    drop(rclient);
    let status = replica.child.wait().expect("promoted node must exit");
    assert!(status.success(), "graceful promoted shutdown exits zero");
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}
