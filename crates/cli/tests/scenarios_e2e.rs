//! Scenario-library end-to-end tests against the real `attrition`
//! binary: the `scenarios` subcommand writes deterministic artifacts,
//! and a scenario's trips replayed through `attrition serve` over TCP
//! produce CLOSED/SCORE protocol lines byte-equal to the offline
//! pipeline run in-process on the same trips.

use attrition_core::{StabilityMonitor, StabilityParams};
use attrition_datagen::{run_scenario, ScenarioId};
use attrition_serve::protocol::{format_closed, format_score};
use attrition_store::{chronological, WindowSpec};
use attrition_types::Basket;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_attrition")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary must execute")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("attrition_scenario_e2e")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn scenarios_subcommand_writes_deterministic_artifacts() {
    let dirs = [temp_dir("artifacts_a"), temp_dir("artifacts_b")];
    for dir in &dirs {
        let out = run(&[
            "scenarios",
            "--quick",
            "--scenario",
            "promo-shock",
            "--seed",
            "11",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "scenarios failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let table = String::from_utf8_lossy(&out.stdout);
        assert!(table.contains("promo-shock"), "no table row:\n{table}");
        assert!(table.contains("stability AUROC"), "no header:\n{table}");
    }
    let json_a = std::fs::read(dirs[0].join("scenario_eval.json")).expect("json written");
    let json_b = std::fs::read(dirs[1].join("scenario_eval.json")).expect("json written");
    assert_eq!(json_a, json_b, "same seed must reproduce the JSON exactly");
    assert!(
        String::from_utf8_lossy(&json_a).contains("\"name\": \"promo-shock\""),
        "scenario missing from JSON"
    );
    let csv = std::fs::read_to_string(dirs[0].join("scenario_eval.csv")).expect("csv written");
    assert_eq!(csv.lines().count(), 2, "header + one scenario row:\n{csv}");
    assert!(csv.lines().next().unwrap().starts_with("scenario,"));
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn unknown_scenario_name_lists_the_library() {
    let out = run(&["scenarios", "--scenario", "flash-crowd"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scenario"), "{err}");
    assert!(err.contains("household-coshop"), "{err}");
}

/// Replay a scenario's trips through the real `attrition serve` binary
/// over TCP and require the protocol output — every CLOSED line and the
/// final SCORE line per customer — to be byte-equal to an offline
/// `StabilityMonitor` fed the same trips in-process.
#[test]
fn serve_replay_of_scenario_bit_identical_to_offline() {
    let seed = 0xE2E;
    let run_data = run_scenario(ScenarioId::SeasonalDrift, seed, true);
    let seg_store = run_data.segment_store();
    let w_months = 2u32;
    let spec = WindowSpec::months(run_data.start, w_months);
    let end = run_data.start.add_months(run_data.n_months as i32);

    // Offline reference: one monitor over the chronological replay,
    // rendered through the same protocol formatter the server uses.
    let mut offline = StabilityMonitor::new(spec, StabilityParams::PAPER);
    let mut offline_closed: Vec<String> = Vec::new();
    for receipt in chronological(&seg_store) {
        let basket = Basket::new(receipt.items.to_vec());
        for closed in offline.ingest(receipt.customer, receipt.date, &basket) {
            offline_closed.push(format_closed(&closed));
        }
    }
    for closed in offline.flush_until(end) {
        offline_closed.push(format_closed(&closed));
    }

    // Online: the same trips through the binary, speaking raw protocol.
    let mut child = Command::new(bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--origin",
            &run_data.start.to_string(),
            "--window",
            &w_months.to_string(),
            "--alpha",
            "2",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("serve must start");
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    child_out.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_owned();

    let stream = TcpStream::connect(&addr).expect("connects");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    // One write per request and no Nagle: the line + newline as two
    // small packets otherwise hits the delayed-ACK stall (~40 ms per
    // round trip — minutes over a full replay).
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let read_line = |reader: &mut BufReader<TcpStream>| -> String {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        l.trim_end().to_owned()
    };

    let mut online_closed: Vec<String> = Vec::new();
    let request = |writer: &mut TcpStream,
                   reader: &mut BufReader<TcpStream>,
                   mut line: String,
                   closed: &mut Vec<String>| {
        line.push('\n');
        writer.write_all(line.as_bytes()).unwrap();
        let reply = read_line(reader);
        let n: usize = reply
            .strip_prefix("OK ")
            .unwrap_or_else(|| panic!("unexpected reply to {line:?}: {reply:?}"))
            .parse()
            .expect("closed-window count");
        for _ in 0..n {
            closed.push(read_line(reader));
        }
    };
    for receipt in chronological(&seg_store) {
        let mut line = format!("INGEST {} {}", receipt.customer.raw(), receipt.date);
        for item in receipt.items {
            line.push(' ');
            line.push_str(&item.raw().to_string());
        }
        request(&mut writer, &mut reader, line, &mut online_closed);
    }
    request(
        &mut writer,
        &mut reader,
        format!("FLUSH {end}"),
        &mut online_closed,
    );

    offline_closed.sort_unstable();
    online_closed.sort_unstable();
    assert_eq!(
        offline_closed, online_closed,
        "served CLOSED lines diverged from the offline pipeline"
    );
    assert!(
        !offline_closed.is_empty(),
        "replay closed no windows — the comparison is vacuous"
    );

    // Final SCORE previews, byte-equal per customer.
    for customer in offline.customer_ids() {
        let expected = format_score(customer, &offline.preview(customer).expect("tracked"));
        writer
            .write_all(format!("SCORE {}\n", customer.raw()).as_bytes())
            .unwrap();
        let got = read_line(&mut reader);
        assert_eq!(got, expected, "SCORE diverged for {customer}");
    }

    writer.write_all(b"SHUTDOWN\n").unwrap();
    let reply = read_line(&mut reader);
    assert_eq!(reply, "OK draining");
    drop(writer);
    drop(reader);
    let status = child.wait().expect("serve must exit");
    assert!(status.success());
}
