//! The threshold classifier.
//!
//! "The points on these curves are obtained using different thresholds β
//! for the customer stability. If `Stability_i^k > β` the customer is
//! considered loyal. Otherwise, the customer is considered as defecting
//! on window k."

use crate::stability::StabilityPoint;

/// Decision of the classifier for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `Stability > β`.
    Loyal,
    /// `Stability ≤ β`.
    Defecting,
}

/// The β-threshold rule on stability values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityClassifier {
    /// The threshold β.
    pub beta: f64,
}

impl StabilityClassifier {
    /// Construct; β must be in `[0, 1]` (stability's range).
    pub fn new(beta: f64) -> StabilityClassifier {
        assert!(
            (0.0..=1.0).contains(&beta),
            "beta must be within stability's range [0, 1]"
        );
        StabilityClassifier { beta }
    }

    /// Classify one stability value.
    #[inline]
    pub fn classify_value(&self, stability: f64) -> Verdict {
        if stability > self.beta {
            Verdict::Loyal
        } else {
            Verdict::Defecting
        }
    }

    /// Classify one series point.
    #[inline]
    pub fn classify(&self, point: &StabilityPoint) -> Verdict {
        self.classify_value(point.value)
    }

    /// The attrition *score* of a stability value for ROC analysis:
    /// higher = more likely defecting. Defined as `1 − stability` so the
    /// β sweep of the paper corresponds to the standard
    /// `score ≥ threshold` convention with `threshold = 1 − β`.
    #[inline]
    pub fn attrition_score(stability: f64) -> f64 {
        1.0 - stability
    }

    /// First window (if any) of a series the classifier flags as
    /// defecting — the detected onset.
    pub fn detect_onset<'a>(
        &self,
        series: impl IntoIterator<Item = &'a StabilityPoint>,
    ) -> Option<attrition_types::WindowIndex> {
        series
            .into_iter()
            .find(|p| self.classify(p) == Verdict::Defecting)
            .map(|p| p.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_types::WindowIndex;

    fn point(window: u32, value: f64) -> StabilityPoint {
        StabilityPoint {
            window: WindowIndex::new(window),
            value,
            present_significance: 0.0,
            total_significance: 1.0,
        }
    }

    #[test]
    fn threshold_semantics_match_paper() {
        let c = StabilityClassifier::new(0.6);
        // strictly greater → loyal; equal or below → defecting
        assert_eq!(c.classify_value(0.61), Verdict::Loyal);
        assert_eq!(c.classify_value(0.6), Verdict::Defecting);
        assert_eq!(c.classify_value(0.2), Verdict::Defecting);
    }

    #[test]
    fn classify_point() {
        let c = StabilityClassifier::new(0.5);
        assert_eq!(c.classify(&point(0, 0.9)), Verdict::Loyal);
        assert_eq!(c.classify(&point(0, 0.3)), Verdict::Defecting);
    }

    #[test]
    fn attrition_score_inverts() {
        assert_eq!(StabilityClassifier::attrition_score(1.0), 0.0);
        assert_eq!(StabilityClassifier::attrition_score(0.25), 0.75);
    }

    #[test]
    fn onset_detection() {
        let series = [point(0, 1.0), point(1, 0.9), point(2, 0.4), point(3, 0.2)];
        let c = StabilityClassifier::new(0.5);
        assert_eq!(c.detect_onset(series.iter()), Some(WindowIndex::new(2)));
        let all_loyal = [point(0, 1.0), point(1, 0.9)];
        assert_eq!(c.detect_onset(all_loyal.iter()), None);
    }

    #[test]
    #[should_panic(expected = "within stability's range")]
    fn invalid_beta_panics() {
        StabilityClassifier::new(1.5);
    }

    #[test]
    fn boundary_betas_valid() {
        // β = 0 flags only exactly-zero stability; β = 1 flags everyone.
        let zero = StabilityClassifier::new(0.0);
        assert_eq!(zero.classify_value(0.0), Verdict::Defecting);
        assert_eq!(zero.classify_value(0.01), Verdict::Loyal);
        let one = StabilityClassifier::new(1.0);
        assert_eq!(one.classify_value(1.0), Verdict::Defecting);
    }
}
