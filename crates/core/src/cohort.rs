//! Population-level stability analytics.
//!
//! The per-customer series roll up into the curves a retention dashboard
//! shows: mean stability of a cohort per window, and the fraction of the
//! population the β rule flags per window (the projected campaign volume
//! — what the retailer budgets against).

use crate::classifier::{StabilityClassifier, Verdict};
use crate::engine::StabilityMatrix;
use attrition_types::{CustomerId, WindowIndex};
use std::collections::HashSet;

/// Mean stability of two cohorts at one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohortPoint {
    /// The window.
    pub window: WindowIndex,
    /// Mean stability of the in-cohort customers (`NaN` if none).
    pub cohort_mean: f64,
    /// Mean stability of everyone else (`NaN` if none).
    pub rest_mean: f64,
    /// Cohort size at this window.
    pub cohort_count: usize,
    /// Size of the complement at this window.
    pub rest_count: usize,
}

/// Per-window mean stability of a cohort vs the rest of the population.
///
/// Typical call: `cohort` = the ground-truth (or flagged) defectors, so
/// the two curves visualize when the populations separate.
pub fn cohort_curves(
    matrix: &StabilityMatrix,
    cohort: impl IntoIterator<Item = CustomerId>,
) -> Vec<CohortPoint> {
    let cohort: HashSet<CustomerId> = cohort.into_iter().collect();
    (0..matrix.num_windows)
        .map(|k| {
            let window = WindowIndex::new(k);
            let (mut c_sum, mut c_n, mut r_sum, mut r_n) = (0.0, 0usize, 0.0, 0usize);
            for (customer, value) in matrix.stability_at(window) {
                if cohort.contains(&customer) {
                    c_sum += value;
                    c_n += 1;
                } else {
                    r_sum += value;
                    r_n += 1;
                }
            }
            CohortPoint {
                window,
                cohort_mean: if c_n > 0 {
                    c_sum / c_n as f64
                } else {
                    f64::NAN
                },
                rest_mean: if r_n > 0 {
                    r_sum / r_n as f64
                } else {
                    f64::NAN
                },
                cohort_count: c_n,
                rest_count: r_n,
            }
        })
        .collect()
}

/// Fraction of scored customers the β rule flags per window — the
/// projected retention-campaign volume over time.
pub fn flag_rate_per_window(matrix: &StabilityMatrix, beta: f64) -> Vec<(WindowIndex, f64)> {
    let classifier = StabilityClassifier::new(beta);
    (0..matrix.num_windows)
        .map(|k| {
            let window = WindowIndex::new(k);
            let values = matrix.stability_at(window);
            let flagged = values
                .iter()
                .filter(|(_, v)| classifier.classify_value(*v) == Verdict::Defecting)
                .count();
            let rate = if values.is_empty() {
                f64::NAN
            } else {
                flagged as f64 / values.len() as f64
            };
            (window, rate)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StabilityEngine;
    use crate::params::StabilityParams;
    use attrition_store::{ReceiptStoreBuilder, WindowAlignment, WindowSpec, WindowedDatabase};
    use attrition_types::{Basket, Cents, Date, Receipt};

    /// 6 customers, 6 monthly windows; customers 3..6 drop item 100 from
    /// month 3 on.
    fn matrix() -> StabilityMatrix {
        let d0 = Date::from_ymd(2012, 5, 1).unwrap();
        let mut b = ReceiptStoreBuilder::new();
        for c in 0..6u64 {
            for month in 0..6 {
                let items: Vec<u32> = if month >= 3 && c >= 3 {
                    vec![c as u32]
                } else {
                    vec![c as u32, 100]
                };
                b.push(Receipt::new(
                    CustomerId::new(c),
                    d0.add_months(month),
                    Basket::from_raw(&items),
                    Cents(100),
                ));
            }
        }
        let db = WindowedDatabase::from_store(
            &b.build(),
            WindowSpec::months(d0, 1),
            6,
            WindowAlignment::Global,
        );
        StabilityEngine::new(StabilityParams::PAPER).compute(&db)
    }

    #[test]
    fn curves_separate_after_drop() {
        let m = matrix();
        let droppers: Vec<CustomerId> = (3..6).map(CustomerId::new).collect();
        let curves = cohort_curves(&m, droppers);
        assert_eq!(curves.len(), 6);
        // Before the drop both cohorts sit at 1.
        assert_eq!(curves[2].cohort_mean, 1.0);
        assert_eq!(curves[2].rest_mean, 1.0);
        // After the drop the dropper cohort falls below the rest.
        for point in &curves[3..] {
            assert!(
                point.cohort_mean < point.rest_mean,
                "window {}: {} !< {}",
                point.window,
                point.cohort_mean,
                point.rest_mean
            );
            assert_eq!(point.cohort_count, 3);
            assert_eq!(point.rest_count, 3);
        }
    }

    #[test]
    fn empty_cohort_gives_nan_side() {
        let m = matrix();
        let curves = cohort_curves(&m, std::iter::empty());
        assert!(curves[0].cohort_mean.is_nan());
        assert_eq!(curves[0].rest_count, 6);
        assert!(!curves[0].rest_mean.is_nan());
    }

    #[test]
    fn flag_rate_tracks_defection() {
        let m = matrix();
        let rates = flag_rate_per_window(&m, 0.8);
        // Nobody flagged early; half the population once items drop.
        assert_eq!(rates[2].1, 0.0);
        let late = rates[4].1;
        assert!((late - 0.5).abs() < 1e-9, "late flag rate {late}");
    }

    #[test]
    fn flag_rate_beta_one_flags_everyone() {
        let m = matrix();
        let rates = flag_rate_per_window(&m, 1.0);
        assert!(rates.iter().all(|(_, r)| *r == 1.0));
    }
}
