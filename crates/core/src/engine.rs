//! Batch scoring of a whole windowed database.
//!
//! The paper's Figure 1 needs the stability of *every* customer at
//! *every* window; [`StabilityEngine`] computes that matrix, fanning
//! customers out across OS threads (customers are independent, so the
//! parallelism is embarrassing; `std::thread::scope` keeps it
//! dependency-free).

use crate::explanation::WindowExplanation;
use crate::params::StabilityParams;
use crate::stability::{analyze_customer, CustomerAnalysis, StabilityPoint};
use attrition_store::WindowedDatabase;
use attrition_types::{CustomerId, WindowIndex};

/// Configured batch scorer.
#[derive(Debug, Clone)]
pub struct StabilityEngine {
    /// Model parameters.
    pub params: StabilityParams,
    /// How many lost products to retain per window explanation.
    pub max_explanations: usize,
    /// Thread cap (`None` = `available_parallelism`).
    pub threads: Option<usize>,
}

impl StabilityEngine {
    /// Engine with the given parameters, 5 explanations per window,
    /// automatic thread count.
    pub fn new(params: StabilityParams) -> StabilityEngine {
        StabilityEngine {
            params,
            max_explanations: 5,
            threads: None,
        }
    }

    /// Override the number of lost products retained per window.
    pub fn with_max_explanations(mut self, n: usize) -> StabilityEngine {
        self.max_explanations = n;
        self
    }

    /// Override the thread count (useful for benchmarking scaling).
    pub fn with_threads(mut self, threads: usize) -> StabilityEngine {
        assert!(threads > 0, "thread count must be positive");
        self.threads = Some(threads);
        self
    }

    fn effective_threads(&self, work_items: usize) -> usize {
        let hw = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        hw.min(work_items.max(1))
    }

    /// Score every customer of `db`.
    pub fn compute(&self, db: &WindowedDatabase) -> StabilityMatrix {
        let _stage = attrition_obs::Stage::enter("scoring");
        let customers = db.customers();
        let n_threads = self.effective_threads(customers.len());
        let serial = n_threads <= 1 || customers.len() < 32;
        if attrition_obs::enabled() {
            attrition_obs::global()
                .gauge("core.scoring.threads")
                .set(if serial { 1 } else { n_threads as i64 });
        }
        let analyses: Vec<CustomerAnalysis> = if serial {
            let mut telemetry = attrition_obs::ThreadTelemetry::start("core.scoring");
            customers
                .iter()
                .map(|w| {
                    telemetry.add_items(1);
                    analyze_customer(w, self.params, self.max_explanations)
                })
                .collect()
        } else {
            let chunk_size = customers.len().div_ceil(n_threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = customers
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut telemetry =
                                attrition_obs::ThreadTelemetry::start("core.scoring");
                            chunk
                                .iter()
                                .map(|w| {
                                    telemetry.add_items(1);
                                    analyze_customer(w, self.params, self.max_explanations)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut out = Vec::with_capacity(customers.len());
                for h in handles {
                    out.extend(h.join().expect("worker thread panicked"));
                }
                out
            })
        };
        if attrition_obs::enabled() {
            attrition_obs::global()
                .counter("core.scoring.customers_scored")
                .add(analyses.len() as u64);
        }
        StabilityMatrix {
            num_windows: db.num_windows,
            analyses,
        }
    }
}

/// The stability of every customer at every window, with explanations.
#[derive(Debug, Clone)]
pub struct StabilityMatrix {
    /// Number of horizon windows of the underlying database.
    pub num_windows: u32,
    analyses: Vec<CustomerAnalysis>,
}

impl StabilityMatrix {
    /// Number of customers scored.
    pub fn num_customers(&self) -> usize {
        self.analyses.len()
    }

    /// All per-customer analyses, in customer-id order.
    pub fn analyses(&self) -> &[CustomerAnalysis] {
        &self.analyses
    }

    /// The analysis of one customer.
    pub fn customer(&self, id: CustomerId) -> Option<&CustomerAnalysis> {
        self.analyses
            .binary_search_by_key(&id, |a| a.customer)
            .ok()
            .map(|i| &self.analyses[i])
    }

    /// `(customer, stability)` pairs at window `k`, skipping customers
    /// whose horizon is shorter than `k + 1` (possible under per-customer
    /// alignment).
    pub fn stability_at(&self, k: WindowIndex) -> Vec<(CustomerId, f64)> {
        self.analyses
            .iter()
            .filter_map(|a| a.points.get(k.index()).map(|p| (a.customer, p.value)))
            .collect()
    }

    /// `(customer, attrition score)` pairs at window `k`, where the score
    /// is `1 − stability` (higher = more likely defecting) — the input
    /// convention of `attrition-eval`-style ROC analysis.
    pub fn attrition_scores_at(&self, k: WindowIndex) -> Vec<(CustomerId, f64)> {
        self.stability_at(k)
            .into_iter()
            .map(|(c, v)| (c, 1.0 - v))
            .collect()
    }

    /// The explanation of one customer at one window.
    pub fn explanation(&self, id: CustomerId, k: WindowIndex) -> Option<&WindowExplanation> {
        self.customer(id)
            .and_then(|a| a.explanations.get(k.index()))
    }

    /// The `limit` most at-risk customers at window `k` (highest
    /// attrition score first, ties broken by customer id). This is the
    /// retention campaign's call list.
    ///
    /// Selects the top `limit` in `O(n)` and sorts only that prefix
    /// (`O(n + limit·log limit)`) — a call list is tiny next to the
    /// population, so sorting everyone was pure waste.
    pub fn rank_at(&self, k: WindowIndex, limit: usize) -> Vec<(CustomerId, f64)> {
        fn rank(a: &(CustomerId, f64), b: &(CustomerId, f64)) -> std::cmp::Ordering {
            b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
        }
        let mut ranked = self.attrition_scores_at(k);
        if limit == 0 {
            ranked.clear();
        } else if limit < ranked.len() {
            ranked.select_nth_unstable_by(limit - 1, rank);
            ranked.truncate(limit);
        }
        ranked.sort_unstable_by(rank);
        ranked
    }

    /// Summary statistics of the stability values at window `k`
    /// (population health at a glance).
    pub fn summary_at(&self, k: WindowIndex) -> attrition_util::Summary {
        let values: Vec<f64> = self.stability_at(k).into_iter().map(|(_, v)| v).collect();
        attrition_util::Summary::of(&values)
    }

    /// The full point (value + decomposition) of one customer at one
    /// window.
    pub fn point(&self, id: CustomerId, k: WindowIndex) -> Option<&StabilityPoint> {
        self.customer(id).and_then(|a| a.points.get(k.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_store::{ReceiptStoreBuilder, WindowAlignment, WindowSpec, WindowedDatabase};
    use attrition_types::{Basket, Cents, Date, Receipt};

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn db(n_customers: u64) -> WindowedDatabase {
        let mut b = ReceiptStoreBuilder::new();
        for c in 0..n_customers {
            // Each customer buys item c and item 100 every month for 6
            // months, then drops item 100 if c is odd.
            for month in 0..6 {
                let date = d(2012, 5, 1).add_months(month);
                let items = if month >= 4 && c % 2 == 1 {
                    vec![c as u32]
                } else {
                    vec![c as u32, 100]
                };
                b.push(Receipt::new(
                    CustomerId::new(c),
                    date,
                    Basket::new(
                        items
                            .into_iter()
                            .map(attrition_types::ItemId::new)
                            .collect(),
                    ),
                    Cents(100),
                ));
            }
        }
        WindowedDatabase::from_store(
            &b.build(),
            WindowSpec::months(d(2012, 5, 1), 1),
            6,
            WindowAlignment::Global,
        )
    }

    #[test]
    fn matrix_shape() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(10));
        assert_eq!(matrix.num_customers(), 10);
        assert_eq!(matrix.num_windows, 6);
        for a in matrix.analyses() {
            assert_eq!(a.points.len(), 6);
            assert_eq!(a.explanations.len(), 6);
        }
    }

    #[test]
    fn droppers_score_lower_late() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(10));
        let at5 = matrix.stability_at(WindowIndex::new(5));
        for (c, v) in at5 {
            if c.raw() % 2 == 1 {
                assert!(v < 1.0, "dropper {c} at {v}");
            } else {
                assert_eq!(v, 1.0, "keeper {c} at {v}");
            }
        }
    }

    #[test]
    fn attrition_scores_invert() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(4));
        let stab = matrix.stability_at(WindowIndex::new(5));
        let attr = matrix.attrition_scores_at(WindowIndex::new(5));
        for ((c1, s), (c2, a)) in stab.iter().zip(&attr) {
            assert_eq!(c1, c2);
            assert!((s + a - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let database = db(64);
        let serial = StabilityEngine::new(StabilityParams::PAPER)
            .with_threads(1)
            .compute(&database);
        let parallel = StabilityEngine::new(StabilityParams::PAPER)
            .with_threads(4)
            .compute(&database);
        assert_eq!(serial.num_customers(), parallel.num_customers());
        for (a, b) in serial.analyses().iter().zip(parallel.analyses()) {
            assert_eq!(a.customer, b.customer);
            assert_eq!(a.points, b.points);
            assert_eq!(a.explanations, b.explanations);
        }
    }

    #[test]
    fn customer_lookup() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(5));
        assert!(matrix.customer(CustomerId::new(3)).is_some());
        assert!(matrix.customer(CustomerId::new(99)).is_none());
        assert!(matrix
            .point(CustomerId::new(3), WindowIndex::new(0))
            .is_some());
        assert!(matrix
            .point(CustomerId::new(3), WindowIndex::new(9))
            .is_none());
    }

    #[test]
    fn dropper_explanation_names_item_100() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(4));
        let expl = matrix
            .explanation(CustomerId::new(1), WindowIndex::new(4))
            .unwrap();
        assert_eq!(
            expl.primary().unwrap().item,
            attrition_types::ItemId::new(100)
        );
    }

    #[test]
    fn ranking_puts_droppers_first() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(10));
        let top = matrix.rank_at(WindowIndex::new(5), 5);
        assert_eq!(top.len(), 5);
        // Odd customers dropped item 100 → all five droppers outrank
        // every keeper.
        for (c, score) in &top {
            assert_eq!(c.raw() % 2, 1, "keeper {c} ranked in top 5");
            assert!(*score > 0.0);
        }
        // Scores descend.
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        // Limit larger than the population clamps.
        assert_eq!(matrix.rank_at(WindowIndex::new(5), 99).len(), 10);
    }

    #[test]
    fn rank_at_matches_full_sort_at_every_limit() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(17));
        let k = WindowIndex::new(5);
        let mut reference = matrix.attrition_scores_at(k);
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for limit in 0..=reference.len() + 2 {
            let mut expected = reference.clone();
            expected.truncate(limit);
            assert_eq!(matrix.rank_at(k, limit), expected, "limit {limit}");
        }
    }

    #[test]
    fn summary_at_reports_population_health() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(10));
        let healthy = matrix.summary_at(WindowIndex::new(3));
        assert_eq!(healthy.count, 10);
        assert_eq!(healthy.median, 1.0);
        let late = matrix.summary_at(WindowIndex::new(5));
        assert!(late.mean < healthy.mean);
        assert_eq!(matrix.summary_at(WindowIndex::new(50)).count, 0);
    }

    #[test]
    fn stability_at_out_of_range_empty() {
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db(3));
        assert!(matrix.stability_at(WindowIndex::new(40)).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_panics() {
        StabilityEngine::new(StabilityParams::PAPER).with_threads(0);
    }

    #[test]
    fn empty_database() {
        let store = ReceiptStoreBuilder::new().build();
        let db = WindowedDatabase::from_store(
            &store,
            WindowSpec::months(d(2012, 5, 1), 1),
            0,
            WindowAlignment::Global,
        );
        let matrix = StabilityEngine::new(StabilityParams::PAPER).compute(&db);
        assert_eq!(matrix.num_customers(), 0);
        assert!(matrix.stability_at(WindowIndex::new(0)).is_empty());
    }
}
