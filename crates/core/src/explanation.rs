//! Attrition explanation.
//!
//! "When the stability of some customer decreases, we can identify which
//! product mainly caused this decrease. This product is defined as
//! `argmax_{p∉u_k} S(p,k)` … This attrition explanation can be easily
//! extended to a set of products." — the actionable half of the model:
//! the retailer targets marketing at the significant products the
//! customer stopped buying.
//!
//! [`WindowExplanation`] is that ranked set for one window;
//! [`aggregate_explanations`] rolls explanations up across a population
//! into per-item attrition drivers (the paper's stated future work:
//! characterizing the significant products that explain defection).

use attrition_types::{ItemId, Taxonomy, WindowIndex};
use std::collections::HashMap;

/// One product missing from a window, with its significance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LostProduct {
    /// The missing product.
    pub item: ItemId,
    /// `S(p, k)` — how established the product was.
    pub significance: f64,
    /// Its share of the customer's total significance (how much of the
    /// stability drop this single product accounts for).
    pub share: f64,
}

/// The ranked lost-product set of one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExplanation {
    /// The window (`k`).
    pub window: WindowIndex,
    /// Missing tracked products, most significant first.
    pub lost: Vec<LostProduct>,
}

impl WindowExplanation {
    /// The paper's `argmax_{p∉u_k} S(p,k)`: the single product most
    /// responsible for the drop, if any product is missing at all.
    pub fn primary(&self) -> Option<&LostProduct> {
        self.lost.first()
    }

    /// Lost products whose share exceeds `min_share` — the "set of
    /// products" extension with a materiality floor.
    pub fn material(&self, min_share: f64) -> impl Iterator<Item = &LostProduct> {
        self.lost.iter().filter(move |l| l.share >= min_share)
    }

    /// Render with product names from a taxonomy: `"coffee (share 32%)"`.
    pub fn describe(&self, taxonomy: &Taxonomy) -> Vec<String> {
        self.lost
            .iter()
            .map(|l| {
                let name = taxonomy
                    .product(l.item)
                    .map(|p| p.name.clone())
                    .unwrap_or_else(|_| l.item.to_string());
                format!("{name} (share {:.0}%)", l.share * 100.0)
            })
            .collect()
    }
}

/// Significance-descending order with ties broken by item id — a strict
/// total order on any lost set (items are unique), so every selection
/// below is deterministic.
fn rank_lost(a: &LostProduct, b: &LostProduct) -> std::cmp::Ordering {
    b.significance
        .total_cmp(&a.significance)
        .then(a.item.cmp(&b.item))
}

/// Reduce a lost-product set to its `k` most significant entries,
/// sorted most-significant-first (ties broken by item id).
///
/// Uses `select_nth_unstable_by` to partition the top `k` in `O(n)` and
/// sorts only that prefix — `O(n + k log k)` instead of the `O(n log n)`
/// full sort, which matters because every closed window of every
/// customer ranks its lost set (batch engine, streaming monitor, and
/// serve shards all funnel through this).
pub fn select_top_lost(mut lost: Vec<LostProduct>, k: usize) -> Vec<LostProduct> {
    if k == 0 {
        lost.clear();
    } else if k < lost.len() {
        lost.select_nth_unstable_by(k - 1, rank_lost);
        lost.truncate(k);
    }
    lost.sort_unstable_by(rank_lost);
    lost
}

/// A population-level attrition driver: an item, how many customers'
/// explanations it appears in, and the cumulative significance share it
/// accounted for.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentDriver {
    /// The item (or segment, at segment granularity).
    pub item: ItemId,
    /// Number of (customer, window) explanations it appears in.
    pub occurrences: usize,
    /// Sum of its shares across those explanations.
    pub total_share: f64,
}

/// Aggregate per-customer window explanations into ranked population-level
/// drivers, counting only losses with share at least `min_share`.
///
/// Feed the explanations of the windows of interest (e.g. every window at
/// or after the detected onset for each defecting customer).
pub fn aggregate_explanations<'a>(
    explanations: impl IntoIterator<Item = &'a WindowExplanation>,
    min_share: f64,
) -> Vec<SegmentDriver> {
    let mut by_item: HashMap<ItemId, (usize, f64)> = HashMap::new();
    for expl in explanations {
        for lost in expl.material(min_share) {
            let entry = by_item.entry(lost.item).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += lost.share;
        }
    }
    let mut drivers: Vec<SegmentDriver> = by_item
        .into_iter()
        .map(|(item, (occurrences, total_share))| SegmentDriver {
            item,
            occurrences,
            total_share,
        })
        .collect();
    drivers.sort_by(|a, b| {
        b.total_share
            .total_cmp(&a.total_share)
            .then(a.item.cmp(&b.item))
    });
    drivers
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_types::{Cents, TaxonomyBuilder};

    fn lost(raw: u32, sig: f64, share: f64) -> LostProduct {
        LostProduct {
            item: ItemId::new(raw),
            significance: sig,
            share,
        }
    }

    fn expl(window: u32, lost_products: Vec<LostProduct>) -> WindowExplanation {
        WindowExplanation {
            window: WindowIndex::new(window),
            lost: lost_products,
        }
    }

    #[test]
    fn primary_is_first() {
        let e = expl(3, vec![lost(1, 8.0, 0.4), lost(2, 2.0, 0.1)]);
        assert_eq!(e.primary().unwrap().item, ItemId::new(1));
        assert!(expl(0, vec![]).primary().is_none());
    }

    #[test]
    fn material_filters_by_share() {
        let e = expl(
            3,
            vec![lost(1, 8.0, 0.4), lost(2, 2.0, 0.1), lost(3, 1.0, 0.05)],
        );
        let material: Vec<u32> = e.material(0.1).map(|l| l.item.raw()).collect();
        assert_eq!(material, vec![1, 2]);
    }

    #[test]
    fn describe_uses_names() {
        let mut t = TaxonomyBuilder::new();
        let seg = t.add_segment("coffee");
        t.add_product(seg, "arabica", Cents(400)).unwrap();
        let tax = t.build();
        let e = expl(1, vec![lost(0, 4.0, 0.321), lost(99, 1.0, 0.1)]);
        let lines = e.describe(&tax);
        assert_eq!(lines[0], "arabica (share 32%)");
        // Unknown item falls back to the id.
        assert_eq!(lines[1], "i99 (share 10%)");
    }

    #[test]
    fn select_top_lost_matches_full_sort() {
        use attrition_util::check::forall;
        forall(
            256,
            |rng| {
                let n = rng.usize_below(20);
                let lost: Vec<LostProduct> = (0..n)
                    .map(|i| {
                        // Duplicate significances exercise the id tie-break.
                        lost(i as u32, rng.u64_below(5) as f64, 0.0)
                    })
                    .collect();
                (lost, rng.usize_below(24))
            },
            |(lost_set, k)| {
                let mut reference = lost_set.clone();
                reference.sort_by(|a, b| {
                    b.significance
                        .total_cmp(&a.significance)
                        .then(a.item.cmp(&b.item))
                });
                reference.truncate(*k);
                assert_eq!(select_top_lost(lost_set.clone(), *k), reference);
            },
        );
    }

    #[test]
    fn select_top_lost_edge_cases() {
        assert!(select_top_lost(vec![lost(1, 2.0, 0.1)], 0).is_empty());
        assert!(select_top_lost(Vec::new(), 5).is_empty());
        let all = select_top_lost(vec![lost(2, 1.0, 0.1), lost(1, 4.0, 0.2)], 10);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].item, ItemId::new(1));
    }

    #[test]
    fn aggregation_counts_and_ranks() {
        let explanations = [
            expl(5, vec![lost(1, 8.0, 0.5), lost(2, 2.0, 0.2)]),
            expl(6, vec![lost(1, 4.0, 0.3)]),
            expl(5, vec![lost(2, 2.0, 0.25), lost(3, 1.0, 0.01)]),
        ];
        let drivers = aggregate_explanations(explanations.iter(), 0.05);
        // Item 3 filtered by min_share.
        assert_eq!(drivers.len(), 2);
        assert_eq!(drivers[0].item, ItemId::new(1));
        assert_eq!(drivers[0].occurrences, 2);
        assert!((drivers[0].total_share - 0.8).abs() < 1e-12);
        assert_eq!(drivers[1].item, ItemId::new(2));
        assert!((drivers[1].total_share - 0.45).abs() < 1e-12);
    }

    #[test]
    fn aggregation_empty() {
        let drivers = aggregate_explanations(std::iter::empty(), 0.0);
        assert!(drivers.is_empty());
    }

    #[test]
    fn aggregation_tie_broken_by_item_id() {
        let explanations = [
            expl(1, vec![lost(9, 1.0, 0.3)]),
            expl(1, vec![lost(4, 1.0, 0.3)]),
        ];
        let drivers = aggregate_explanations(explanations.iter(), 0.0);
        assert_eq!(drivers[0].item, ItemId::new(4));
        assert_eq!(drivers[1].item, ItemId::new(9));
    }
}
