//! CSV export of batch results.
//!
//! Downstream consumers (BI dashboards, campaign tooling) want the
//! stability matrix and the explanations as flat files; these functions
//! render them in stable, documented schemas.
//!
//! * scores: `customer,window,stability,present_significance,total_significance`
//! * explanations: `customer,window,rank,item,significance,share`

use crate::engine::StabilityMatrix;
use attrition_util::csv::CsvWriter;

/// Render the full stability matrix as CSV (one row per customer-window).
pub fn matrix_to_csv(matrix: &StabilityMatrix) -> String {
    let mut w = CsvWriter::new();
    w.record(&[
        "customer",
        "window",
        "stability",
        "present_significance",
        "total_significance",
    ]);
    for analysis in matrix.analyses() {
        for point in &analysis.points {
            w.record(&[
                &analysis.customer.raw().to_string(),
                &point.window.raw().to_string(),
                &format!("{:.6}", point.value),
                &format!("{:.6}", point.present_significance),
                &format!("{:.6}", point.total_significance),
            ]);
        }
    }
    w.finish()
}

/// Render every window explanation as CSV (one row per lost product),
/// keeping only losses with `share ≥ min_share`.
pub fn explanations_to_csv(matrix: &StabilityMatrix, min_share: f64) -> String {
    let mut w = CsvWriter::new();
    w.record(&[
        "customer",
        "window",
        "rank",
        "item",
        "significance",
        "share",
    ]);
    for analysis in matrix.analyses() {
        for expl in &analysis.explanations {
            for (rank, lost) in expl
                .lost
                .iter()
                .filter(|l| l.share >= min_share)
                .enumerate()
            {
                w.record(&[
                    &analysis.customer.raw().to_string(),
                    &expl.window.raw().to_string(),
                    &(rank + 1).to_string(),
                    &lost.item.raw().to_string(),
                    &format!("{:.6}", lost.significance),
                    &format!("{:.6}", lost.share),
                ]);
            }
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StabilityEngine;
    use crate::params::StabilityParams;
    use attrition_store::{ReceiptStoreBuilder, WindowAlignment, WindowSpec, WindowedDatabase};
    use attrition_types::{Basket, Cents, CustomerId, Date, Receipt};

    fn matrix() -> StabilityMatrix {
        let d0 = Date::from_ymd(2012, 5, 1).unwrap();
        let mut b = ReceiptStoreBuilder::new();
        for month in 0..3 {
            b.push(Receipt::new(
                CustomerId::new(1),
                d0.add_months(month),
                Basket::from_raw(if month < 2 { &[1, 2] } else { &[1] }),
                Cents(100),
            ));
        }
        let db = WindowedDatabase::from_store(
            &b.build(),
            WindowSpec::months(d0, 1),
            3,
            WindowAlignment::Global,
        );
        StabilityEngine::new(StabilityParams::PAPER).compute(&db)
    }

    #[test]
    fn matrix_csv_schema_and_rows() {
        let csv = matrix_to_csv(&matrix());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "customer,window,stability,present_significance,total_significance"
        );
        assert_eq!(lines.len(), 1 + 3); // header + 1 customer × 3 windows
                                        // Window 2: item 2 missing → stability 4/(4+4) wait: S(1)=S(2)=4 at
                                        // k=2 → 0.5.
        assert!(lines[3].starts_with("1,2,0.5"));
    }

    #[test]
    fn explanations_csv_lists_losses() {
        let csv = explanations_to_csv(&matrix(), 0.0);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "customer,window,rank,item,significance,share");
        // Only window 2 has a loss (item 2).
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("1,2,1,2,"));
    }

    #[test]
    fn min_share_filters() {
        let csv = explanations_to_csv(&matrix(), 0.99);
        assert_eq!(csv.lines().count(), 1); // header only
    }

    #[test]
    fn exported_csv_parses_back() {
        let csv = matrix_to_csv(&matrix());
        let rows: Vec<Vec<String>> = attrition_util::csv::parse_document(&csv)
            .map(|r| r.expect("own CSV parses"))
            .collect();
        assert_eq!(rows.len(), 4);
        for row in &rows[1..] {
            assert_eq!(row.len(), 5);
            let v: f64 = row[2].parse().expect("stability is numeric");
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
