//! Streaming stability monitoring.
//!
//! The batch engine recomputes from scratch; a deployed retention system
//! instead *watches receipts arrive* and closes a window per customer
//! when the calendar crosses a window boundary. [`StabilityMonitor`] is
//! that online mode: feed receipts in any order of customers (but
//! chronologically per customer); every time a customer's receipt lands
//! past their current window, the elapsed windows are closed and scored.
//!
//! The scores are identical to the batch engine's by construction (same
//! tracker, same fold order) — asserted by integration tests.

use crate::explanation::WindowExplanation;
use crate::params::StabilityParams;
use crate::significance::SignificanceTracker;
use crate::stability::StabilityPoint;
use attrition_store::{ByteReader, ByteWriter, WindowSpec};
use attrition_types::{Basket, CustomerId, Date, ItemId, WindowIndex};
use std::collections::HashMap;

/// Binary monitor-snapshot magic: "ATTRMON" + format version 1.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ATTRMON1";

/// A structured error from [`StabilityMonitor::restore`] /
/// [`restore_bytes`](StabilityMonitor::restore_bytes): names where in
/// the checkpoint the error was detected and, when attributable, the
/// field that failed, so an operator restoring a server snapshot sees
/// *where* the file is bad instead of a context-free message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    /// 1-based line of the checkpoint the error was detected at. `0`
    /// means the checkpoint was binary (no lines); the byte offset is
    /// carried in the message instead.
    pub line: usize,
    /// The field that failed to parse, when attributable.
    pub field: Option<&'static str>,
    /// What went wrong.
    pub message: String,
}

impl RestoreError {
    fn new(line: usize, field: Option<&'static str>, message: impl Into<String>) -> RestoreError {
        RestoreError {
            line,
            field,
            message: message.into(),
        }
    }

    /// An error from the binary format (`line = 0`).
    fn binary(field: Option<&'static str>, message: impl Into<String>) -> RestoreError {
        RestoreError::new(0, field, message)
    }
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "binary checkpoint")?;
        } else {
            write!(f, "checkpoint line {}", self.line)?;
        }
        match self.field {
            Some(field) => write!(f, ", field `{}`: {}", field, self.message),
            None => write!(f, ": {}", self.message),
        }
    }
}

impl std::error::Error for RestoreError {}

/// A closed-window event emitted by the monitor.
#[derive(Debug, Clone)]
pub struct WindowClosed {
    /// The customer whose window closed.
    pub customer: CustomerId,
    /// The scored point.
    pub point: StabilityPoint,
    /// The ranked lost products of that window.
    pub explanation: WindowExplanation,
}

/// Per-customer online state.
#[derive(Debug)]
struct CustomerState {
    tracker: SignificanceTracker,
    /// Window currently being accumulated.
    current_window: u32,
    /// Items seen so far in the current window.
    pending: Vec<ItemId>,
}

/// Online, multi-customer stability monitor.
///
/// Customer state lives in an arena (`Vec<CustomerState>`, each state
/// two flat sorted columns) with a side index from id to arena slot —
/// the only hash map left in the hot path. At a million residents this
/// keeps per-customer overhead to the two column vectors plus one
/// 12-byte index entry, instead of a map of individually-boxed states.
#[derive(Debug)]
pub struct StabilityMonitor {
    spec: WindowSpec,
    params: StabilityParams,
    max_explanations: usize,
    /// Arena of per-customer state, in first-seen order.
    states: Vec<CustomerState>,
    /// Customer id → arena slot.
    index: HashMap<CustomerId, u32>,
}

impl StabilityMonitor {
    /// Create a monitor on a window grid.
    pub fn new(spec: WindowSpec, params: StabilityParams) -> StabilityMonitor {
        StabilityMonitor {
            spec,
            params,
            max_explanations: 5,
            states: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Arena slot of a customer, if tracked.
    #[inline]
    fn slot(&self, customer: CustomerId) -> Option<usize> {
        self.index.get(&customer).map(|&i| i as usize)
    }

    /// Append a customer's state to the arena. The caller guarantees the
    /// customer is not yet tracked.
    fn push_state(&mut self, customer: CustomerId, state: CustomerState) -> usize {
        debug_assert!(!self.index.contains_key(&customer));
        let slot = self.states.len();
        self.states.push(state);
        self.index.insert(customer, slot as u32);
        slot
    }

    /// Tracked customers with their arena slots, ascending by id.
    fn ordered_slots(&self) -> Vec<(CustomerId, usize)> {
        let mut ids: Vec<(CustomerId, usize)> =
            self.index.iter().map(|(&c, &i)| (c, i as usize)).collect();
        ids.sort_unstable();
        ids
    }

    /// Heap bytes held by the monitor (capacities, not lengths): the
    /// arena, the id index, and every tracker's columns. Used by the
    /// capacity bench to report bytes-per-resident-customer.
    pub fn heap_bytes(&self) -> usize {
        let mut total = self.states.capacity() * std::mem::size_of::<CustomerState>()
            // id + slot per entry plus hashbrown's control byte and
            // 87.5% max load factor, approximately.
            + self.index.capacity()
                * (std::mem::size_of::<(CustomerId, u32)>() + std::mem::size_of::<u32>());
        for state in &self.states {
            total += state.tracker.heap_bytes()
                + state.pending.capacity() * std::mem::size_of::<ItemId>();
        }
        total
    }

    /// Override how many lost products each emitted explanation retains.
    pub fn with_max_explanations(mut self, n: usize) -> StabilityMonitor {
        self.max_explanations = n;
        self
    }

    /// Number of customers currently tracked.
    pub fn num_customers(&self) -> usize {
        self.states.len()
    }

    /// The window grid this monitor scores on.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The significance parameters this monitor scores with.
    pub fn params(&self) -> StabilityParams {
        self.params
    }

    /// How many lost products each emitted explanation retains.
    pub fn max_explanations(&self) -> usize {
        self.max_explanations
    }

    /// The tracked customers, in ascending id order.
    pub fn customer_ids(&self) -> Vec<CustomerId> {
        let mut ids: Vec<CustomerId> = self.index.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Split the monitor into `n` monitors that together track exactly
    /// the original customer set: customer `c` moves to the monitor at
    /// `route(c)`. All fragments share the grid and parameters; scoring
    /// a customer in its fragment is bit-identical to scoring it here
    /// (per-customer state is independent). This is what a shard router
    /// uses to fan one restored checkpoint out across shards.
    ///
    /// # Panics
    /// If `n == 0` or `route` returns an index `>= n`.
    pub fn partition(self, n: usize, route: impl Fn(CustomerId) -> usize) -> Vec<StabilityMonitor> {
        assert!(n > 0, "cannot partition into zero monitors");
        let mut parts: Vec<StabilityMonitor> = (0..n)
            .map(|_| {
                StabilityMonitor::new(self.spec, self.params)
                    .with_max_explanations(self.max_explanations)
            })
            .collect();
        // Recover each slot's id before consuming the arena.
        let mut ids = vec![CustomerId::new(0); self.states.len()];
        for (&customer, &slot) in &self.index {
            ids[slot as usize] = customer;
        }
        for (slot, state) in self.states.into_iter().enumerate() {
            let customer = ids[slot];
            let shard = route(customer);
            assert!(
                shard < n,
                "route({customer}) returned shard {shard}, but only {n} exist"
            );
            parts[shard].push_state(customer, state);
        }
        parts
    }

    /// Ingest one receipt. Receipts of the same customer must arrive in
    /// chronological order; receipts dated before the grid origin are
    /// ignored. Returns the windows that were closed (and scored) by this
    /// receipt's arrival — empty while the receipt falls into the
    /// customer's current window.
    pub fn ingest(
        &mut self,
        customer: CustomerId,
        date: Date,
        basket: &Basket,
    ) -> Vec<WindowClosed> {
        // A basket is sorted + deduplicated by construction, so the
        // slice path applies identically.
        self.ingest_sorted(customer, date, basket.items())
    }

    /// [`ingest`](StabilityMonitor::ingest) over a plain sorted,
    /// deduplicated item slice — the zero-allocation entry point of the
    /// batched wire path, which sorts into a reusable scratch buffer
    /// instead of building a [`Basket`] per receipt. Behavior (and every
    /// emitted score) is bit-identical to `ingest` with
    /// `Basket::new(items.to_vec())`.
    ///
    /// # Panics
    /// Debug builds assert the slice is strictly ascending.
    pub fn ingest_sorted(
        &mut self,
        customer: CustomerId,
        date: Date,
        items: &[ItemId],
    ) -> Vec<WindowClosed> {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "ingest_sorted requires sorted, deduplicated items"
        );
        let Some(window) = self.spec.window_of(date) else {
            return Vec::new();
        };
        let slot = match self.slot(customer) {
            Some(slot) => slot,
            None => self.push_state(
                customer,
                CustomerState {
                    tracker: SignificanceTracker::new(self.params),
                    current_window: 0,
                    pending: Vec::new(),
                },
            ),
        };
        let state = &mut self.states[slot];
        assert!(
            window.raw() >= state.current_window,
            "receipts of customer {customer} arrived out of order \
             (window {} after {})",
            window.raw(),
            state.current_window
        );
        let mut closed = Vec::new();
        while state.current_window < window.raw() {
            closed.push(Self::close_one(customer, state, self.max_explanations));
        }
        state.pending.extend_from_slice(items);
        if attrition_obs::enabled() {
            let registry = attrition_obs::global();
            registry.counter("core.monitor.receipts_ingested").add(1);
            registry
                .counter("core.monitor.windows_closed")
                .add(closed.len() as u64);
        }
        closed
    }

    /// Close every customer's windows up to (excluding) the window
    /// containing `now`; call at end-of-period or on a timer.
    pub fn flush_until(&mut self, now: Date) -> Vec<WindowClosed> {
        let Some(window) = self.spec.window_of(now) else {
            return Vec::new();
        };
        let mut closed = Vec::new();
        for (id, slot) in self.ordered_slots() {
            let state = &mut self.states[slot];
            while state.current_window < window.raw() {
                closed.push(Self::close_one(id, state, self.max_explanations));
            }
        }
        closed
    }

    /// The window a customer is currently accumulating, without
    /// computing significance or cloning pending items — the cheap
    /// accessor the ingest path uses for its out-of-order check (a full
    /// [`preview`](StabilityMonitor::preview) allocates and scores).
    pub fn current_window(&self, customer: CustomerId) -> Option<u32> {
        self.slot(customer)
            .map(|slot| self.states[slot].current_window)
    }

    /// The live (not yet closed) stability of a customer's current
    /// window, scored against their history so far.
    pub fn preview(&self, customer: CustomerId) -> Option<StabilityPoint> {
        let state = &self.states[self.slot(customer)?];
        let u = Basket::new(state.pending.clone());
        let total = state.tracker.total_significance();
        let present = state.tracker.present_significance(&u);
        Some(StabilityPoint {
            window: WindowIndex::new(state.current_window),
            value: if total > 0.0 { present / total } else { 1.0 },
            present_significance: present,
            total_significance: total,
        })
    }

    /// Serialize the monitor's state to a CSV checkpoint.
    ///
    /// Schema: a header row `#monitor,<windows grid origin days>,<length
    /// code>,<alpha>,<max_explanations>`, then one row per `(customer,
    /// kind, …)`: `c,<customer>,<current_window>,<windows_observed>` for
    /// customer headers, `i,<customer>,<item>,<count>` for tracker
    /// counters, `p,<customer>,<item>` for pending (current-window) items
    /// (repeated per occurrence). Restoring with
    /// [`StabilityMonitor::restore`] yields a monitor whose future
    /// outputs are identical to the original's.
    pub fn snapshot(&self) -> String {
        use attrition_util::csv::CsvWriter;
        let mut w = CsvWriter::new();
        let length_code = match self.spec.length {
            attrition_store::WindowLength::Days(d) => format!("d{d}"),
            attrition_store::WindowLength::Months(m) => format!("m{m}"),
        };
        w.record(&[
            "#monitor",
            &self.spec.origin.days_since_epoch().to_string(),
            &length_code,
            &self.params.alpha.to_string(),
            &self.max_explanations.to_string(),
        ]);
        for (id, slot) in self.ordered_slots() {
            let state = &self.states[slot];
            w.record(&[
                "c",
                &id.raw().to_string(),
                &state.current_window.to_string(),
                &state.tracker.windows_observed().to_string(),
            ]);
            // tracked_items() iterates in ascending item order.
            for (item, count, _, _) in state.tracker.tracked_items() {
                w.record(&[
                    "i",
                    &id.raw().to_string(),
                    &item.raw().to_string(),
                    &count.to_string(),
                ]);
            }
            for item in &state.pending {
                w.record(&["p", &id.raw().to_string(), &item.raw().to_string(), ""]);
            }
        }
        w.finish()
    }

    /// Serialize the monitor's state to the compact binary snapshot.
    ///
    /// Layout (all integers little-endian):
    ///
    /// ```text
    /// [0..8)  magic  b"ATTRMON1"
    /// i32     window grid origin, days since epoch
    /// u8      window length kind: 0 = days, 1 = months
    /// u32     window length value
    /// u64     alpha, IEEE-754 bits
    /// u64     max_explanations
    /// u64     n  (customers)
    /// ```
    ///
    /// then one self-delimiting block per customer, ascending by id:
    ///
    /// ```text
    /// u64     customer id
    /// u32     current_window
    /// u32     windows_observed
    /// u32     t  (tracked items)
    /// u32     p  (pending items)
    /// (u32 item, u32 count) × t   ascending by item
    /// u32 × p                      pending items, arrival order
    /// ```
    ///
    /// Because blocks are self-delimiting and globally sorted, shard
    /// snapshots merge by interleaving blocks
    /// ([`merge_snapshot_bytes`](StabilityMonitor::merge_snapshot_bytes))
    /// without re-encoding. Restoring with
    /// [`restore_bytes`](StabilityMonitor::restore_bytes) is equivalent
    /// to restoring the text [`snapshot`](StabilityMonitor::snapshot)
    /// of the same state: the monitors produce bit-identical scores and
    /// snapshots from then on.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        StabilityMonitor::merge_snapshot_bytes([self])
    }

    /// Binary snapshot of several disjoint monitors (shards of one
    /// logical monitor) as if they were a single monitor: one header,
    /// customer blocks interleaved into ascending id order. All parts
    /// must share grid, parameters, and `max_explanations`, and no
    /// customer may appear in two parts.
    ///
    /// # Panics
    /// If `parts` is empty or the parts disagree on grid/parameters.
    pub fn merge_snapshot_bytes<'a>(
        parts: impl IntoIterator<Item = &'a StabilityMonitor>,
    ) -> Vec<u8> {
        let parts: Vec<&StabilityMonitor> = parts.into_iter().collect();
        let first = *parts.first().expect("at least one monitor to snapshot");
        let mut order: Vec<(CustomerId, usize, usize)> = Vec::new();
        for (p, part) in parts.iter().enumerate() {
            assert!(
                part.spec == first.spec
                    && part.params.alpha.to_bits() == first.params.alpha.to_bits()
                    && part.max_explanations == first.max_explanations,
                "snapshot parts disagree on grid or parameters"
            );
            order.extend(
                part.index
                    .iter()
                    .map(|(&customer, &slot)| (customer, p, slot as usize)),
            );
        }
        order.sort_unstable_by_key(|&(customer, _, _)| customer);

        let mut w = ByteWriter::with_capacity(64 + order.len() * 64);
        w.bytes(&SNAPSHOT_MAGIC);
        w.i32(first.spec.origin.days_since_epoch());
        let (kind, value) = match first.spec.length {
            attrition_store::WindowLength::Days(d) => (0u8, d),
            attrition_store::WindowLength::Months(m) => (1u8, m),
        };
        w.u8(kind);
        w.u32(value);
        w.f64(first.params.alpha);
        w.u64(first.max_explanations as u64);
        w.u64(order.len() as u64);
        for window in order.windows(2) {
            assert!(
                window[0].0 != window[1].0,
                "customer {} appears in two snapshot parts",
                window[0].0
            );
        }
        for (customer, p, slot) in order {
            let state = &parts[p].states[slot];
            w.u64(customer.raw());
            w.u32(state.current_window);
            w.u32(state.tracker.windows_observed());
            w.u32(state.tracker.num_tracked() as u32);
            w.u32(state.pending.len() as u32);
            for (item, count, _, _) in state.tracker.tracked_items() {
                w.u32(item.raw());
                w.u32(count);
            }
            for item in &state.pending {
                w.u32(item.raw());
            }
        }
        w.into_bytes()
    }

    /// Restore a monitor from a binary snapshot
    /// ([`snapshot_bytes`](StabilityMonitor::snapshot_bytes)).
    ///
    /// Every read is bounds-checked and every invariant the encoder
    /// maintains (ascending customer ids, ascending item ids, counts
    /// within `1..=windows_observed`) is validated, so truncated,
    /// bit-flipped, or simply wrong input fails with a structured
    /// [`RestoreError`] — never a panic and never a monitor with
    /// corrupt internal state.
    pub fn restore_bytes(bytes: &[u8]) -> Result<StabilityMonitor, RestoreError> {
        let be = |field: Option<&'static str>| {
            move |e: attrition_store::ByteError| RestoreError::binary(field, e.to_string())
        };
        let mut r = ByteReader::new(bytes);
        let magic = r.take(8).map_err(be(Some("magic")))?;
        if magic[..7] != SNAPSHOT_MAGIC[..7] {
            return Err(RestoreError::binary(
                Some("magic"),
                "not a binary monitor snapshot",
            ));
        }
        if magic != SNAPSHOT_MAGIC {
            return Err(RestoreError::binary(
                Some("magic"),
                format!(
                    "unsupported snapshot version {:?} (expected {:?})",
                    magic[7] as char, SNAPSHOT_MAGIC[7] as char
                ),
            ));
        }
        let origin = Date::from_days(r.i32().map_err(be(Some("origin")))?);
        let kind = r.u8().map_err(be(Some("length")))?;
        let value = r.u32().map_err(be(Some("length")))?;
        let spec = match kind {
            0 => WindowSpec::days(origin, value),
            1 => WindowSpec::months(origin, value),
            other => {
                return Err(RestoreError::binary(
                    Some("length"),
                    format!("unknown window length kind {other}"),
                ))
            }
        };
        let alpha = r.f64().map_err(be(Some("alpha")))?;
        let params = StabilityParams::new(alpha)
            .map_err(|e| RestoreError::binary(Some("alpha"), e.to_string()))?;
        let max_explanations = r.u64().map_err(be(Some("max_explanations")))? as usize;
        let n_customers = r.u64().map_err(be(Some("customers")))?;
        // A customer block is at least 24 bytes; reject impossible
        // counts before reserving anything.
        if n_customers > (r.remaining() / 24) as u64 {
            return Err(RestoreError::binary(
                Some("customers"),
                format!(
                    "customer count {n_customers} cannot fit in {} remaining bytes",
                    r.remaining()
                ),
            ));
        }
        let mut monitor =
            StabilityMonitor::new(spec, params).with_max_explanations(max_explanations);
        monitor.states.reserve(n_customers as usize);
        monitor.index.reserve(n_customers as usize);
        let mut prev: Option<CustomerId> = None;
        for _ in 0..n_customers {
            let customer = CustomerId::new(r.u64().map_err(be(Some("customer")))?);
            if prev.is_some_and(|p| p >= customer) {
                return Err(RestoreError::binary(
                    Some("customer"),
                    format!("customer ids not strictly ascending at {customer}"),
                ));
            }
            prev = Some(customer);
            let current_window = r.u32().map_err(be(Some("current_window")))?;
            let windows = r.u32().map_err(be(Some("windows_observed")))?;
            let n_items = r.u32().map_err(be(Some("items")))? as usize;
            let n_pending = r.u32().map_err(be(Some("pending")))? as usize;
            if n_items > r.remaining() / 8 || n_pending > (r.remaining() - n_items * 8) / 4 {
                return Err(RestoreError::binary(
                    Some("items"),
                    format!(
                        "{customer}: {n_items} items + {n_pending} pending cannot fit in {} \
                         remaining bytes",
                        r.remaining()
                    ),
                ));
            }
            let mut items = Vec::with_capacity(n_items);
            let mut counts = Vec::with_capacity(n_items);
            for _ in 0..n_items {
                items.push(ItemId::new(r.u32().map_err(be(Some("item")))?));
                counts.push(r.u32().map_err(be(Some("count")))?);
            }
            let tracker = SignificanceTracker::from_parts(params, windows, items, counts)
                .map_err(|m| RestoreError::binary(Some("count"), format!("{customer}: {m}")))?;
            let mut pending = Vec::with_capacity(n_pending);
            for _ in 0..n_pending {
                pending.push(ItemId::new(r.u32().map_err(be(Some("pending")))?));
            }
            monitor.push_state(
                customer,
                CustomerState {
                    tracker,
                    current_window,
                    pending,
                },
            );
        }
        r.finish().map_err(be(None))?;
        Ok(monitor)
    }

    /// Restore from either snapshot format, detected by leading bytes:
    /// `b"ATTRMON"` selects the binary decoder, `b"#monitor"` the text
    /// parser. The two decoders produce interchangeable monitors — the
    /// format round-trip property tests assert their snapshots and
    /// scores are bit-identical.
    pub fn restore_any(bytes: &[u8]) -> Result<StabilityMonitor, RestoreError> {
        if bytes.starts_with(b"ATTRMON") {
            return StabilityMonitor::restore_bytes(bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|e| {
            RestoreError::new(
                1,
                None,
                format!("checkpoint is neither binary nor UTF-8: {e}"),
            )
        })?;
        StabilityMonitor::restore(text)
    }

    /// Restore a monitor from a [`snapshot`](StabilityMonitor::snapshot).
    ///
    /// Errors are [structured](RestoreError): they carry the 1-based
    /// checkpoint line and the offending field.
    pub fn restore(text: &str) -> Result<StabilityMonitor, RestoreError> {
        use attrition_util::csv::parse_document;
        let mut lines = parse_document(text);
        let header = lines
            .next()
            .ok_or_else(|| RestoreError::new(1, None, "empty checkpoint"))?
            .ok_or_else(|| RestoreError::new(1, None, "malformed header record"))?;
        if header.len() != 5 || header[0] != "#monitor" {
            return Err(RestoreError::new(
                1,
                None,
                "not a monitor checkpoint (expected a 5-field `#monitor` header)",
            ));
        }
        let origin = Date::from_days(header[1].parse().map_err(|_| {
            RestoreError::new(
                1,
                Some("origin"),
                format!("not a day count: {:?}", header[1]),
            )
        })?);
        let length_err =
            || RestoreError::new(1, Some("length"), format!("bad code {:?}", header[2]));
        let spec = match header[2].split_at(1.min(header[2].len())) {
            ("d", days) => WindowSpec::days(origin, days.parse().map_err(|_| length_err())?),
            ("m", months) => WindowSpec::months(origin, months.parse().map_err(|_| length_err())?),
            _ => return Err(length_err()),
        };
        let alpha: f64 = header[3].parse().map_err(|_| {
            RestoreError::new(1, Some("alpha"), format!("not a number: {:?}", header[3]))
        })?;
        let params = StabilityParams::new(alpha)
            .map_err(|e| RestoreError::new(1, Some("alpha"), e.to_string()))?;
        let max_explanations: usize = header[4].parse().map_err(|_| {
            RestoreError::new(
                1,
                Some("max_explanations"),
                format!("not a count: {:?}", header[4]),
            )
        })?;
        let mut monitor =
            StabilityMonitor::new(spec, params).with_max_explanations(max_explanations);
        for (idx, record) in lines.enumerate() {
            let line = idx + 2;
            let row = record.ok_or_else(|| RestoreError::new(line, None, "malformed record"))?;
            let show = |pos: usize| match row.get(pos) {
                Some(value) => format!("{value:?}"),
                None => "missing".to_owned(),
            };
            let customer =
                CustomerId::new(row.get(1).and_then(|v| v.parse().ok()).ok_or_else(|| {
                    RestoreError::new(
                        line,
                        Some("customer"),
                        format!("not a customer id: {}", show(1)),
                    )
                })?);
            let field_u32 = |pos: usize, field: &'static str| -> Result<u32, RestoreError> {
                row.get(pos).and_then(|v| v.parse().ok()).ok_or_else(|| {
                    RestoreError::new(line, Some(field), format!("not a number: {}", show(pos)))
                })
            };
            match row.first().map(String::as_str) {
                Some("c") => {
                    let current_window = field_u32(2, "current_window")?;
                    let windows = field_u32(3, "windows_observed")?;
                    if monitor.index.contains_key(&customer) {
                        return Err(RestoreError::new(
                            line,
                            Some("customer"),
                            format!("duplicate customer row for {customer}"),
                        ));
                    }
                    let mut tracker = SignificanceTracker::new(params);
                    // Advance the window counter with empty observations;
                    // counters are replayed by the `i` rows below.
                    for _ in 0..windows {
                        tracker.observe_window(&Basket::empty());
                    }
                    monitor.push_state(
                        customer,
                        CustomerState {
                            tracker,
                            current_window,
                            pending: Vec::new(),
                        },
                    );
                }
                Some("i") => {
                    let item = ItemId::new(field_u32(2, "item")?);
                    let count = field_u32(3, "count")?;
                    let slot = monitor.slot(customer).ok_or_else(|| {
                        RestoreError::new(
                            line,
                            Some("customer"),
                            format!("item row for {customer} precedes its customer row"),
                        )
                    })?;
                    let state = &mut monitor.states[slot];
                    // Validate rather than let set_occurrences assert: a
                    // corrupt checkpoint must fail, not panic.
                    if count > state.tracker.windows_observed() {
                        return Err(RestoreError::new(
                            line,
                            Some("count"),
                            format!(
                                "occurrence count {count} exceeds {} observed windows",
                                state.tracker.windows_observed()
                            ),
                        ));
                    }
                    state.tracker.set_occurrences(item, count);
                }
                Some("p") => {
                    let item = ItemId::new(field_u32(2, "item")?);
                    let slot = monitor.slot(customer).ok_or_else(|| {
                        RestoreError::new(
                            line,
                            Some("customer"),
                            format!("pending row for {customer} precedes its customer row"),
                        )
                    })?;
                    monitor.states[slot].pending.push(item);
                }
                other => {
                    return Err(RestoreError::new(
                        line,
                        Some("kind"),
                        format!("unknown row kind {other:?} (expected c, i or p)"),
                    ))
                }
            }
        }
        Ok(monitor)
    }

    fn close_one(
        customer: CustomerId,
        state: &mut CustomerState,
        max_explanations: usize,
    ) -> WindowClosed {
        let u = Basket::new(std::mem::take(&mut state.pending));
        let k = WindowIndex::new(state.current_window);
        let total = state.tracker.total_significance();
        let present = state.tracker.present_significance(&u);
        let point = StabilityPoint {
            window: k,
            value: if total > 0.0 { present / total } else { 1.0 },
            present_significance: present,
            total_significance: total,
        };
        let lost: Vec<crate::explanation::LostProduct> = state
            .tracker
            .tracked_items()
            .filter(|(item, c, _, _)| *c > 0 && !u.contains(*item))
            .map(|(item, _, _, s)| crate::explanation::LostProduct {
                item,
                significance: s,
                share: if total > 0.0 { s / total } else { 0.0 },
            })
            .collect();
        let lost = crate::explanation::select_top_lost(lost, max_explanations);
        state.tracker.observe_window(&u);
        state.current_window += 1;
        WindowClosed {
            customer,
            point,
            explanation: WindowExplanation { window: k, lost },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    fn monitor() -> StabilityMonitor {
        StabilityMonitor::new(WindowSpec::months(d(2012, 5, 1), 1), StabilityParams::PAPER)
    }

    fn b(raw: &[u32]) -> Basket {
        Basket::from_raw(raw)
    }

    #[test]
    fn same_window_receipts_accumulate() {
        let mut m = monitor();
        let c = CustomerId::new(1);
        assert!(m.ingest(c, d(2012, 5, 2), &b(&[1])).is_empty());
        assert!(m.ingest(c, d(2012, 5, 20), &b(&[2])).is_empty());
        let preview = m.preview(c).unwrap();
        assert_eq!(preview.window, WindowIndex::new(0));
        assert_eq!(preview.value, 1.0); // no history yet
    }

    #[test]
    fn crossing_boundary_closes_window() {
        let mut m = monitor();
        let c = CustomerId::new(1);
        m.ingest(c, d(2012, 5, 2), &b(&[1, 2]));
        let closed = m.ingest(c, d(2012, 6, 3), &b(&[1]));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].point.window, WindowIndex::new(0));
        assert_eq!(closed[0].point.value, 1.0);
    }

    #[test]
    fn gap_closes_multiple_windows() {
        let mut m = monitor();
        let c = CustomerId::new(1);
        m.ingest(c, d(2012, 5, 2), &b(&[1]));
        // Jump straight to August: closes May, June, July windows.
        let closed = m.ingest(c, d(2012, 8, 10), &b(&[1]));
        assert_eq!(closed.len(), 3);
        // June and July are empty windows: stability 0 (history exists).
        assert_eq!(closed[1].point.value, 0.0);
        assert_eq!(closed[2].point.value, 0.0);
        // Their explanation names the missing item 1.
        assert_eq!(
            closed[1].explanation.primary().unwrap().item,
            ItemId::new(1)
        );
    }

    #[test]
    fn matches_batch_series() {
        // Feed the same history through the monitor and the batch path.
        use attrition_store::CustomerWindows;
        let history: Vec<Vec<u32>> = vec![
            vec![1, 2],
            vec![1, 2],
            vec![1],
            vec![],
            vec![2, 3],
            vec![1, 2, 3],
        ];
        let c = CustomerId::new(9);

        let mut m = monitor();
        let mut online = Vec::new();
        for (month, items) in history.iter().enumerate() {
            if !items.is_empty() {
                let date = d(2012, 5, 5).add_months(month as i32);
                online.extend(m.ingest(c, date, &b(items)));
            }
        }
        online.extend(m.flush_until(d(2012, 11, 1))); // closes through Oct

        let spec = WindowSpec::months(d(2012, 5, 1), 1);
        let windows = CustomerWindows {
            customer: c,
            baskets: history.iter().map(|v| b(v)).collect(),
            trips: vec![1; history.len()],
            spend: vec![attrition_types::Cents(0); history.len()],
            last_purchase: vec![None; history.len()],
            spec,
        };
        let batch = crate::stability::stability_series(&windows, StabilityParams::PAPER);

        assert_eq!(online.len(), batch.len());
        for (o, bp) in online.iter().zip(&batch) {
            assert_eq!(o.point.window, bp.window);
            assert!(
                (o.point.value - bp.value).abs() < 1e-12,
                "window {}: online {} batch {}",
                bp.window,
                o.point.value,
                bp.value
            );
        }
    }

    #[test]
    fn receipts_before_origin_ignored() {
        let mut m = monitor();
        let c = CustomerId::new(1);
        assert!(m.ingest(c, d(2012, 4, 30), &b(&[1])).is_empty());
        assert_eq!(m.num_customers(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_panics() {
        let mut m = monitor();
        let c = CustomerId::new(1);
        m.ingest(c, d(2012, 7, 1), &b(&[1]));
        m.ingest(c, d(2012, 5, 1), &b(&[1]));
    }

    #[test]
    fn multiple_customers_independent() {
        let mut m = monitor();
        m.ingest(CustomerId::new(1), d(2012, 5, 2), &b(&[1]));
        m.ingest(CustomerId::new(2), d(2012, 5, 2), &b(&[9]));
        let closed = m.ingest(CustomerId::new(1), d(2012, 6, 2), &b(&[1]));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].customer, CustomerId::new(1));
        // Customer 2 still pending.
        assert_eq!(
            m.preview(CustomerId::new(2)).unwrap().window,
            WindowIndex::new(0)
        );
        assert_eq!(m.num_customers(), 2);
    }

    #[test]
    fn flush_emits_in_customer_order() {
        let mut m = monitor();
        m.ingest(CustomerId::new(5), d(2012, 5, 2), &b(&[1]));
        m.ingest(CustomerId::new(2), d(2012, 5, 2), &b(&[2]));
        let closed = m.flush_until(d(2012, 7, 1));
        let ids: Vec<u64> = closed.iter().map(|c| c.customer.raw()).collect();
        // Two windows each (May, June), grouped per customer ascending.
        assert_eq!(ids, vec![2, 2, 5, 5]);
    }

    #[test]
    fn preview_reflects_partial_window() {
        let mut m = monitor();
        let c = CustomerId::new(1);
        m.ingest(c, d(2012, 5, 2), &b(&[1, 2]));
        m.ingest(c, d(2012, 6, 2), &b(&[1])); // closes May; June pending: {1}
        let preview = m.preview(c).unwrap();
        // History: {1,2} → S(1)=S(2)=2; present {1} → 2/4.
        assert!((preview.value - 0.5).abs() < 1e-12);
        assert_eq!(preview.window, WindowIndex::new(1));
    }

    #[test]
    fn unknown_customer_preview_none() {
        assert!(monitor().preview(CustomerId::new(3)).is_none());
    }

    #[test]
    fn snapshot_restore_roundtrip_preserves_future_outputs() {
        // Feed half a history, checkpoint, restore, feed the rest into
        // both the original and the restored monitor: identical outputs.
        let feed_first = |m: &mut StabilityMonitor| {
            m.ingest(CustomerId::new(1), d(2012, 5, 2), &b(&[1, 2]));
            m.ingest(CustomerId::new(1), d(2012, 6, 3), &b(&[1]));
            m.ingest(CustomerId::new(2), d(2012, 6, 10), &b(&[9]));
            m.ingest(CustomerId::new(1), d(2012, 7, 4), &b(&[2]));
        };
        let feed_rest = |m: &mut StabilityMonitor| -> Vec<WindowClosed> {
            let mut out = Vec::new();
            out.extend(m.ingest(CustomerId::new(1), d(2012, 9, 1), &b(&[1, 2])));
            out.extend(m.ingest(CustomerId::new(2), d(2012, 9, 5), &b(&[9, 10])));
            out.extend(m.flush_until(d(2012, 12, 1)));
            out
        };

        let mut original = monitor();
        feed_first(&mut original);
        let checkpoint = original.snapshot();

        let mut restored = StabilityMonitor::restore(&checkpoint).expect("restores");
        assert_eq!(restored.num_customers(), original.num_customers());
        // Previews agree immediately after restore.
        for c in [CustomerId::new(1), CustomerId::new(2)] {
            let a = original.preview(c).unwrap();
            let b = restored.preview(c).unwrap();
            assert_eq!(a.window, b.window);
            assert!((a.value - b.value).abs() < 1e-12);
        }

        let out_original = feed_rest(&mut original);
        let out_restored = feed_rest(&mut restored);
        assert_eq!(out_original.len(), out_restored.len());
        for (a, b) in out_original.iter().zip(&out_restored) {
            assert_eq!(a.customer, b.customer);
            assert_eq!(a.point.window, b.point.window);
            assert!((a.point.value - b.point.value).abs() < 1e-12);
            assert_eq!(a.explanation.lost.len(), b.explanation.lost.len());
            for (la, lb) in a.explanation.lost.iter().zip(&b.explanation.lost) {
                assert_eq!(la.item, lb.item);
                assert!((la.significance - lb.significance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(StabilityMonitor::restore("").is_err());
        assert!(StabilityMonitor::restore("not,a,checkpoint\n").is_err());
        assert!(StabilityMonitor::restore("#monitor,0,x9,2,5\n").is_err());
        assert!(StabilityMonitor::restore("#monitor,0,m1,0.5,5\n").is_err());
        // Item row before its customer row.
        let bad = "#monitor,15461,m1,2,5\ni,1,3,2\n";
        assert!(StabilityMonitor::restore(bad).is_err());
    }

    #[test]
    fn restore_errors_name_line_and_field() {
        let e = StabilityMonitor::restore("").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("line 1"));

        let e = StabilityMonitor::restore("#monitor,0,x9,2,5\n").unwrap_err();
        assert_eq!((e.line, e.field), (1, Some("length")));

        let e = StabilityMonitor::restore("#monitor,0,m1,0.5,5\n").unwrap_err();
        assert_eq!((e.line, e.field), (1, Some("alpha")));

        // Bad count on the third line (header + customer row + item row).
        let bad = "#monitor,15461,m1,2,5\nc,1,0,0\ni,1,3,oops\n";
        let e = StabilityMonitor::restore(bad).unwrap_err();
        assert_eq!((e.line, e.field), (3, Some("count")));
        assert!(e.to_string().contains("field `count`"), "{e}");

        let bad = "#monitor,15461,m1,2,5\nq,1,3,2\n";
        let e = StabilityMonitor::restore(bad).unwrap_err();
        assert_eq!((e.line, e.field), (2, Some("kind")));
    }

    #[test]
    fn partition_routes_every_customer_and_preserves_state() {
        let mut m = monitor();
        for raw in 0..10u64 {
            m.ingest(CustomerId::new(raw), d(2012, 5, 2), &b(&[1, 2]));
            m.ingest(CustomerId::new(raw), d(2012, 6, 3), &b(&[1]));
        }
        let previews: Vec<_> = (0..10)
            .map(|raw| m.preview(CustomerId::new(raw)).unwrap())
            .collect();
        let parts = m.partition(3, |c| (c.raw() % 3) as usize);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.num_customers()).sum::<usize>(), 10);
        for raw in 0..10u64 {
            let c = CustomerId::new(raw);
            let shard = &parts[(raw % 3) as usize];
            let p = shard.preview(c).unwrap();
            assert_eq!(p.window, previews[raw as usize].window);
            assert!((p.value - previews[raw as usize].value).abs() < 1e-15);
        }
    }

    #[test]
    fn empty_monitor_snapshot_roundtrips() {
        let m = monitor();
        let restored = StabilityMonitor::restore(&m.snapshot()).unwrap();
        assert_eq!(restored.num_customers(), 0);
    }

    /// snapshot → restore → snapshot is textually lossless on random
    /// ingest streams — the graceful-shutdown path of the serving layer
    /// depends on this (a restored server must write the same
    /// checkpoint it was started from if nothing else arrives).
    #[test]
    fn prop_snapshot_restore_snapshot_roundtrip() {
        use attrition_util::check::forall;

        forall(
            48,
            |rng| {
                // A random interleaved receipt stream: per-customer
                // chronological because it is globally date-sorted.
                let n_customers = 1 + rng.usize_below(6);
                let n_receipts = 1 + rng.usize_below(40);
                let mut stream: Vec<(u64, Date, Vec<u32>)> = (0..n_receipts)
                    .map(|_| {
                        let customer = rng.u64_below(n_customers as u64);
                        let date = d(2012, 5, 1).add_months(rng.i64_in(0, 11) as i32)
                            + rng.i64_in(0, 27) as i32;
                        let items: Vec<u32> = (0..rng.usize_below(6))
                            .map(|_| 1 + rng.next_u64() as u32 % 20)
                            .collect();
                        (customer, date, items)
                    })
                    .collect();
                stream.sort_by_key(|&(customer, date, _)| (date, customer));
                stream
            },
            |stream| {
                let mut m = monitor();
                for (customer, date, items) in stream {
                    m.ingest(CustomerId::new(*customer), *date, &b(items));
                }
                let snap1 = m.snapshot();
                let restored = StabilityMonitor::restore(&snap1).expect("snapshot restores");
                let snap2 = restored.snapshot();
                assert_eq!(snap1, snap2, "roundtrip changed the checkpoint");
                assert_eq!(restored.num_customers(), m.num_customers());
            },
        );
    }
}
