//! # attrition-core
//!
//! The paper's contribution: the **customer stability model** for
//! individual-level attrition detection and explanation (Gautrais et al.,
//! EDBT 2016).
//!
//! Definitions (Section 2 of the paper), over a windowed database
//! `D_i^w` with per-window item sets `u_k`:
//!
//! * `c(k)` — number of windows before `k` containing item `p`;
//!   `l(k)` — number of windows before `k` **not** containing `p`.
//! * **Significance** `S(p,k) = α^(c(k)−l(k))` if `c(k) > 0`, else `0`,
//!   with `α > 1`.
//! * **Stability** `Stability_i^k = Σ_{p∈u_k} S(p,k) / Σ_{p∈I} S(p,k)`.
//! * **Explanation** of a drop: `argmax_{p∉u_k} S(p,k)` — the most
//!   significant product missing from window `k` (extended here to the
//!   ranked set of missing products).
//!
//! Implementation note: every window before `k` either contains `p` or
//! not, so `l(k) = k − c(k)` and `S(p,k) = α^(2c(k)−k)` — the incremental
//! [`significance::SignificanceTracker`] therefore stores one counter per
//! item plus the global window count. Because `S` depends on an item only
//! through its count, the tracker additionally maintains a **count
//! histogram** and a lazily-grown α-power table, scoring a window in
//! O(|u_k| + k) — independent of repertoire size — with one canonical
//! (ascending-count) summation order, so scores are bit-identical across
//! the batch engine, the streaming monitor, snapshot restores, and the
//! serve shards (DESIGN.md §9).
//!
//! Modules: [`params`] (α and the threshold β), [`significance`],
//! [`stability`] (per-customer series), [`explanation`] (lost-product
//! ranking + population aggregation), [`classifier`] (the β rule),
//! [`engine`] (parallel batch scoring of a whole
//! [`WindowedDatabase`](attrition_store::WindowedDatabase)), and
//! [`incremental`] (a streaming monitor — the deployment mode a retailer
//! would run in production).

pub mod classifier;
pub mod cohort;
pub mod engine;
pub mod explanation;
pub mod export;
pub mod incremental;
pub mod params;
pub mod recovery;
pub mod significance;
pub mod stability;
pub mod trajectory;
pub mod variants;

pub use classifier::StabilityClassifier;
pub use cohort::{cohort_curves, flag_rate_per_window, CohortPoint};
pub use engine::{StabilityEngine, StabilityMatrix};
pub use explanation::{
    aggregate_explanations, select_top_lost, LostProduct, SegmentDriver, WindowExplanation,
};
pub use export::{explanations_to_csv, matrix_to_csv};
pub use incremental::{RestoreError, StabilityMonitor, WindowClosed, SNAPSHOT_MAGIC};
pub use params::StabilityParams;
pub use recovery::{detect_recoveries, RegainedProduct, WindowRecovery};
pub use significance::SignificanceTracker;
pub use stability::{analyze_customer, stability_series, CustomerAnalysis, StabilityPoint};
pub use trajectory::{faded_items, significance_trajectories, ItemTrajectory};
pub use variants::{stability_series_variant, SignificanceVariant, VariantTracker};
