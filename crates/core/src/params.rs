//! Model parameters.

use std::fmt;

/// Parameters of the stability model.
///
/// * `alpha` — base of the significance exponent `α^(c−l)`. The paper:
///   "The usual expected behavior is to increase the item significance
///   when incrementing c(k). Therefore, we generally fix α > 1", and its
///   experiments use α = 2 (selected by 5-fold cross-validation).
///
/// The window length is not part of this struct — it lives in the
/// [`WindowSpec`](attrition_store::WindowSpec) that produced the windowed
/// database (the paper's chosen value is two months).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityParams {
    /// Significance base, `> 1`.
    pub alpha: f64,
}

impl StabilityParams {
    /// The paper's cross-validated choice: α = 2.
    pub const PAPER: StabilityParams = StabilityParams { alpha: 2.0 };

    /// Construct with validation.
    ///
    /// # Errors
    /// Returns an error when `alpha` is not a finite number `> 1`.
    pub fn new(alpha: f64) -> Result<StabilityParams, InvalidParams> {
        if !alpha.is_finite() || alpha <= 1.0 {
            return Err(InvalidParams { alpha });
        }
        Ok(StabilityParams { alpha })
    }
}

impl Default for StabilityParams {
    fn default() -> StabilityParams {
        StabilityParams::PAPER
    }
}

/// Rejected stability parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidParams {
    /// The offending α.
    pub alpha: f64,
}

impl fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid stability parameters: alpha = {} (must be finite and > 1)",
            self.alpha
        )
    }
}

impl std::error::Error for InvalidParams {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant() {
        assert_eq!(StabilityParams::PAPER.alpha, 2.0);
        assert_eq!(StabilityParams::default(), StabilityParams::PAPER);
    }

    #[test]
    fn validation() {
        assert!(StabilityParams::new(1.5).is_ok());
        assert!(StabilityParams::new(2.0).is_ok());
        assert!(StabilityParams::new(1.0).is_err());
        assert!(StabilityParams::new(0.5).is_err());
        assert!(StabilityParams::new(f64::NAN).is_err());
        assert!(StabilityParams::new(f64::INFINITY).is_err());
    }

    #[test]
    fn error_display() {
        let e = StabilityParams::new(0.0).unwrap_err();
        assert!(e.to_string().contains("alpha = 0"));
    }
}
