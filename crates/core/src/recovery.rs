//! Regained-product detection.
//!
//! The mirror image of the paper's explanation: once a retailer has
//! targeted a customer over a lost product, the question becomes *did
//! the intervention work* — did the product come back, and did stability
//! recover? This module detects, per window, previously significant
//! products that were absent in the immediately preceding window(s) and
//! are present again, together with the stability delta.

use crate::params::StabilityParams;
use crate::significance::SignificanceTracker;
use attrition_store::CustomerWindows;
use attrition_types::{ItemId, WindowIndex};

/// A product that returned after an absence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegainedProduct {
    /// The returning product.
    pub item: ItemId,
    /// Its significance at the window it returned in (computed on the
    /// history *before* that window, i.e. while still absent).
    pub significance: f64,
    /// Consecutive windows it had been absent immediately before
    /// returning (≥ 1).
    pub absence_run: u32,
}

/// Recovery events of one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecovery {
    /// The window the products returned in.
    pub window: WindowIndex,
    /// Returning products, most significant first.
    pub regained: Vec<RegainedProduct>,
    /// Stability in this window minus stability in the previous window
    /// (`NaN` for window 0).
    pub stability_delta: f64,
}

/// Detect recovery events across a customer's windows.
///
/// A product counts as *regained* in window `k` when it is present in
/// `u_k`, was bought at least once before, and was absent in `u_{k−1}`
/// (the run length counts further consecutive absences backwards).
/// Products below `min_significance` at their return are ignored — a
/// returning one-off exploration item is not a recovery signal.
pub fn detect_recoveries(
    windows: &CustomerWindows,
    params: StabilityParams,
    min_significance: f64,
) -> Vec<WindowRecovery> {
    let mut tracker = SignificanceTracker::new(params);
    let mut out = Vec::with_capacity(windows.num_windows());
    // Absence run per item, maintained incrementally.
    let mut absence_run: std::collections::HashMap<ItemId, u32> = std::collections::HashMap::new();
    let mut prev_stability = f64::NAN;
    for (k, u) in windows.baskets.iter().enumerate() {
        let total = tracker.total_significance();
        let present = tracker.present_significance(u);
        let stability = if total > 0.0 { present / total } else { 1.0 };

        let mut regained: Vec<RegainedProduct> = u
            .iter()
            .filter_map(|item| {
                let run = *absence_run.get(&item).unwrap_or(&0);
                if run == 0 {
                    return None;
                }
                let significance = tracker.significance(item);
                (significance >= min_significance).then_some(RegainedProduct {
                    item,
                    significance,
                    absence_run: run,
                })
            })
            .collect();
        regained.sort_by(|a, b| {
            b.significance
                .total_cmp(&a.significance)
                .then(a.item.cmp(&b.item))
        });
        out.push(WindowRecovery {
            window: WindowIndex::new(k as u32),
            regained,
            stability_delta: stability - prev_stability,
        });

        // Update absence runs: reset for present items, increment for
        // tracked absent items.
        for item in u.iter() {
            absence_run.insert(item, 0);
        }
        for (item, run) in absence_run.iter_mut() {
            if !u.contains(*item) {
                *run += 1;
            }
        }
        tracker.observe_window(u);
        prev_stability = stability;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_store::WindowSpec;
    use attrition_types::{Basket, Cents, CustomerId, Date};

    fn windows_of(sets: &[&[u32]]) -> CustomerWindows {
        CustomerWindows {
            customer: CustomerId::new(1),
            baskets: sets.iter().map(|s| Basket::from_raw(s)).collect(),
            trips: vec![1; sets.len()],
            spend: vec![Cents(0); sets.len()],
            last_purchase: vec![None; sets.len()],
            spec: WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 2),
        }
    }

    #[test]
    fn detects_simple_return() {
        // Item 1 bought, absent once, returns.
        let w = windows_of(&[&[1, 2], &[2], &[1, 2]]);
        let recoveries = detect_recoveries(&w, StabilityParams::PAPER, 0.0);
        assert!(recoveries[0].regained.is_empty());
        assert!(recoveries[1].regained.is_empty());
        let r = &recoveries[2].regained;
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].item, ItemId::new(1));
        assert_eq!(r[0].absence_run, 1);
        // Stability recovered: delta positive.
        assert!(recoveries[2].stability_delta > 0.0);
    }

    #[test]
    fn absence_run_counts_consecutive_windows() {
        let w = windows_of(&[&[1], &[], &[], &[], &[1]]);
        let recoveries = detect_recoveries(&w, StabilityParams::PAPER, 0.0);
        let r = &recoveries[4].regained;
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].absence_run, 3);
    }

    #[test]
    fn min_significance_filters_noise() {
        // Item 9 was bought once long ago (significance tiny by return),
        // item 1 is established.
        let w = windows_of(&[&[1, 9], &[1], &[1], &[1], &[1, 9]]);
        let all = detect_recoveries(&w, StabilityParams::PAPER, 0.0);
        assert_eq!(all[4].regained.len(), 1);
        assert_eq!(all[4].regained[0].item, ItemId::new(9));
        // S(9) at k=4 with c=1: 2^(2−4) = 0.25 → filtered at 0.5.
        let filtered = detect_recoveries(&w, StabilityParams::PAPER, 0.5);
        assert!(filtered[4].regained.is_empty());
    }

    #[test]
    fn new_items_are_not_recoveries() {
        let w = windows_of(&[&[1], &[1, 2]]);
        let recoveries = detect_recoveries(&w, StabilityParams::PAPER, 0.0);
        // Item 2 is new in window 1, not regained.
        assert!(recoveries[1].regained.is_empty());
    }

    #[test]
    fn ranking_by_significance() {
        // Items 1 (established) and 9 (seen once) both return at k=4.
        let w = windows_of(&[&[1, 9], &[1], &[1], &[], &[1, 9]]);
        let recoveries = detect_recoveries(&w, StabilityParams::PAPER, 0.0);
        let r = &recoveries[4].regained;
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].item, ItemId::new(1));
        assert!(r[0].significance > r[1].significance);
    }

    #[test]
    fn first_window_delta_nan() {
        let w = windows_of(&[&[1]]);
        let recoveries = detect_recoveries(&w, StabilityParams::PAPER, 0.0);
        assert!(recoveries[0].stability_delta.is_nan());
    }

    #[test]
    fn empty_windows_produce_no_recoveries() {
        let w = windows_of(&[&[], &[], &[]]);
        let recoveries = detect_recoveries(&w, StabilityParams::PAPER, 0.0);
        assert!(recoveries.iter().all(|r| r.regained.is_empty()));
    }
}
