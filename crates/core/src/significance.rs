//! Incremental item-significance tracking.
//!
//! For item `p` at window `k` the paper defines `S(p,k) = α^(c(k)−l(k))`
//! when `c(k) > 0` and `0` otherwise, where `c(k)` / `l(k)` count the
//! windows strictly before `k` that do / do not contain `p`. Since every
//! prior window falls in exactly one of the two groups, `l(k) = k − c(k)`
//! and
//!
//! ```text
//! S(p,k) = α^(2·c(k) − k)        (when c(k) > 0)
//! ```
//!
//! so the tracker stores one occurrence counter per item it has ever seen
//! plus the number of windows observed. Scoring is `O(1)` per item;
//! folding in a new window is `O(|u_k|)`.

use crate::params::StabilityParams;
use attrition_types::{Basket, ItemId};
use std::collections::HashMap;

/// Incremental significance state for one customer.
///
/// Usage per window `k`: first *query* (`significance`,
/// `total_significance`, …) — the answers are with respect to the windows
/// observed so far, i.e. those strictly before `k` — then
/// [`observe_window`](SignificanceTracker::observe_window) with `u_k`.
///
/// ```
/// use attrition_core::{SignificanceTracker, StabilityParams};
/// use attrition_types::{Basket, ItemId};
///
/// let mut tracker = SignificanceTracker::new(StabilityParams::PAPER);
/// tracker.observe_window(&Basket::from_raw(&[1, 2]));
/// tracker.observe_window(&Basket::from_raw(&[1]));
/// // Item 1 in both windows: S = 2^(2-0) = 4; item 2 in one of two: 2^0.
/// assert_eq!(tracker.significance(ItemId::new(1)), 4.0);
/// assert_eq!(tracker.significance(ItemId::new(2)), 1.0);
/// assert_eq!(tracker.total_significance(), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct SignificanceTracker {
    params: StabilityParams,
    /// `c` per item ever seen (items never seen have `c = 0` implicitly).
    counts: HashMap<ItemId, u32>,
    /// Number of windows folded in so far (`k`).
    windows: u32,
}

impl SignificanceTracker {
    /// Fresh tracker (zero windows observed).
    pub fn new(params: StabilityParams) -> SignificanceTracker {
        SignificanceTracker {
            params,
            counts: HashMap::new(),
            windows: 0,
        }
    }

    /// The α parameter in use.
    pub fn params(&self) -> StabilityParams {
        self.params
    }

    /// Number of windows observed so far (`k`).
    pub fn windows_observed(&self) -> u32 {
        self.windows
    }

    /// Number of distinct items ever observed.
    pub fn num_tracked(&self) -> usize {
        self.counts.len()
    }

    /// `c(k)` for an item.
    pub fn occurrences(&self, item: ItemId) -> u32 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// `l(k)` for an item.
    pub fn absences(&self, item: ItemId) -> u32 {
        self.windows - self.occurrences(item)
    }

    /// `S(p, k)` where `k` is the current window count.
    pub fn significance(&self, item: ItemId) -> f64 {
        match self.counts.get(&item) {
            None | Some(0) => 0.0,
            Some(&c) => self.significance_of_count(c),
        }
    }

    #[inline]
    fn significance_of_count(&self, c: u32) -> f64 {
        // exponent = c − l = 2c − k; |exponent| ≤ k ≤ u32::MAX, and f64
        // powi degrades to 0/inf gracefully at the extremes.
        let exponent = 2 * c as i64 - self.windows as i64;
        self.params.alpha.powi(exponent.clamp(-1_000, 1_000) as i32)
    }

    /// `Σ_{p∈I} S(p,k)` — the stability denominator. Items never bought
    /// contribute zero, so the sum ranges over tracked items.
    pub fn total_significance(&self) -> f64 {
        self.counts
            .values()
            .filter(|&&c| c > 0)
            .map(|&c| self.significance_of_count(c))
            .sum()
    }

    /// `Σ_{p∈u} S(p,k)` — the stability numerator for a window whose item
    /// set is `u`. Items of `u` not seen before contribute zero.
    pub fn present_significance(&self, u: &Basket) -> f64 {
        u.iter().map(|item| self.significance(item)).sum()
    }

    /// Iterate over `(item, c, l, S(p,k))` of every tracked item, in
    /// unspecified order.
    pub fn tracked_items(&self) -> impl Iterator<Item = (ItemId, u32, u32, f64)> + '_ {
        self.counts.iter().map(move |(&item, &c)| {
            (
                item,
                c,
                self.windows - c,
                if c > 0 {
                    self.significance_of_count(c)
                } else {
                    0.0
                },
            )
        })
    }

    /// Overwrite `c` for an item directly. Exists for checkpoint
    /// restoration ([`StabilityMonitor::restore`]
    /// (crate::incremental::StabilityMonitor::restore)); normal updates
    /// go through [`observe_window`](SignificanceTracker::observe_window).
    pub fn set_occurrences(&mut self, item: ItemId, c: u32) {
        assert!(
            c <= self.windows,
            "occurrence count {c} exceeds observed windows {}",
            self.windows
        );
        if c == 0 {
            self.counts.remove(&item);
        } else {
            self.counts.insert(item, c);
        }
    }

    /// Fold window `k`'s item set into the counters (advancing `k` to
    /// `k + 1`). Call *after* scoring the window.
    pub fn observe_window(&mut self, u: &Basket) {
        for item in u.iter() {
            *self.counts.entry(item).or_insert(0) += 1;
        }
        self.windows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::check::{forall, gen_vec};
    use attrition_util::Rng;

    fn b(raw: &[u32]) -> Basket {
        Basket::from_raw(raw)
    }

    fn tracker() -> SignificanceTracker {
        SignificanceTracker::new(StabilityParams::PAPER)
    }

    #[test]
    fn fresh_tracker_all_zero() {
        let t = tracker();
        assert_eq!(t.windows_observed(), 0);
        assert_eq!(t.significance(ItemId::new(1)), 0.0);
        assert_eq!(t.total_significance(), 0.0);
        assert_eq!(t.num_tracked(), 0);
    }

    #[test]
    fn single_item_every_window() {
        let mut t = tracker();
        for k in 1..=5u32 {
            t.observe_window(&b(&[7]));
            // After k windows all containing the item: c=k, l=0, S=2^k.
            assert_eq!(t.occurrences(ItemId::new(7)), k);
            assert_eq!(t.absences(ItemId::new(7)), 0);
            assert_eq!(t.significance(ItemId::new(7)), 2f64.powi(k as i32));
        }
    }

    #[test]
    fn absence_decays_significance() {
        let mut t = tracker();
        t.observe_window(&b(&[7])); // c=1, k=1 → S = 2^1
        assert_eq!(t.significance(ItemId::new(7)), 2.0);
        t.observe_window(&b(&[])); // c=1, k=2 → S = 2^0
        assert_eq!(t.significance(ItemId::new(7)), 1.0);
        t.observe_window(&b(&[])); // c=1, k=3 → S = 2^-1
        assert_eq!(t.significance(ItemId::new(7)), 0.5);
    }

    #[test]
    fn unseen_item_zero_even_after_windows() {
        let mut t = tracker();
        t.observe_window(&b(&[1]));
        t.observe_window(&b(&[1]));
        assert_eq!(t.significance(ItemId::new(99)), 0.0);
    }

    #[test]
    fn matches_paper_definition_directly() {
        // Direct check against the c/l definition on a mixed history.
        let history = [
            vec![1u32, 2],
            vec![1],
            vec![2, 3],
            vec![1, 2],
            vec![],
            vec![1],
        ];
        let mut t = tracker();
        for u in &history {
            t.observe_window(&b(u));
        }
        let k = history.len() as i32;
        for item in [1u32, 2, 3, 4] {
            let c = history.iter().filter(|u| u.contains(&item)).count() as i32;
            let l = k - c;
            let expected = if c > 0 { 2f64.powi(c - l) } else { 0.0 };
            assert_eq!(
                t.significance(ItemId::new(item)),
                expected,
                "item {item}: c={c} l={l}"
            );
        }
    }

    #[test]
    fn totals_and_presence() {
        let mut t = tracker();
        t.observe_window(&b(&[1, 2]));
        t.observe_window(&b(&[1]));
        // k=2: S(1)=2^2=4, S(2)=2^0=1.
        assert_eq!(t.total_significance(), 5.0);
        assert_eq!(t.present_significance(&b(&[1])), 4.0);
        assert_eq!(t.present_significance(&b(&[2])), 1.0);
        assert_eq!(t.present_significance(&b(&[1, 2, 99])), 5.0);
        assert_eq!(t.present_significance(&b(&[])), 0.0);
    }

    #[test]
    fn tracked_items_report() {
        let mut t = tracker();
        t.observe_window(&b(&[1, 2]));
        t.observe_window(&b(&[2]));
        let mut rows: Vec<(u32, u32, u32, f64)> = t
            .tracked_items()
            .map(|(i, c, l, s)| (i.raw(), c, l, s))
            .collect();
        rows.sort_by_key(|r| r.0);
        assert_eq!(rows, vec![(1, 1, 1, 1.0), (2, 2, 0, 4.0)]);
    }

    #[test]
    fn long_absence_underflows_to_zero_not_panic() {
        let mut t = tracker();
        t.observe_window(&b(&[5]));
        for _ in 0..5000 {
            t.observe_window(&b(&[]));
        }
        let s = t.significance(ItemId::new(5));
        assert!((0.0..1e-300).contains(&s), "significance {s}");
        assert!(t.total_significance().is_finite());
    }

    #[test]
    fn alpha_parameter_used() {
        let mut t = SignificanceTracker::new(StabilityParams::new(3.0).unwrap());
        t.observe_window(&b(&[1]));
        t.observe_window(&b(&[1]));
        assert_eq!(t.significance(ItemId::new(1)), 9.0);
    }

    fn gen_history(
        rng: &mut Rng,
        item_bound: u64,
        max_items: usize,
        max_len: usize,
    ) -> Vec<Vec<u32>> {
        gen_vec(rng, 1, max_len, |r| {
            gen_vec(r, 0, max_items, |rr| rr.u64_below(item_bound) as u32)
        })
    }

    /// Significance is monotone in c for fixed k: more occurrences ⇒
    /// at least as significant.
    #[test]
    fn monotone_in_occurrences() {
        forall(
            256,
            |rng| gen_history(rng, 6, 3, 11),
            |histories| {
                let mut t = tracker();
                for u in histories {
                    t.observe_window(&b(u));
                }
                let mut rows: Vec<(u32, f64)> = t
                    .tracked_items()
                    .filter(|(_, c, _, _)| *c > 0)
                    .map(|(_, c, _, s)| (c, s))
                    .collect();
                rows.sort_by_key(|r| r.0);
                for pair in rows.windows(2) {
                    assert!(
                        pair[1].1 >= pair[0].1,
                        "c={} S={} vs c={} S={}",
                        pair[0].0,
                        pair[0].1,
                        pair[1].0,
                        pair[1].1
                    );
                }
            },
        );
    }

    /// total == Σ significance over tracked items, and present ≤ total.
    #[test]
    fn totals_consistent() {
        forall(
            256,
            |rng| {
                (
                    gen_history(rng, 8, 4, 9),
                    gen_vec(rng, 0, 4, |r| r.u64_below(8) as u32),
                )
            },
            |(histories, probe)| {
                let mut t = tracker();
                for u in histories {
                    t.observe_window(&b(u));
                }
                let manual: f64 = t.tracked_items().map(|(_, _, _, s)| s).sum();
                assert!((t.total_significance() - manual).abs() < 1e-9);
                let present = t.present_significance(&b(probe));
                assert!(present <= t.total_significance() + 1e-9);
                assert!(present >= 0.0);
            },
        );
    }

    /// The recurrence the paper's S(p,k) = α^(c−l) obeys, checked on
    /// arbitrary histories for an arbitrary probe item:
    ///
    /// 1. S is exactly 0 until the first window containing p;
    /// 2. a window containing p strictly increases S;
    /// 3. a window missing p (after the first purchase) strictly decays
    ///    S but never takes it below 0.
    #[test]
    fn recurrence_follows_purchases() {
        forall(
            512,
            |rng| {
                let probe = rng.u64_below(4) as u32;
                (probe, gen_history(rng, 4, 3, 16))
            },
            |(probe, histories)| {
                let item = ItemId::new(*probe);
                let mut t = tracker();
                let mut seen = false;
                let mut prev = t.significance(item);
                assert_eq!(prev, 0.0, "fresh tracker must score 0");
                for u in histories {
                    let contains = u.contains(probe);
                    t.observe_window(&b(u));
                    let s = t.significance(item);
                    seen |= contains;
                    if !seen {
                        assert_eq!(s, 0.0, "no purchase yet, S must stay 0");
                    } else if contains {
                        assert!(s > prev, "purchase must raise S: {prev} -> {s}");
                    } else {
                        assert!(s >= 0.0, "S must never go negative: {s}");
                        assert!(s < prev, "absence must decay S: {prev} -> {s}");
                    }
                    prev = s;
                }
            },
        );
    }
}
