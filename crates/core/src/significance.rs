//! Incremental item-significance tracking.
//!
//! For item `p` at window `k` the paper defines `S(p,k) = α^(c(k)−l(k))`
//! when `c(k) > 0` and `0` otherwise, where `c(k)` / `l(k)` count the
//! windows strictly before `k` that do / do not contain `p`. Since every
//! prior window falls in exactly one of the two groups, `l(k) = k − c(k)`
//! and
//!
//! ```text
//! S(p,k) = α^(2·c(k) − k)        (when c(k) > 0)
//! ```
//!
//! so the tracker stores one occurrence counter per item it has ever seen
//! plus the number of windows observed. Scoring is `O(1)` per item;
//! folding in a new window is `O(|u_k|)`.
//!
//! # The count-histogram kernel
//!
//! `S(p,k)` depends on `p` only through its occurrence count `c`, so the
//! stability denominator collapses to a sum over *counts* rather than
//! items:
//!
//! ```text
//! Σ_{p∈I} S(p,k) = Σ_{c≥1} hist[c] · α^(2c − k)
//! ```
//!
//! where `hist[c]` is the number of tracked items with exactly `c`
//! occurrences. The tracker maintains that histogram incrementally
//! (`O(|u_k|)` per [`observe_window`](SignificanceTracker::observe_window))
//! and [`total_significance`](SignificanceTracker::total_significance)
//! sums it in **ascending-`c` order** — `O(k)` per window instead of
//! `O(|I|)`, and one *canonical* summation order, so totals are
//! bit-identical across tracker instances, snapshot restores, thread
//! counts, and the batch/streaming/serving paths (a `HashMap`-order sum
//! would differ per instance: Rust randomizes the hash seed).
//!
//! All `α^e` evaluations go through a lazily-grown power table whose
//! entries are produced by `f64::powi`, so a lookup is bit-identical to
//! computing the power directly while the hot loop does no
//! transcendental work. See DESIGN.md §9 ("kernel complexity contract").

use crate::params::StabilityParams;
use attrition_types::{Basket, ItemId};

/// Exponent clamp for `α^(2c−k)`: beyond ±1000 the value has long
/// under-/overflowed for any admissible α, and the clamp bounds the
/// power table.
const MAX_ABS_EXPONENT: u32 = 1_000;

/// Lazily-grown table of `α^e` for `e ∈ [-limit, limit]`.
///
/// Entries are computed with `f64::powi`, so a table lookup returns the
/// exact bits a direct `powi` call would — growing the table never
/// changes any score, it only removes the per-evaluation cost.
#[derive(Debug, Clone)]
struct PowerTable {
    alpha: f64,
    /// `pos[i] = α^i`.
    pos: Vec<f64>,
    /// `neg[i] = α^(−i)`.
    neg: Vec<f64>,
}

impl PowerTable {
    fn new(alpha: f64) -> PowerTable {
        PowerTable {
            alpha,
            pos: vec![1.0],
            neg: vec![1.0],
        }
    }

    /// Grow to cover every exponent of magnitude ≤ `magnitude` (clamped
    /// to [`MAX_ABS_EXPONENT`]). Amortized O(1) per window: called once
    /// per observed window with the window count.
    fn ensure(&mut self, magnitude: u32) {
        let m = magnitude.min(MAX_ABS_EXPONENT) as usize;
        while self.pos.len() <= m {
            self.pos.push(self.alpha.powi(self.pos.len() as i32));
        }
        while self.neg.len() <= m {
            self.neg.push(self.alpha.powi(-(self.neg.len() as i32)));
        }
    }

    /// `α^exponent`, clamped to the covered range. The caller guarantees
    /// (by construction: `|2c − k| ≤ k` and `ensure(k)` ran) that any
    /// in-range exponent is covered.
    #[inline]
    fn get(&self, exponent: i64) -> f64 {
        let e = exponent.clamp(-(MAX_ABS_EXPONENT as i64), MAX_ABS_EXPONENT as i64);
        if e >= 0 {
            self.pos[e as usize]
        } else {
            self.neg[-e as usize]
        }
    }
}

/// Incremental significance state for one customer.
///
/// Usage per window `k`: first *query* (`significance`,
/// `total_significance`, …) — the answers are with respect to the windows
/// observed so far, i.e. those strictly before `k` — then
/// [`observe_window`](SignificanceTracker::observe_window) with `u_k`.
///
/// ```
/// use attrition_core::{SignificanceTracker, StabilityParams};
/// use attrition_types::{Basket, ItemId};
///
/// let mut tracker = SignificanceTracker::new(StabilityParams::PAPER);
/// tracker.observe_window(&Basket::from_raw(&[1, 2]));
/// tracker.observe_window(&Basket::from_raw(&[1]));
/// // Item 1 in both windows: S = 2^(2-0) = 4; item 2 in one of two: 2^0.
/// assert_eq!(tracker.significance(ItemId::new(1)), 4.0);
/// assert_eq!(tracker.significance(ItemId::new(2)), 1.0);
/// assert_eq!(tracker.total_significance(), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct SignificanceTracker {
    params: StabilityParams,
    /// Tracked item ids, strictly ascending. Parallel to `counts`: the
    /// tracker is two flat sorted columns rather than a hash map, so a
    /// million resident customers cost two tight `Vec`s each (~12 bytes
    /// per tracked item) instead of a `HashMap`'s control bytes, padded
    /// buckets, and load-factor slack. Lookups are binary searches;
    /// folding a window is a two-pointer merge (baskets are sorted).
    items: Vec<ItemId>,
    /// `c` per tracked item (always ≥ 1), parallel to `items`.
    counts: Vec<u32>,
    /// Number of windows folded in so far (`k`).
    windows: u32,
    /// `hist[c]` = number of tracked items with exactly `c` occurrences
    /// (`c ≥ 1`; index 0 is unused and stays 0). Trailing zero buckets
    /// are trimmed, so `hist.len() − 1` is the largest live count.
    hist: Vec<u32>,
    /// `α^e` lookups for the hot loop; covers `±min(windows, 1000)`.
    powers: PowerTable,
}

impl SignificanceTracker {
    /// Fresh tracker (zero windows observed).
    pub fn new(params: StabilityParams) -> SignificanceTracker {
        SignificanceTracker {
            params,
            items: Vec::new(),
            counts: Vec::new(),
            windows: 0,
            hist: Vec::new(),
            powers: PowerTable::new(params.alpha),
        }
    }

    /// Rebuild a tracker directly from its sufficient statistics: the
    /// window count plus sorted `(item, count)` columns. This is the
    /// checkpoint-restore fast path — it validates the invariants the
    /// incremental path maintains by construction and builds the count
    /// histogram in one pass, instead of replaying windows.
    ///
    /// Errors (by message) when `items` is not strictly ascending, the
    /// columns differ in length, or any count is outside `1..=windows`.
    pub(crate) fn from_parts(
        params: StabilityParams,
        windows: u32,
        items: Vec<ItemId>,
        counts: Vec<u32>,
    ) -> Result<SignificanceTracker, String> {
        if items.len() != counts.len() {
            return Err(format!(
                "item column has {} entries but count column has {}",
                items.len(),
                counts.len()
            ));
        }
        let mut hist: Vec<u32> = Vec::new();
        for (i, (&item, &c)) in items.iter().zip(&counts).enumerate() {
            if i > 0 && items[i - 1] >= item {
                return Err(format!("item ids not strictly ascending at {item}"));
            }
            if c == 0 || c > windows {
                return Err(format!(
                    "occurrence count {c} for {item} outside 1..={windows}"
                ));
            }
            if hist.len() <= c as usize {
                hist.resize(c as usize + 1, 0);
            }
            hist[c as usize] += 1;
        }
        let mut powers = PowerTable::new(params.alpha);
        powers.ensure(windows);
        Ok(SignificanceTracker {
            params,
            items,
            counts,
            windows,
            hist,
            powers,
        })
    }

    /// Heap bytes held by this tracker (capacity, not length — what the
    /// allocator actually charges). Used by the capacity bench.
    pub fn heap_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<ItemId>()
            + self.counts.capacity() * std::mem::size_of::<u32>()
            + self.hist.capacity() * std::mem::size_of::<u32>()
            + (self.powers.pos.capacity() + self.powers.neg.capacity()) * std::mem::size_of::<f64>()
    }

    /// The α parameter in use.
    pub fn params(&self) -> StabilityParams {
        self.params
    }

    /// Number of windows observed so far (`k`).
    pub fn windows_observed(&self) -> u32 {
        self.windows
    }

    /// Number of distinct items ever observed.
    pub fn num_tracked(&self) -> usize {
        self.items.len()
    }

    /// `c(k)` for an item.
    pub fn occurrences(&self, item: ItemId) -> u32 {
        match self.items.binary_search(&item) {
            Ok(i) => self.counts[i],
            Err(_) => 0,
        }
    }

    /// `l(k)` for an item.
    pub fn absences(&self, item: ItemId) -> u32 {
        self.windows - self.occurrences(item)
    }

    /// `S(p, k)` where `k` is the current window count.
    pub fn significance(&self, item: ItemId) -> f64 {
        self.significance_of_count(self.occurrences(item))
    }

    /// `S` of any item with occurrence count `c` at the current window
    /// count: `α^(2c − k)` for `c > 0`, else 0. A power-table lookup —
    /// bit-identical to `alpha.powi((2c − k).clamp(-1000, 1000))`.
    #[inline]
    pub fn significance_of_count(&self, c: u32) -> f64 {
        if c == 0 {
            return 0.0;
        }
        // exponent = c − l = 2c − k; |exponent| ≤ k, which the power
        // table covers (grown once per observed window).
        self.powers.get(2 * c as i64 - self.windows as i64)
    }

    /// `Σ_{p∈I} S(p,k)` — the stability denominator. Items never bought
    /// contribute zero, so the sum ranges over tracked items.
    ///
    /// Computed from the count histogram as `Σ_{c≥1} hist[c]·α^(2c−k)`
    /// in ascending-`c` order: `O(k)` regardless of repertoire size, and
    /// the summation order is canonical, so the result is bit-identical
    /// across tracker instances holding the same state (independent
    /// builds, snapshot restores, any thread count).
    pub fn total_significance(&self) -> f64 {
        let k = self.windows as i64;
        let mut total = 0.0;
        for (c, &n) in self.hist.iter().enumerate().skip(1) {
            if n > 0 {
                total += n as f64 * self.powers.get(2 * c as i64 - k);
            }
        }
        total
    }

    /// Reference implementation of
    /// [`total_significance`](SignificanceTracker::total_significance):
    /// per-item `powi` recomputation in item order — the pre-histogram
    /// kernel, `O(|I|)` with a `powi` per item. Kept only as the
    /// baseline for the tracked kernel benchmark (`kernel_bench`) and
    /// the equivalence property tests; no production path calls it.
    pub fn total_significance_naive(&self) -> f64 {
        self.counts
            .iter()
            .map(|&c| {
                let exponent = 2 * c as i64 - self.windows as i64;
                self.params.alpha.powi(
                    exponent.clamp(-(MAX_ABS_EXPONENT as i64), MAX_ABS_EXPONENT as i64) as i32,
                )
            })
            .sum()
    }

    /// The count histogram: `hist[c]` = number of tracked items with
    /// exactly `c` occurrences (index 0 unused). Invariants (asserted by
    /// property tests): `Σ_{c≥1} hist[c] == num_tracked()`, the
    /// histogram matches the per-item counts, and trailing buckets are
    /// nonzero (the slice is trimmed).
    pub fn count_histogram(&self) -> &[u32] {
        &self.hist
    }

    /// `Σ_{p∈u} S(p,k)` — the stability numerator for a window whose item
    /// set is `u`. Items of `u` not seen before contribute zero.
    pub fn present_significance(&self, u: &Basket) -> f64 {
        u.iter().map(|item| self.significance(item)).sum()
    }

    /// Iterate over `(item, c, l, S(p,k))` of every tracked item, in
    /// ascending item-id order.
    pub fn tracked_items(&self) -> impl Iterator<Item = (ItemId, u32, u32, f64)> + '_ {
        self.items
            .iter()
            .zip(&self.counts)
            .map(move |(&item, &c)| (item, c, self.windows - c, self.significance_of_count(c)))
    }

    /// Overwrite `c` for an item directly. Exists for checkpoint
    /// restoration ([`StabilityMonitor::restore`]
    /// (crate::incremental::StabilityMonitor::restore)); normal updates
    /// go through [`observe_window`](SignificanceTracker::observe_window).
    pub fn set_occurrences(&mut self, item: ItemId, c: u32) {
        assert!(
            c <= self.windows,
            "occurrence count {c} exceeds observed windows {}",
            self.windows
        );
        let old = match self.items.binary_search(&item) {
            Ok(i) => {
                let old = self.counts[i];
                if c == 0 {
                    self.items.remove(i);
                    self.counts.remove(i);
                } else {
                    self.counts[i] = c;
                }
                old
            }
            Err(i) => {
                if c > 0 {
                    self.items.insert(i, item);
                    self.counts.insert(i, c);
                }
                0
            }
        };
        if old != c {
            self.hist_remove(old);
            self.hist_insert(c);
        }
    }

    /// Fold window `k`'s item set into the counters (advancing `k` to
    /// `k + 1`). Call *after* scoring the window. `O(|u_k| + |I|)` worst
    /// case, but a window that introduces no new items — the steady
    /// state of a repeat shopper — is a pure in-place two-pointer sweep
    /// with no allocation or element movement. Baskets are sorted and
    /// deduplicated by construction, which is what makes the merge
    /// linear. The power table grows to cover the new window count
    /// (amortized O(1)).
    pub fn observe_window(&mut self, u: &Basket) {
        let incoming = u.items();
        // Count basket items not yet tracked with one forward sweep.
        let mut missing = 0usize;
        {
            let mut i = 0;
            for &item in incoming {
                while i < self.items.len() && self.items[i] < item {
                    i += 1;
                }
                if i < self.items.len() && self.items[i] == item {
                    i += 1;
                } else {
                    missing += 1;
                }
            }
        }
        if missing == 0 {
            // Every basket item is already tracked: bump counts in place.
            let mut i = 0;
            for &item in incoming {
                while self.items[i] < item {
                    i += 1;
                }
                let old = self.counts[i];
                self.counts[i] = old + 1;
                self.hist_remove(old);
                self.hist_insert(old + 1);
                i += 1;
            }
        } else {
            // Merge from the back so existing entries shift at most once.
            let old_len = self.items.len();
            self.items.resize(old_len + missing, ItemId::new(0));
            self.counts.resize(old_len + missing, 0);
            let mut w = old_len + missing;
            let mut r = old_len;
            let mut b = incoming.len();
            while b > 0 {
                let item = incoming[b - 1];
                while r > 0 && self.items[r - 1] > item {
                    w -= 1;
                    self.items[w] = self.items[r - 1];
                    self.counts[w] = self.counts[r - 1];
                    r -= 1;
                }
                w -= 1;
                if r > 0 && self.items[r - 1] == item {
                    let old = self.counts[r - 1];
                    self.items[w] = item;
                    self.counts[w] = old + 1;
                    self.hist_remove(old);
                    self.hist_insert(old + 1);
                    r -= 1;
                } else {
                    self.items[w] = item;
                    self.counts[w] = 1;
                    self.hist_insert(1);
                }
                b -= 1;
            }
            debug_assert_eq!(w, r, "merge must consume exactly the gap");
        }
        self.windows += 1;
        self.powers.ensure(self.windows);
    }

    /// Drop one item from bucket `c` (no-op for `c == 0`).
    #[inline]
    fn hist_remove(&mut self, c: u32) {
        if c > 0 {
            self.hist[c as usize] -= 1;
            while self.hist.last() == Some(&0) {
                self.hist.pop();
            }
        }
    }

    /// Add one item to bucket `c` (no-op for `c == 0`).
    #[inline]
    fn hist_insert(&mut self, c: u32) {
        if c > 0 {
            let c = c as usize;
            if self.hist.len() <= c {
                self.hist.resize(c + 1, 0);
            }
            self.hist[c] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::check::{forall, gen_vec};
    use attrition_util::Rng;

    fn b(raw: &[u32]) -> Basket {
        Basket::from_raw(raw)
    }

    fn tracker() -> SignificanceTracker {
        SignificanceTracker::new(StabilityParams::PAPER)
    }

    #[test]
    fn fresh_tracker_all_zero() {
        let t = tracker();
        assert_eq!(t.windows_observed(), 0);
        assert_eq!(t.significance(ItemId::new(1)), 0.0);
        assert_eq!(t.total_significance(), 0.0);
        assert_eq!(t.num_tracked(), 0);
    }

    #[test]
    fn single_item_every_window() {
        let mut t = tracker();
        for k in 1..=5u32 {
            t.observe_window(&b(&[7]));
            // After k windows all containing the item: c=k, l=0, S=2^k.
            assert_eq!(t.occurrences(ItemId::new(7)), k);
            assert_eq!(t.absences(ItemId::new(7)), 0);
            assert_eq!(t.significance(ItemId::new(7)), 2f64.powi(k as i32));
        }
    }

    #[test]
    fn absence_decays_significance() {
        let mut t = tracker();
        t.observe_window(&b(&[7])); // c=1, k=1 → S = 2^1
        assert_eq!(t.significance(ItemId::new(7)), 2.0);
        t.observe_window(&b(&[])); // c=1, k=2 → S = 2^0
        assert_eq!(t.significance(ItemId::new(7)), 1.0);
        t.observe_window(&b(&[])); // c=1, k=3 → S = 2^-1
        assert_eq!(t.significance(ItemId::new(7)), 0.5);
    }

    #[test]
    fn unseen_item_zero_even_after_windows() {
        let mut t = tracker();
        t.observe_window(&b(&[1]));
        t.observe_window(&b(&[1]));
        assert_eq!(t.significance(ItemId::new(99)), 0.0);
    }

    #[test]
    fn matches_paper_definition_directly() {
        // Direct check against the c/l definition on a mixed history.
        let history = [
            vec![1u32, 2],
            vec![1],
            vec![2, 3],
            vec![1, 2],
            vec![],
            vec![1],
        ];
        let mut t = tracker();
        for u in &history {
            t.observe_window(&b(u));
        }
        let k = history.len() as i32;
        for item in [1u32, 2, 3, 4] {
            let c = history.iter().filter(|u| u.contains(&item)).count() as i32;
            let l = k - c;
            let expected = if c > 0 { 2f64.powi(c - l) } else { 0.0 };
            assert_eq!(
                t.significance(ItemId::new(item)),
                expected,
                "item {item}: c={c} l={l}"
            );
        }
    }

    #[test]
    fn totals_and_presence() {
        let mut t = tracker();
        t.observe_window(&b(&[1, 2]));
        t.observe_window(&b(&[1]));
        // k=2: S(1)=2^2=4, S(2)=2^0=1.
        assert_eq!(t.total_significance(), 5.0);
        assert_eq!(t.present_significance(&b(&[1])), 4.0);
        assert_eq!(t.present_significance(&b(&[2])), 1.0);
        assert_eq!(t.present_significance(&b(&[1, 2, 99])), 5.0);
        assert_eq!(t.present_significance(&b(&[])), 0.0);
    }

    #[test]
    fn tracked_items_report() {
        let mut t = tracker();
        t.observe_window(&b(&[1, 2]));
        t.observe_window(&b(&[2]));
        let mut rows: Vec<(u32, u32, u32, f64)> = t
            .tracked_items()
            .map(|(i, c, l, s)| (i.raw(), c, l, s))
            .collect();
        rows.sort_by_key(|r| r.0);
        assert_eq!(rows, vec![(1, 1, 1, 1.0), (2, 2, 0, 4.0)]);
    }

    #[test]
    fn long_absence_underflows_to_zero_not_panic() {
        let mut t = tracker();
        t.observe_window(&b(&[5]));
        for _ in 0..5000 {
            t.observe_window(&b(&[]));
        }
        let s = t.significance(ItemId::new(5));
        assert!((0.0..1e-300).contains(&s), "significance {s}");
        assert!(t.total_significance().is_finite());
    }

    #[test]
    fn alpha_parameter_used() {
        let mut t = SignificanceTracker::new(StabilityParams::new(3.0).unwrap());
        t.observe_window(&b(&[1]));
        t.observe_window(&b(&[1]));
        assert_eq!(t.significance(ItemId::new(1)), 9.0);
    }

    fn gen_history(
        rng: &mut Rng,
        item_bound: u64,
        max_items: usize,
        max_len: usize,
    ) -> Vec<Vec<u32>> {
        gen_vec(rng, 1, max_len, |r| {
            gen_vec(r, 0, max_items, |rr| rr.u64_below(item_bound) as u32)
        })
    }

    /// Significance is monotone in c for fixed k: more occurrences ⇒
    /// at least as significant.
    #[test]
    fn monotone_in_occurrences() {
        forall(
            256,
            |rng| gen_history(rng, 6, 3, 11),
            |histories| {
                let mut t = tracker();
                for u in histories {
                    t.observe_window(&b(u));
                }
                let mut rows: Vec<(u32, f64)> = t
                    .tracked_items()
                    .filter(|(_, c, _, _)| *c > 0)
                    .map(|(_, c, _, s)| (c, s))
                    .collect();
                rows.sort_by_key(|r| r.0);
                for pair in rows.windows(2) {
                    assert!(
                        pair[1].1 >= pair[0].1,
                        "c={} S={} vs c={} S={}",
                        pair[0].0,
                        pair[0].1,
                        pair[1].0,
                        pair[1].1
                    );
                }
            },
        );
    }

    /// total == Σ significance over tracked items, and present ≤ total.
    #[test]
    fn totals_consistent() {
        forall(
            256,
            |rng| {
                (
                    gen_history(rng, 8, 4, 9),
                    gen_vec(rng, 0, 4, |r| r.u64_below(8) as u32),
                )
            },
            |(histories, probe)| {
                let mut t = tracker();
                for u in histories {
                    t.observe_window(&b(u));
                }
                let manual: f64 = t.tracked_items().map(|(_, _, _, s)| s).sum();
                assert!((t.total_significance() - manual).abs() < 1e-9);
                let present = t.present_significance(&b(probe));
                assert!(present <= t.total_significance() + 1e-9);
                assert!(present >= 0.0);
            },
        );
    }

    /// Histogram invariants on arbitrary histories (including direct
    /// `set_occurrences` edits, the restore path): `Σ_{c≥1} hist[c]`
    /// equals the tracked-item count, the histogram matches the
    /// per-item counts, and trailing buckets are trimmed.
    #[test]
    fn histogram_consistent_with_counts() {
        forall(
            256,
            |rng| {
                let history = gen_history(rng, 10, 5, 12);
                // Optional post-hoc edits exercising set_occurrences.
                let edits = gen_vec(rng, 0, 4, |r| {
                    (r.u64_below(10) as u32, r.u64_below(4) as u32)
                });
                (history, edits)
            },
            |(history, edits)| {
                let mut t = tracker();
                for u in history {
                    t.observe_window(&b(u));
                }
                for &(item, c) in edits {
                    let c = c.min(t.windows_observed());
                    t.set_occurrences(ItemId::new(item), c);
                }
                let hist = t.count_histogram();
                // Rebuild the histogram from the per-item counts.
                let mut expected = vec![0u32; hist.len()];
                for (_, c, _, _) in t.tracked_items() {
                    assert!(c >= 1, "tracked items always have c ≥ 1");
                    assert!(
                        (c as usize) < expected.len(),
                        "count {c} outside histogram of length {}",
                        hist.len()
                    );
                    expected[c as usize] += 1;
                }
                assert_eq!(hist, expected, "histogram diverged from counts");
                assert_eq!(
                    hist.iter().skip(1).map(|&n| n as u64).sum::<u64>(),
                    t.num_tracked() as u64,
                    "Σ hist[c] must equal num_tracked"
                );
                if let Some(last) = hist.last() {
                    assert!(*last > 0, "trailing zero bucket not trimmed");
                }
            },
        );
    }

    /// The histogram total is bit-identical (0 ULP) to the naive
    /// per-item sum when both group items by count and sum in
    /// ascending-`c` order, and agrees with the hash-map-order naive
    /// sum within floating-point tolerance.
    #[test]
    fn histogram_total_matches_naive_ascending_sum() {
        forall(
            256,
            |rng| gen_history(rng, 12, 6, 14),
            |history| {
                let mut t = tracker();
                for u in history {
                    t.observe_window(&b(u));

                    // Naive ascending-c reference, rebuilt from the
                    // per-item counts each window.
                    let mut counts: Vec<u32> = t.tracked_items().map(|(_, c, _, _)| c).collect();
                    counts.sort_unstable();
                    let mut naive = 0.0f64;
                    let mut i = 0;
                    while i < counts.len() {
                        let c = counts[i];
                        let run = counts[i..].iter().take_while(|&&x| x == c).count();
                        naive += run as f64 * t.significance_of_count(c);
                        i += run;
                    }
                    assert_eq!(
                        t.total_significance().to_bits(),
                        naive.to_bits(),
                        "ascending-c sums must be bit-identical: {} vs {naive}",
                        t.total_significance()
                    );
                    // Hash-map order (the old kernel) agrees within ULPs.
                    assert!(
                        (t.total_significance() - t.total_significance_naive()).abs()
                            <= 1e-9 * t.total_significance().max(1.0),
                        "histogram {} vs naive {}",
                        t.total_significance(),
                        t.total_significance_naive()
                    );
                }
            },
        );
    }

    /// Two independently-built trackers (distinct hash seeds) fed the
    /// same history produce bit-identical totals at every window — the
    /// determinism the histogram's canonical order buys.
    #[test]
    fn independently_built_trackers_bit_identical() {
        forall(
            128,
            |rng| gen_history(rng, 10, 5, 12),
            |history| {
                let mut a = tracker();
                let mut b_ = tracker();
                for u in history {
                    assert_eq!(
                        a.total_significance().to_bits(),
                        b_.total_significance().to_bits()
                    );
                    a.observe_window(&b(u));
                    b_.observe_window(&b(u));
                }
                assert_eq!(
                    a.total_significance().to_bits(),
                    b_.total_significance().to_bits()
                );
            },
        );
    }

    /// Table-backed significance matches a direct `powi` computation
    /// bit-for-bit, for arbitrary (valid) α.
    #[test]
    fn power_table_matches_powi() {
        forall(
            128,
            |rng| (rng.f64_in(1.01, 8.0), gen_history(rng, 6, 3, 10)),
            |(alpha, history)| {
                let mut t = SignificanceTracker::new(StabilityParams::new(*alpha).unwrap());
                for u in history {
                    t.observe_window(&b(u));
                }
                let k = t.windows_observed() as i64;
                for (_, c, _, s) in t.tracked_items() {
                    let e = (2 * c as i64 - k).clamp(-1_000, 1_000) as i32;
                    assert_eq!(
                        s.to_bits(),
                        alpha.powi(e).to_bits(),
                        "α={alpha} c={c} k={k}"
                    );
                }
            },
        );
    }

    #[test]
    fn set_occurrences_maintains_histogram() {
        let mut t = tracker();
        t.observe_window(&b(&[1, 2, 3]));
        t.observe_window(&b(&[1, 2]));
        t.observe_window(&b(&[1]));
        assert_eq!(t.count_histogram(), &[0, 1, 1, 1]);
        // Restore-style overwrite: drop item 1 to two occurrences.
        t.set_occurrences(ItemId::new(1), 2);
        assert_eq!(t.count_histogram(), &[0, 1, 2]);
        // Remove item 3 entirely; trailing buckets stay trimmed.
        t.set_occurrences(ItemId::new(3), 0);
        assert_eq!(t.count_histogram(), &[0, 0, 2]);
        assert_eq!(t.num_tracked(), 2);
        // Overwriting with the same value is a no-op.
        t.set_occurrences(ItemId::new(2), 2);
        assert_eq!(t.count_histogram(), &[0, 0, 2]);
    }

    /// The recurrence the paper's S(p,k) = α^(c−l) obeys, checked on
    /// arbitrary histories for an arbitrary probe item:
    ///
    /// 1. S is exactly 0 until the first window containing p;
    /// 2. a window containing p strictly increases S;
    /// 3. a window missing p (after the first purchase) strictly decays
    ///    S but never takes it below 0.
    #[test]
    fn recurrence_follows_purchases() {
        forall(
            512,
            |rng| {
                let probe = rng.u64_below(4) as u32;
                (probe, gen_history(rng, 4, 3, 16))
            },
            |(probe, histories)| {
                let item = ItemId::new(*probe);
                let mut t = tracker();
                let mut seen = false;
                let mut prev = t.significance(item);
                assert_eq!(prev, 0.0, "fresh tracker must score 0");
                for u in histories {
                    let contains = u.contains(probe);
                    t.observe_window(&b(u));
                    let s = t.significance(item);
                    seen |= contains;
                    if !seen {
                        assert_eq!(s, 0.0, "no purchase yet, S must stay 0");
                    } else if contains {
                        assert!(s > prev, "purchase must raise S: {prev} -> {s}");
                    } else {
                        assert!(s >= 0.0, "S must never go negative: {s}");
                        assert!(s < prev, "absence must decay S: {prev} -> {s}");
                    }
                    prev = s;
                }
            },
        );
    }
}
