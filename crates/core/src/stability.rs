//! Per-customer stability series.
//!
//! `Stability_i^k = Σ_{p∈u_k} S(p,k) / Σ_{p∈I} S(p,k)`: the
//! significance-weighted fraction of the customer's established
//! repertoire still present in window `k`. "If all products are
//! contained in window k, the stability of the customer is equal to 1 …
//! The more significant a product is, the more the stability will
//! decrease if this product is not present."
//!
//! Edge convention (documented in DESIGN.md): at `k = 0` there is no
//! history, every `S(p,0) = 0` and the ratio is 0/0; we define the
//! stability as **1.0** — a customer with no history has not deviated
//! from anything. The same convention applies to any later window whose
//! denominator is zero (possible only if the customer has never bought
//! anything yet).

use crate::explanation::{LostProduct, WindowExplanation};
use crate::params::StabilityParams;
use crate::significance::SignificanceTracker;
use attrition_store::CustomerWindows;
use attrition_types::WindowIndex;

/// The stability value of one window, with its decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityPoint {
    /// The window (`k`).
    pub window: WindowIndex,
    /// `Stability_i^k ∈ [0, 1]`.
    pub value: f64,
    /// Numerator `Σ_{p∈u_k} S(p,k)`.
    pub present_significance: f64,
    /// Denominator `Σ_{p∈I} S(p,k)`.
    pub total_significance: f64,
}

/// Full per-customer analysis: the stability series plus, for every
/// window, the ranked lost-product explanation.
#[derive(Debug, Clone)]
pub struct CustomerAnalysis {
    /// The customer.
    pub customer: attrition_types::CustomerId,
    /// One point per window.
    pub points: Vec<StabilityPoint>,
    /// One explanation per window (same indexing as `points`).
    pub explanations: Vec<WindowExplanation>,
}

impl CustomerAnalysis {
    /// The series values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }
}

fn point_from_tracker(
    tracker: &SignificanceTracker,
    k: WindowIndex,
    u: &attrition_types::Basket,
) -> StabilityPoint {
    let total = tracker.total_significance();
    let present = tracker.present_significance(u);
    let value = if total > 0.0 { present / total } else { 1.0 };
    StabilityPoint {
        window: k,
        value,
        present_significance: present,
        total_significance: total,
    }
}

/// Compute the stability series of one customer's windowed database.
pub fn stability_series(windows: &CustomerWindows, params: StabilityParams) -> Vec<StabilityPoint> {
    let mut tracker = SignificanceTracker::new(params);
    let mut out = Vec::with_capacity(windows.num_windows());
    for (k, u) in windows.baskets.iter().enumerate() {
        out.push(point_from_tracker(&tracker, WindowIndex::new(k as u32), u));
        tracker.observe_window(u);
    }
    out
}

/// Compute the stability series *and* per-window explanations (top
/// `max_products` lost products per window).
pub fn analyze_customer(
    windows: &CustomerWindows,
    params: StabilityParams,
    max_products: usize,
) -> CustomerAnalysis {
    let mut tracker = SignificanceTracker::new(params);
    let mut points = Vec::with_capacity(windows.num_windows());
    let mut explanations = Vec::with_capacity(windows.num_windows());
    for (k, u) in windows.baskets.iter().enumerate() {
        let k = WindowIndex::new(k as u32);
        let point = point_from_tracker(&tracker, k, u);
        // Lost products: tracked, significant, and absent from u_k.
        // Top-K selection instead of sorting the full lost set.
        let lost: Vec<LostProduct> = tracker
            .tracked_items()
            .filter(|(item, c, _, _)| *c > 0 && !u.contains(*item))
            .map(|(item, _, _, s)| LostProduct {
                item,
                significance: s,
                share: if point.total_significance > 0.0 {
                    s / point.total_significance
                } else {
                    0.0
                },
            })
            .collect();
        let lost = crate::explanation::select_top_lost(lost, max_products);
        explanations.push(WindowExplanation { window: k, lost });
        points.push(point);
        tracker.observe_window(u);
    }
    CustomerAnalysis {
        customer: windows.customer,
        points,
        explanations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_store::WindowSpec;
    use attrition_types::{Basket, CustomerId, Date, ItemId};
    use attrition_util::check::{forall, gen_vec};

    /// Build a CustomerWindows directly from item-set literals.
    fn windows_of(sets: &[&[u32]]) -> CustomerWindows {
        let spec = WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 2);
        CustomerWindows {
            customer: CustomerId::new(1),
            baskets: sets.iter().map(|s| Basket::from_raw(s)).collect(),
            trips: vec![1; sets.len()],
            spend: vec![attrition_types::Cents(100); sets.len()],
            last_purchase: vec![None; sets.len()],
            spec,
        }
    }

    #[test]
    fn first_window_is_one() {
        let w = windows_of(&[&[1, 2]]);
        let series = stability_series(&w, StabilityParams::PAPER);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].value, 1.0);
        assert_eq!(series[0].total_significance, 0.0);
    }

    #[test]
    fn perfectly_stable_customer_stays_at_one() {
        let w = windows_of(&[[1, 2, 3].as_slice(); 8]);
        let series = stability_series(&w, StabilityParams::PAPER);
        for p in &series {
            assert_eq!(p.value, 1.0, "window {}", p.window);
        }
    }

    #[test]
    fn paper_worked_example() {
        // Windows: {1,2}, {1,2}, {1} — at k=2: S(1)=2^2=4, S(2)=2^2=4.
        // u_2={1} → stability = 4/8 = 0.5.
        let w = windows_of(&[&[1, 2], &[1, 2], &[1]]);
        let series = stability_series(&w, StabilityParams::PAPER);
        assert_eq!(series[1].value, 1.0);
        assert!((series[2].value - 0.5).abs() < 1e-12);
        assert_eq!(series[2].present_significance, 4.0);
        assert_eq!(series[2].total_significance, 8.0);
    }

    #[test]
    fn more_significant_loss_hurts_more() {
        // Item 1 bought in all 4 prior windows, item 9 in only the last.
        // Losing item 1 must cost more than losing item 9.
        let base: Vec<&[u32]> = vec![&[1], &[1], &[1], &[1, 9]];
        let mut lose_staple = base.clone();
        lose_staple.push(&[9]); // staple 1 missing
        let mut lose_newcomer = base.clone();
        lose_newcomer.push(&[1]); // newcomer 9 missing
        let s_staple = stability_series(&windows_of(&lose_staple), StabilityParams::PAPER);
        let s_newcomer = stability_series(&windows_of(&lose_newcomer), StabilityParams::PAPER);
        let last = 4;
        assert!(
            s_staple[last].value < s_newcomer[last].value,
            "losing the staple ({}) should hurt more than the newcomer ({})",
            s_staple[last].value,
            s_newcomer[last].value
        );
    }

    #[test]
    fn empty_window_scores_zero_once_history_exists() {
        let w = windows_of(&[&[1, 2], &[]]);
        let series = stability_series(&w, StabilityParams::PAPER);
        assert_eq!(series[1].value, 0.0);
        assert!(series[1].total_significance > 0.0);
    }

    #[test]
    fn new_items_do_not_inflate_stability() {
        // Window 2 contains only brand-new items: numerator 0.
        let w = windows_of(&[&[1], &[1], &[50, 51, 52]]);
        let series = stability_series(&w, StabilityParams::PAPER);
        assert_eq!(series[2].value, 0.0);
    }

    #[test]
    fn analysis_explanations_rank_by_significance() {
        // Item 1: 3 prior occurrences; item 2: 2; both missing at k=3.
        let w = windows_of(&[&[1, 2], &[1, 2], &[1], &[]]);
        let analysis = analyze_customer(&w, StabilityParams::PAPER, 10);
        let expl = &analysis.explanations[3];
        assert_eq!(expl.lost.len(), 2);
        assert_eq!(expl.lost[0].item, ItemId::new(1));
        assert_eq!(expl.lost[1].item, ItemId::new(2));
        assert!(expl.lost[0].significance > expl.lost[1].significance);
        // argmax accessor
        assert_eq!(expl.primary().unwrap().item, ItemId::new(1));
        // Shares sum to (total - present)/total here because everything
        // tracked is missing.
        let share_sum: f64 = expl.lost.iter().map(|l| l.share).sum();
        let p = &analysis.points[3];
        let expected = (p.total_significance - p.present_significance) / p.total_significance;
        assert!((share_sum - expected).abs() < 1e-12);
    }

    #[test]
    fn explanations_exclude_present_items() {
        let w = windows_of(&[&[1, 2], &[1, 2], &[1]]);
        let analysis = analyze_customer(&w, StabilityParams::PAPER, 10);
        let expl = &analysis.explanations[2];
        assert_eq!(expl.lost.len(), 1);
        assert_eq!(expl.lost[0].item, ItemId::new(2));
    }

    #[test]
    fn max_products_truncates() {
        let w = windows_of(&[&[1, 2, 3, 4, 5], &[]]);
        let analysis = analyze_customer(&w, StabilityParams::PAPER, 2);
        assert_eq!(analysis.explanations[1].lost.len(), 2);
    }

    #[test]
    fn analysis_points_match_series() {
        let w = windows_of(&[&[1, 2], &[2, 3], &[1], &[], &[3]]);
        let series = stability_series(&w, StabilityParams::PAPER);
        let analysis = analyze_customer(&w, StabilityParams::PAPER, 5);
        assert_eq!(series.len(), analysis.points.len());
        for (a, b) in series.iter().zip(&analysis.points) {
            assert_eq!(a, b);
        }
        assert_eq!(analysis.values().len(), series.len());
    }

    #[test]
    fn stability_recovers_when_item_returns() {
        let w = windows_of(&[&[1], &[1], &[], &[1]]);
        let series = stability_series(&w, StabilityParams::PAPER);
        assert_eq!(series[2].value, 0.0);
        assert_eq!(series[3].value, 1.0); // item returned: all of I present
    }

    /// Stability is always within [0, 1].
    #[test]
    fn bounded() {
        forall(
            256,
            |rng| {
                gen_vec(rng, 1, 15, |r| {
                    gen_vec(r, 0, 5, |rr| rr.u64_below(10) as u32)
                })
            },
            |sets| {
                let refs: Vec<&[u32]> = sets.iter().map(|v| v.as_slice()).collect();
                let w = windows_of(&refs);
                for p in stability_series(&w, StabilityParams::PAPER) {
                    assert!((0.0..=1.0).contains(&p.value), "value {}", p.value);
                    assert!(p.present_significance <= p.total_significance + 1e-9);
                }
            },
        );
    }

    /// Repeating the full repertoire every window keeps stability at 1
    /// regardless of α.
    #[test]
    fn constant_repertoire_invariant() {
        forall(
            128,
            |rng| (rng.f64_in(1.01, 8.0), 1 + rng.usize_below(19)),
            |&(alpha, n)| {
                let w = windows_of(&vec![[3u32, 4, 5].as_slice(); n]);
                let params = StabilityParams::new(alpha).unwrap();
                for p in stability_series(&w, params) {
                    assert!((p.value - 1.0).abs() < 1e-12);
                }
            },
        );
    }
}
