//! Per-item significance trajectories.
//!
//! The stability value compresses a customer's whole repertoire into one
//! number; understanding *which products are becoming (in)significant
//! over time* — the paper's stated future work — needs the underlying
//! per-item series `S(p, 0), S(p, 1), …`. This module extracts them,
//! plus summary descriptors (peak significance, final-to-peak ratio)
//! that characterize a product's life cycle within one customer's
//! repertoire: ramping up, established, or fading out.

use crate::params::StabilityParams;
use crate::significance::SignificanceTracker;
use attrition_store::CustomerWindows;
use attrition_types::ItemId;

/// The significance series of one item across a customer's windows.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemTrajectory {
    /// The item.
    pub item: ItemId,
    /// `S(p, k)` for `k = 0..num_windows` (value *at* window `k`,
    /// computed on the history before it, like the stability series).
    pub series: Vec<f64>,
    /// Maximum significance ever reached.
    pub peak: f64,
    /// Significance at the final window divided by the peak (`1` =
    /// still at full strength, `→ 0` = faded out). `NaN` if peak is 0.
    pub final_to_peak: f64,
}

impl ItemTrajectory {
    /// True if the item faded: peaked at ≥ `min_peak` but retains less
    /// than `fade_ratio` of that peak at the end.
    pub fn is_faded(&self, min_peak: f64, fade_ratio: f64) -> bool {
        self.peak >= min_peak && self.final_to_peak < fade_ratio
    }
}

/// Compute the significance trajectory of every item the customer ever
/// bought (or only `items`, when given), ordered by descending peak.
pub fn significance_trajectories(
    windows: &CustomerWindows,
    params: StabilityParams,
    items: Option<&[ItemId]>,
) -> Vec<ItemTrajectory> {
    let n = windows.num_windows();
    let mut tracker = SignificanceTracker::new(params);
    // Which items to report: requested set, or everything ever bought.
    let targets: Vec<ItemId> = match items {
        Some(list) => list.to_vec(),
        None => windows.vocabulary().items().to_vec(),
    };
    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(n); targets.len()];
    for u in &windows.baskets {
        for (slot, &item) in series.iter_mut().zip(&targets) {
            slot.push(tracker.significance(item));
        }
        tracker.observe_window(u);
    }
    let mut out: Vec<ItemTrajectory> = targets
        .into_iter()
        .zip(series)
        .map(|(item, series)| {
            let peak = series.iter().copied().fold(0.0f64, f64::max);
            let last = series.last().copied().unwrap_or(0.0);
            ItemTrajectory {
                item,
                series,
                peak,
                final_to_peak: if peak > 0.0 { last / peak } else { f64::NAN },
            }
        })
        .collect();
    out.sort_by(|a, b| b.peak.total_cmp(&a.peak).then(a.item.cmp(&b.item)));
    out
}

/// Items that established themselves and then faded — the per-customer
/// "what went missing over time" report (superset of single-window
/// explanations: a product can fade gradually without ever dominating
/// one window's drop).
pub fn faded_items(
    windows: &CustomerWindows,
    params: StabilityParams,
    min_peak: f64,
    fade_ratio: f64,
) -> Vec<ItemTrajectory> {
    significance_trajectories(windows, params, None)
        .into_iter()
        .filter(|t| t.is_faded(min_peak, fade_ratio))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_store::WindowSpec;
    use attrition_types::{Basket, Cents, CustomerId, Date};

    fn windows_of(sets: &[&[u32]]) -> CustomerWindows {
        CustomerWindows {
            customer: CustomerId::new(1),
            baskets: sets.iter().map(|s| Basket::from_raw(s)).collect(),
            trips: vec![1; sets.len()],
            spend: vec![Cents(0); sets.len()],
            last_purchase: vec![None; sets.len()],
            spec: WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 2),
        }
    }

    #[test]
    fn trajectory_matches_manual_series() {
        let w = windows_of(&[&[1], &[1], &[], &[1]]);
        let trajectories =
            significance_trajectories(&w, StabilityParams::PAPER, Some(&[ItemId::new(1)]));
        assert_eq!(trajectories.len(), 1);
        // S at k=0: unseen → 0; k=1: 2^1; k=2: 2^2; k=3: c=2,l=1 → 2^1.
        assert_eq!(trajectories[0].series, vec![0.0, 2.0, 4.0, 2.0]);
        assert_eq!(trajectories[0].peak, 4.0);
        assert!((trajectories[0].final_to_peak - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_items_reported_and_ordered_by_peak() {
        // Item 1 in every window; item 9 once.
        let w = windows_of(&[&[1, 9], &[1], &[1], &[1]]);
        let trajectories = significance_trajectories(&w, StabilityParams::PAPER, None);
        assert_eq!(trajectories.len(), 2);
        assert_eq!(trajectories[0].item, ItemId::new(1));
        assert!(trajectories[0].peak > trajectories[1].peak);
    }

    #[test]
    fn fade_detection() {
        // Item established over 4 windows then gone for 4.
        let w = windows_of(&[&[1], &[1], &[1], &[1], &[], &[], &[], &[]]);
        let faded = faded_items(&w, StabilityParams::PAPER, 4.0, 0.5);
        assert_eq!(faded.len(), 1);
        assert_eq!(faded[0].item, ItemId::new(1));
        // A still-strong item is not faded.
        let strong = windows_of(&[[1].as_slice(); 6]);
        assert!(faded_items(&strong, StabilityParams::PAPER, 4.0, 0.5).is_empty());
    }

    #[test]
    fn never_bought_item_nan_ratio() {
        let w = windows_of(&[&[1]]);
        let t = significance_trajectories(&w, StabilityParams::PAPER, Some(&[ItemId::new(42)]));
        assert_eq!(t[0].peak, 0.0);
        assert!(t[0].final_to_peak.is_nan());
    }

    #[test]
    fn empty_windows_empty_output() {
        let w = windows_of(&[]);
        let t = significance_trajectories(&w, StabilityParams::PAPER, None);
        assert!(t.is_empty());
    }
}
