//! Alternative significance functions (ablation / future-work study).
//!
//! The paper's conclusion announces deepening "the study of the
//! characterization of significant products". This module implements two
//! natural alternatives to the paper's exponential significance
//! `α^(c−l)` and a tracker that scores stability under any of them, so
//! the `ablation_significance` experiment can compare how the *choice of
//! significance function* affects detection:
//!
//! * [`SignificanceVariant::PaperExponential`] — the paper's `α^(c−l)`;
//!   history-length-sensitive and sharply peaked on always-bought items.
//! * [`SignificanceVariant::FrequencyRatio`] — `c/k`, the plain support
//!   of the item across prior windows; bounded, no forgetting beyond the
//!   dilution of the ratio.
//! * [`SignificanceVariant::Ewma`] — an exponentially weighted moving
//!   average of the item's presence indicator with smoothing `lambda`;
//!   recency-weighted, forgetting controlled directly.
//!
//! All variants share the convention `S = 0` until the item has been
//! seen at least once, and stability is the same present/total ratio.

use crate::stability::StabilityPoint;
use attrition_store::CustomerWindows;
use attrition_types::{Basket, ItemId, WindowIndex};
use std::collections::HashMap;

/// Which significance function to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignificanceVariant {
    /// The paper's `α^(c−l)` with base `alpha > 1`.
    PaperExponential {
        /// Significance base.
        alpha: f64,
    },
    /// Support ratio `c(k) / k`.
    FrequencyRatio,
    /// EWMA of the presence indicator with smoothing `lambda ∈ (0, 1]`.
    Ewma {
        /// Per-window smoothing weight.
        lambda: f64,
    },
}

impl SignificanceVariant {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            SignificanceVariant::PaperExponential { alpha } => format!("paper α={alpha}"),
            SignificanceVariant::FrequencyRatio => "frequency c/k".to_owned(),
            SignificanceVariant::Ewma { lambda } => format!("EWMA λ={lambda}"),
        }
    }

    fn validate(&self) {
        match self {
            SignificanceVariant::PaperExponential { alpha } => {
                assert!(alpha.is_finite() && *alpha > 1.0, "alpha must be > 1");
            }
            SignificanceVariant::FrequencyRatio => {}
            SignificanceVariant::Ewma { lambda } => {
                assert!(
                    lambda.is_finite() && *lambda > 0.0 && *lambda <= 1.0,
                    "lambda must be in (0, 1]"
                );
            }
        }
    }
}

/// Per-item state: occurrence count and EWMA value.
#[derive(Debug, Clone, Copy, Default)]
struct ItemState {
    c: u32,
    ewma: f64,
}

/// Incremental tracker generic over the significance variant.
#[derive(Debug, Clone)]
pub struct VariantTracker {
    variant: SignificanceVariant,
    items: HashMap<ItemId, ItemState>,
    windows: u32,
}

impl VariantTracker {
    /// Fresh tracker.
    pub fn new(variant: SignificanceVariant) -> VariantTracker {
        variant.validate();
        VariantTracker {
            variant,
            items: HashMap::new(),
            windows: 0,
        }
    }

    /// `S(p, k)` under the configured variant.
    pub fn significance(&self, item: ItemId) -> f64 {
        let Some(state) = self.items.get(&item) else {
            return 0.0;
        };
        if state.c == 0 {
            return 0.0;
        }
        match self.variant {
            SignificanceVariant::PaperExponential { alpha } => {
                let exponent = 2 * state.c as i64 - self.windows as i64;
                alpha.powi(exponent.clamp(-1_000, 1_000) as i32)
            }
            SignificanceVariant::FrequencyRatio => state.c as f64 / self.windows.max(1) as f64,
            SignificanceVariant::Ewma { .. } => state.ewma,
        }
    }

    /// `Σ_p S(p,k)` over tracked items.
    pub fn total_significance(&self) -> f64 {
        self.items.keys().map(|&item| self.significance(item)).sum()
    }

    /// `Σ_{p∈u} S(p,k)`.
    pub fn present_significance(&self, u: &Basket) -> f64 {
        u.iter().map(|item| self.significance(item)).sum()
    }

    /// Fold in window `k`'s item set (call after scoring).
    pub fn observe_window(&mut self, u: &Basket) {
        let lambda = match self.variant {
            SignificanceVariant::Ewma { lambda } => lambda,
            _ => 0.0,
        };
        // Decay every tracked item, then credit the present ones.
        if lambda > 0.0 {
            for state in self.items.values_mut() {
                state.ewma *= 1.0 - lambda;
            }
        }
        for item in u.iter() {
            let state = self.items.entry(item).or_default();
            state.c += 1;
            if lambda > 0.0 {
                state.ewma += lambda;
            }
        }
        self.windows += 1;
    }
}

/// Stability series of one customer under any significance variant.
///
/// Identical to [`crate::stability::stability_series`] when the variant is
/// [`SignificanceVariant::PaperExponential`] (tested).
pub fn stability_series_variant(
    windows: &CustomerWindows,
    variant: SignificanceVariant,
) -> Vec<StabilityPoint> {
    let mut tracker = VariantTracker::new(variant);
    let mut out = Vec::with_capacity(windows.num_windows());
    for (k, u) in windows.baskets.iter().enumerate() {
        let total = tracker.total_significance();
        let present = tracker.present_significance(u);
        out.push(StabilityPoint {
            window: WindowIndex::new(k as u32),
            value: if total > 0.0 { present / total } else { 1.0 },
            present_significance: present,
            total_significance: total,
        });
        tracker.observe_window(u);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::StabilityParams;
    use crate::stability::stability_series;
    use attrition_store::WindowSpec;
    use attrition_types::{Cents, CustomerId, Date};
    use attrition_util::check::{forall, gen_vec};

    fn windows_of(sets: &[&[u32]]) -> CustomerWindows {
        CustomerWindows {
            customer: CustomerId::new(1),
            baskets: sets.iter().map(|s| Basket::from_raw(s)).collect(),
            trips: vec![1; sets.len()],
            spend: vec![Cents(0); sets.len()],
            last_purchase: vec![None; sets.len()],
            spec: WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 2),
        }
    }

    #[test]
    fn paper_variant_matches_reference_implementation() {
        let w = windows_of(&[&[1, 2], &[1], &[2, 3], &[], &[1, 2, 3], &[2]]);
        let reference = stability_series(&w, StabilityParams::PAPER);
        let variant =
            stability_series_variant(&w, SignificanceVariant::PaperExponential { alpha: 2.0 });
        assert_eq!(reference.len(), variant.len());
        for (a, b) in reference.iter().zip(&variant) {
            assert!(
                (a.value - b.value).abs() < 1e-12,
                "window {}: {} vs {}",
                a.window,
                a.value,
                b.value
            );
        }
    }

    #[test]
    fn frequency_ratio_values() {
        let mut t = VariantTracker::new(SignificanceVariant::FrequencyRatio);
        t.observe_window(&Basket::from_raw(&[1, 2]));
        t.observe_window(&Basket::from_raw(&[1]));
        // k=2: S(1) = 2/2 = 1, S(2) = 1/2.
        assert_eq!(t.significance(ItemId::new(1)), 1.0);
        assert_eq!(t.significance(ItemId::new(2)), 0.5);
        assert_eq!(t.significance(ItemId::new(9)), 0.0);
        assert!((t.total_significance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ewma_decays_and_credits() {
        let mut t = VariantTracker::new(SignificanceVariant::Ewma { lambda: 0.5 });
        t.observe_window(&Basket::from_raw(&[1]));
        assert_eq!(t.significance(ItemId::new(1)), 0.5);
        t.observe_window(&Basket::from_raw(&[1]));
        assert_eq!(t.significance(ItemId::new(1)), 0.75);
        t.observe_window(&Basket::from_raw(&[]));
        assert_eq!(t.significance(ItemId::new(1)), 0.375);
    }

    #[test]
    fn labels_render() {
        assert_eq!(
            SignificanceVariant::PaperExponential { alpha: 2.0 }.label(),
            "paper α=2"
        );
        assert_eq!(SignificanceVariant::FrequencyRatio.label(), "frequency c/k");
        assert_eq!(
            SignificanceVariant::Ewma { lambda: 0.3 }.label(),
            "EWMA λ=0.3"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be > 1")]
    fn invalid_alpha_panics() {
        VariantTracker::new(SignificanceVariant::PaperExponential { alpha: 1.0 });
    }

    #[test]
    #[should_panic(expected = "lambda must be in")]
    fn invalid_lambda_panics() {
        VariantTracker::new(SignificanceVariant::Ewma { lambda: 0.0 });
    }

    /// Every variant keeps stability within [0, 1].
    #[test]
    fn all_variants_bounded() {
        forall(
            256,
            |rng| {
                (
                    gen_vec(rng, 1, 11, |r| {
                        gen_vec(r, 0, 4, |rr| rr.u64_below(8) as u32)
                    }),
                    rng.usize_below(3),
                )
            },
            |(sets, which)| {
                let refs: Vec<&[u32]> = sets.iter().map(|v| v.as_slice()).collect();
                let w = windows_of(&refs);
                let variant = match which {
                    0 => SignificanceVariant::PaperExponential { alpha: 2.0 },
                    1 => SignificanceVariant::FrequencyRatio,
                    _ => SignificanceVariant::Ewma { lambda: 0.3 },
                };
                for p in stability_series_variant(&w, variant) {
                    assert!((0.0..=1.0 + 1e-9).contains(&p.value), "value {}", p.value);
                }
            },
        );
    }

    /// A perfectly repeating repertoire scores 1 under every variant.
    #[test]
    fn constant_repertoire_all_variants() {
        forall(
            128,
            |rng| (1 + rng.usize_below(14), rng.usize_below(3)),
            |&(n, which)| {
                let w = windows_of(&vec![[1u32, 2].as_slice(); n]);
                let variant = match which {
                    0 => SignificanceVariant::PaperExponential { alpha: 2.0 },
                    1 => SignificanceVariant::FrequencyRatio,
                    _ => SignificanceVariant::Ewma { lambda: 0.5 },
                };
                for p in stability_series_variant(&w, variant) {
                    assert!((p.value - 1.0).abs() < 1e-12);
                }
            },
        );
    }
}
