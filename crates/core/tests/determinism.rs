//! Bit-identity regression suite for the count-histogram significance
//! kernel.
//!
//! The histogram gives `total_significance()` one canonical summation
//! order (ascending occurrence count), so scores must be **bit-identical**
//! — not merely close — across every way of arriving at the same state:
//! independently-built trackers (distinct `HashMap` hash seeds),
//! snapshot→restore round-trips (counters replayed in checkpoint order),
//! and the batch engine vs the streaming monitor. The pre-histogram
//! kernel summed in hash-map iteration order and satisfied none of
//! these; a regression to per-item summation fails this suite with high
//! probability.

use attrition_core::{
    stability_series, SignificanceTracker, StabilityMonitor, StabilityParams, WindowClosed,
};
use attrition_store::{CustomerWindows, WindowSpec};
use attrition_types::{Basket, CustomerId, Date, ItemId};
use attrition_util::check::{forall, gen_vec};

fn d(y: i32, m: u32, day: u32) -> Date {
    Date::from_ymd(y, m, day).unwrap()
}

fn b(raw: &[u32]) -> Basket {
    Basket::from_raw(raw)
}

fn gen_history(rng: &mut attrition_util::Rng) -> Vec<Vec<u32>> {
    gen_vec(rng, 1, 14, |r| {
        gen_vec(r, 0, 6, |rr| rr.u64_below(25) as u32)
    })
}

/// (a) Two independently-built trackers fed the same history report
/// bit-identical totals at every window. Each `HashMap` gets its own
/// random hash seed, so any iteration-order dependence shows up here.
#[test]
fn independent_trackers_bit_identical() {
    forall(128, gen_history, |history| {
        let mut first = SignificanceTracker::new(StabilityParams::PAPER);
        let mut second = SignificanceTracker::new(StabilityParams::PAPER);
        for u in history {
            let basket = b(u);
            first.observe_window(&basket);
            second.observe_window(&basket);
            assert_eq!(
                first.total_significance().to_bits(),
                second.total_significance().to_bits(),
                "independently-built trackers diverged at window {}",
                first.windows_observed()
            );
        }
    });
}

/// (b) A monitor restored from a snapshot produces bit-identical
/// previews *and* bit-identical future closed-window scores. The
/// restore path rebuilds each tracker by replaying counters in
/// checkpoint (ascending-item) order — a different insertion order than
/// live ingest, which the old hash-order summation was sensitive to.
#[test]
fn snapshot_restore_bit_identical() {
    let spec = WindowSpec::months(d(2012, 5, 1), 1);
    forall(
        48,
        |rng| {
            // Date-sorted receipt stream: (customer, month, day, items).
            let n_receipts = 1 + rng.usize_below(40);
            let mut stream: Vec<(u64, i32, i32, Vec<u32>)> = (0..n_receipts)
                .map(|_| {
                    (
                        rng.u64_below(6),
                        rng.i64_in(0, 5) as i32,
                        rng.i64_in(0, 27) as i32,
                        gen_vec(rng, 0, 5, |rr| 1 + rr.u64_below(30) as u32),
                    )
                })
                .collect();
            stream.sort_by_key(|&(customer, month, day, _)| (month, day, customer));
            stream
        },
        |stream| {
            let mut original = StabilityMonitor::new(spec, StabilityParams::PAPER);
            for (customer, month, day, items) in stream {
                let date = d(2012, 5, 1).add_months(*month) + *day;
                original.ingest(CustomerId::new(*customer), date, &b(items));
            }
            let mut restored =
                StabilityMonitor::restore(&original.snapshot()).expect("snapshot restores");

            for customer in original.customer_ids() {
                let live = original.preview(customer).unwrap();
                let back = restored.preview(customer).unwrap();
                assert_eq!(live.window, back.window);
                assert_eq!(live.value.to_bits(), back.value.to_bits());
                assert_eq!(
                    live.present_significance.to_bits(),
                    back.present_significance.to_bits()
                );
                assert_eq!(
                    live.total_significance.to_bits(),
                    back.total_significance.to_bits()
                );
            }

            // Future outputs stay bit-identical, not just current state.
            let drain = |m: &mut StabilityMonitor| -> Vec<WindowClosed> {
                let mut out = Vec::new();
                for customer in m.customer_ids() {
                    out.extend(m.ingest(customer, d(2013, 1, 10), &b(&[1, 7])));
                }
                out.extend(m.flush_until(d(2013, 6, 1)));
                out
            };
            let out_a = drain(&mut original);
            let out_b = drain(&mut restored);
            assert_eq!(out_a.len(), out_b.len());
            for (x, y) in out_a.iter().zip(&out_b) {
                assert_eq!(x.customer, y.customer);
                assert_eq!(x.point.window, y.point.window);
                assert_eq!(x.point.value.to_bits(), y.point.value.to_bits());
                assert_eq!(x.explanation.lost.len(), y.explanation.lost.len());
                for (la, lb) in x.explanation.lost.iter().zip(&y.explanation.lost) {
                    assert_eq!(la.item, lb.item);
                    assert_eq!(la.significance.to_bits(), lb.significance.to_bits());
                    assert_eq!(la.share.to_bits(), lb.share.to_bits());
                }
            }
        },
    );
}

/// (c) Batch `stability_series` and the streaming monitor score the
/// same customer bit-identically — value, numerator, and denominator.
#[test]
fn batch_and_streaming_bit_identical() {
    let spec = WindowSpec::months(d(2012, 5, 1), 1);
    forall(64, gen_history, |history| {
        let customer = CustomerId::new(42);
        let windows = CustomerWindows {
            customer,
            baskets: history.iter().map(|v| b(v)).collect(),
            trips: vec![1; history.len()],
            spend: vec![attrition_types::Cents(0); history.len()],
            last_purchase: vec![None; history.len()],
            spec,
        };
        let batch = stability_series(&windows, StabilityParams::PAPER);

        let mut monitor = StabilityMonitor::new(spec, StabilityParams::PAPER);
        let mut online = Vec::new();
        for (month, items) in history.iter().enumerate() {
            if !items.is_empty() {
                let date = d(2012, 5, 5).add_months(month as i32);
                online.extend(monitor.ingest(customer, date, &b(items)));
            }
        }
        online.extend(monitor.flush_until(d(2012, 5, 1).add_months(history.len() as i32)));

        if history.iter().all(|items| items.is_empty()) {
            // The monitor never saw the customer: nothing to compare.
            assert!(online.is_empty());
            return;
        }
        assert_eq!(online.len(), batch.len());
        for (closed, point) in online.iter().zip(&batch) {
            assert_eq!(closed.point.window, point.window);
            assert_eq!(closed.point.value.to_bits(), point.value.to_bits());
            assert_eq!(
                closed.point.present_significance.to_bits(),
                point.present_significance.to_bits()
            );
            assert_eq!(
                closed.point.total_significance.to_bits(),
                point.total_significance.to_bits()
            );
        }
    });
}

/// Spot-check of the tracker's histogram accessor across the public
/// surface this suite leans on: after any history, `Σ hist[c]` equals
/// the tracked-item count and the paper's worked example still scores
/// exactly 0.5.
#[test]
fn kernel_sanity_on_worked_example() {
    let mut tracker = SignificanceTracker::new(StabilityParams::PAPER);
    tracker.observe_window(&b(&[1, 2]));
    tracker.observe_window(&b(&[1, 2]));
    // k=2: S(1)=S(2)=4; losing item 2 → 4/8.
    assert_eq!(tracker.present_significance(&b(&[1])), 4.0);
    assert_eq!(tracker.total_significance(), 8.0);
    assert_eq!(tracker.count_histogram(), &[0, 0, 2]);
    assert_eq!(tracker.significance(ItemId::new(2)), 4.0);
    assert_eq!(
        tracker
            .count_histogram()
            .iter()
            .map(|&n| n as usize)
            .sum::<usize>(),
        tracker.num_tracked()
    );
}
