//! Interoperability suite for the two monitor snapshot formats.
//!
//! The text checkpoint (`#monitor,v1`) and the binary snapshot
//! (`ATTRMON1`) encode the same state, so the suite pins three
//! contracts with property tests over random ingest streams:
//!
//! 1. **Byte stability.** `restore(snapshot(m))` re-emits the identical
//!    text, and `restore_bytes(snapshot_bytes(m))` the identical bytes —
//!    each format is a fixed point of its own round-trip.
//! 2. **Cross-format identity.** A monitor restored from the *text*
//!    snapshot emits the same binary snapshot as the original (and vice
//!    versa), and both restores score every customer bit-identically,
//!    now and for all future closed windows.
//! 3. **No panics on garbage.** `restore_bytes`/`restore_any` return a
//!    named [`RestoreError`] — never panic — on truncated, bit-flipped,
//!    wrong-version, and arbitrary random input.

use attrition_core::{StabilityMonitor, StabilityParams, WindowClosed, SNAPSHOT_MAGIC};
use attrition_store::WindowSpec;
use attrition_types::{Basket, CustomerId, Date};
use attrition_util::check::{forall, gen_vec};
use attrition_util::Rng;

fn d(y: i32, m: u32, day: u32) -> Date {
    Date::from_ymd(y, m, day).unwrap()
}

fn spec() -> WindowSpec {
    WindowSpec::months(d(2012, 5, 1), 1)
}

/// A date-sorted receipt stream: (customer, month offset, day, items).
fn gen_stream(rng: &mut Rng) -> Vec<(u64, i32, i32, Vec<u32>)> {
    let n_receipts = rng.usize_below(50);
    let mut stream: Vec<(u64, i32, i32, Vec<u32>)> = (0..n_receipts)
        .map(|_| {
            (
                rng.u64_below(8),
                rng.i64_in(0, 6) as i32,
                rng.i64_in(0, 27) as i32,
                gen_vec(rng, 0, 6, |rr| 1 + rr.u64_below(40) as u32),
            )
        })
        .collect();
    stream.sort_by_key(|&(customer, month, day, _)| (month, day, customer));
    stream
}

fn build(stream: &[(u64, i32, i32, Vec<u32>)]) -> StabilityMonitor {
    let mut monitor = StabilityMonitor::new(spec(), StabilityParams::PAPER);
    for (customer, month, day, items) in stream {
        let date = d(2012, 5, 1).add_months(*month) + *day;
        monitor.ingest(CustomerId::new(*customer), date, &Basket::from_raw(items));
    }
    monitor
}

/// Close every open window and collect the scores, bit-exactly.
fn drain(m: &mut StabilityMonitor) -> Vec<WindowClosed> {
    let mut out = Vec::new();
    for customer in m.customer_ids() {
        out.extend(m.ingest(customer, d(2013, 2, 10), &Basket::from_raw(&[3, 9])));
    }
    out.extend(m.flush_until(d(2013, 8, 1)));
    out
}

fn assert_same_scores(a: &[WindowClosed], b: &[WindowClosed]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.customer, y.customer);
        assert_eq!(x.point.window, y.point.window);
        assert_eq!(x.point.value.to_bits(), y.point.value.to_bits());
        assert_eq!(
            x.point.present_significance.to_bits(),
            y.point.present_significance.to_bits()
        );
        assert_eq!(
            x.point.total_significance.to_bits(),
            y.point.total_significance.to_bits()
        );
        assert_eq!(x.explanation.lost.len(), y.explanation.lost.len());
        for (la, lb) in x.explanation.lost.iter().zip(&y.explanation.lost) {
            assert_eq!(la.item, lb.item);
            assert_eq!(la.significance.to_bits(), lb.significance.to_bits());
        }
    }
}

/// Contract 1 + 2: both formats are fixed points of their round-trips,
/// and each restore re-emits the *other* format identically too.
#[test]
fn round_trips_are_byte_stable_in_both_formats() {
    forall(64, gen_stream, |stream| {
        let monitor = build(stream);
        let text = monitor.snapshot();
        let bytes = monitor.snapshot_bytes();

        let from_text = StabilityMonitor::restore(&text).expect("text restores");
        let from_bytes = StabilityMonitor::restore_bytes(&bytes).expect("binary restores");

        assert_eq!(
            from_text.snapshot(),
            text,
            "text round-trip not byte-stable"
        );
        assert_eq!(
            from_bytes.snapshot_bytes(),
            bytes,
            "binary round-trip not byte-stable"
        );
        // Cross-format: restoring one format re-emits the other exactly.
        assert_eq!(from_text.snapshot_bytes(), bytes);
        assert_eq!(from_bytes.snapshot(), text);

        // restore_any sniffs the header and accepts both.
        assert_eq!(
            StabilityMonitor::restore_any(text.as_bytes())
                .expect("restore_any(text)")
                .snapshot(),
            text
        );
        assert_eq!(
            StabilityMonitor::restore_any(&bytes)
                .expect("restore_any(binary)")
                .snapshot_bytes(),
            bytes
        );
    });
}

/// Contract 2, dynamically: the text-restored and binary-restored
/// monitors produce bit-identical closed-window scores forever after.
#[test]
fn cross_format_restores_score_bit_identically() {
    forall(48, gen_stream, |stream| {
        let mut original = build(stream);
        let mut from_text = StabilityMonitor::restore(&original.snapshot()).unwrap();
        let mut from_bytes = StabilityMonitor::restore_bytes(&original.snapshot_bytes()).unwrap();

        let live = drain(&mut original);
        let text_scores = drain(&mut from_text);
        let byte_scores = drain(&mut from_bytes);
        assert_same_scores(&live, &text_scores);
        assert_same_scores(&live, &byte_scores);
    });
}

/// Sharding commutes with the binary encoding: partitioning a monitor
/// and merging the shards' blocks reproduces the whole-monitor snapshot
/// byte-for-byte.
#[test]
fn sharded_merge_equals_whole_snapshot() {
    forall(32, gen_stream, |stream| {
        let monitor = build(stream);
        let whole = monitor.snapshot_bytes();
        for n_shards in [1usize, 2, 3, 5] {
            let parts = build(stream).partition(n_shards, |customer| {
                (customer.raw() % n_shards as u64) as usize
            });
            assert_eq!(
                StabilityMonitor::merge_snapshot_bytes(parts.iter()),
                whole,
                "merge of {n_shards} shards diverged"
            );
        }
    });
}

/// Contract 3: every truncation of a valid binary snapshot fails with a
/// named error instead of panicking — and an 8-byte-aligned prefix must
/// not silently restore as a shorter-but-valid snapshot.
#[test]
fn truncated_binary_snapshots_fail_cleanly() {
    let stream = vec![
        (1u64, 0i32, 3i32, vec![4u32, 7, 9]),
        (2, 0, 9, vec![4]),
        (1, 1, 2, vec![7, 12]),
        (2, 1, 20, vec![4, 5]),
    ];
    let bytes = build(&stream).snapshot_bytes();
    assert!(bytes.len() > SNAPSHOT_MAGIC.len());
    for len in 0..bytes.len() {
        let err = StabilityMonitor::restore_bytes(&bytes[..len])
            .expect_err("every proper prefix must be rejected");
        assert_eq!(err.line, 0, "binary errors carry line 0");
        let shown = err.to_string();
        assert!(
            shown.contains("binary checkpoint"),
            "unhelpful error at len {len}: {shown}"
        );
    }
}

/// Contract 3: single-bit flips anywhere in the payload either restore
/// to the identical state (flips confined to ignored padding do not
/// exist in this format — every byte is load-bearing) or fail cleanly.
/// No flip may panic, and no flip in the header/ids/counts may restore
/// to a *different* state that re-emits the original bytes.
#[test]
fn bit_flipped_binary_snapshots_never_panic() {
    let stream = vec![
        (1u64, 0i32, 3i32, vec![4u32, 7, 9]),
        (9, 0, 9, vec![4]),
        (1, 1, 2, vec![7, 12]),
        (9, 2, 20, vec![4, 5, 31]),
    ];
    let bytes = build(&stream).snapshot_bytes();
    forall(
        256,
        |rng| {
            let pos = rng.usize_below(bytes.len());
            let bit = rng.u64_below(8) as u32;
            (pos, bit)
        },
        |&(pos, bit)| {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            if let Ok(restored) = StabilityMonitor::restore_bytes(&corrupt) {
                // A flip that happens to decode must round-trip to the
                // *corrupted* bytes, never silently to the originals.
                assert_eq!(restored.snapshot_bytes(), corrupt);
            }
        },
    );
}

/// Contract 3: wrong version byte and foreign magic are named errors.
#[test]
fn wrong_version_and_magic_are_named_errors() {
    let bytes = build(&[(1, 0, 3, vec![4, 7])]).snapshot_bytes();

    let mut wrong_version = bytes.clone();
    wrong_version[7] = b'9'; // ATTRMON9
    let err = StabilityMonitor::restore_bytes(&wrong_version).unwrap_err();
    assert!(
        err.to_string().contains("unsupported snapshot version"),
        "{err}"
    );

    let mut wrong_magic = bytes;
    wrong_magic[0] = b'X';
    let err = StabilityMonitor::restore_bytes(&wrong_magic).unwrap_err();
    assert!(
        err.to_string().contains("not a binary monitor snapshot"),
        "{err}"
    );

    // restore_any on non-UTF-8 garbage that is not a snapshot either.
    let err = StabilityMonitor::restore_any(&[0xFF, 0xFE, 0x00, 0x01]).unwrap_err();
    assert!(
        err.to_string().contains("neither binary nor UTF-8"),
        "{err}"
    );
}

/// Contract 3, fuzzed: arbitrary byte soup — raw, and grafted behind a
/// valid magic so the header/body parsers (not just the magic check)
/// absorb it — never panics.
#[test]
fn restore_never_panics_on_arbitrary_bytes() {
    forall(
        512,
        |rng| {
            let mut bytes = gen_vec(rng, 0, 200, |r| r.u64_below(256) as u8);
            if rng.u64_below(2) == 0 {
                // Half the cases: valid magic, garbage payload.
                let mut prefixed = SNAPSHOT_MAGIC.to_vec();
                prefixed.append(&mut bytes);
                bytes = prefixed;
            }
            bytes
        },
        |bytes| {
            let _ = StabilityMonitor::restore_bytes(bytes);
            let _ = StabilityMonitor::restore_any(bytes);
        },
    );
}

/// The degenerate monitor — no customers at all — round-trips in both
/// formats and across them.
#[test]
fn empty_monitor_round_trips() {
    let monitor = StabilityMonitor::new(spec(), StabilityParams::PAPER);
    let text = monitor.snapshot();
    let bytes = monitor.snapshot_bytes();
    assert_eq!(
        StabilityMonitor::restore(&text).unwrap().snapshot_bytes(),
        bytes
    );
    assert_eq!(
        StabilityMonitor::restore_bytes(&bytes).unwrap().snapshot(),
        text
    );
}
