//! Typed agents for the scenario engine.
//!
//! An [`Agent`] wraps the generative [`CustomerProfile`] with the typed
//! properties the scenario library scripts against: a household (members
//! co-shop and churn together), a demographic segment, a price
//! sensitivity (who reacts to promotions and competitor entry) and a home
//! store (who a closure displaces).
//!
//! Stream discipline: the *profile* of agent `i` is drawn from exactly
//! the stream [`Population::generate`](crate::population::Population)
//! would use (`seed ^ id·φ64`), so a scenario built on loyal agents
//! shops identically to the legacy population with the same seed. Typed
//! properties come from a second per-agent stream and households from a
//! sequential stream — neither perturbs the profile draws.

use crate::population::{sample_profile, BehaviorConfig};
use crate::profile::CustomerProfile;
use attrition_types::{CustomerId, Taxonomy};
use attrition_util::{Rng, Zipf};

/// Demographic segment of an agent, derived from household size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentSegment {
    /// One-person household.
    Single,
    /// Two adults.
    Couple,
    /// Three or more members.
    Family,
    /// Retired single or couple.
    Senior,
}

impl AgentSegment {
    /// Stable lowercase name for logs and CSV.
    pub fn name(self) -> &'static str {
        match self {
            AgentSegment::Single => "single",
            AgentSegment::Couple => "couple",
            AgentSegment::Family => "family",
            AgentSegment::Senior => "senior",
        }
    }
}

/// One simulated person: generative profile plus typed properties.
#[derive(Debug, Clone)]
pub struct Agent {
    /// The generative shopping model (drives every trip draw).
    pub profile: CustomerProfile,
    /// Household index; members have consecutive customer ids.
    pub household: u32,
    /// Demographic segment.
    pub segment: AgentSegment,
    /// Price sensitivity in `[0, 1]` — reaction strength to promotions
    /// and competitor entry.
    pub price_sensitivity: f64,
    /// Home store in `0..n_stores`; shared by the whole household.
    pub home_store: u32,
}

/// Knobs for agent population generation.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Number of agents.
    pub n_agents: usize,
    /// Number of stores agents are homed to.
    pub n_stores: u32,
    /// Shared behavior knobs (profile sampling).
    pub behavior: BehaviorConfig,
}

/// A generated agent population, in customer-id order.
#[derive(Debug, Clone)]
pub struct AgentPopulation {
    /// All agents; `agents[i].profile.customer == CustomerId::new(i)`.
    pub agents: Vec<Agent>,
}

impl AgentPopulation {
    /// Generate `cfg.n_agents` agents against `taxonomy`.
    pub fn generate(cfg: &AgentConfig, taxonomy: &Taxonomy, seed: u64) -> AgentPopulation {
        assert!(cfg.n_stores > 0, "need at least one store");
        let segment_zipf = Zipf::new(taxonomy.num_segments(), cfg.behavior.segment_zipf_s);
        // Sequential stream for household structure only.
        let mut hh_rng = Rng::seed_from_u64(seed ^ HOUSEHOLD_STREAM);
        let mut agents = Vec::with_capacity(cfg.n_agents);
        let mut household = 0u32;
        let mut remaining = 0usize;
        let mut size = 0usize;
        let mut home_store = 0u32;
        let mut senior = false;
        for raw_id in 0..cfg.n_agents as u64 {
            if remaining == 0 {
                // Household sizes: 35 % single, 30 % couple, 20 % three,
                // 15 % four; 25 % of 1–2-person households are seniors.
                let roll = hh_rng.u64_below(100);
                size = match roll {
                    0..=34 => 1,
                    35..=64 => 2,
                    65..=84 => 3,
                    _ => 4,
                };
                senior = size <= 2 && hh_rng.bernoulli(0.25);
                home_store = hh_rng.u64_below(cfg.n_stores as u64) as u32;
                household += 1;
                remaining = size;
            }
            remaining -= 1;
            let customer = CustomerId::new(raw_id);
            // The SAME stream Population::generate uses — profiles (and
            // therefore trips) match the legacy generator per seed.
            let mut rng = Rng::seed_from_u64(seed ^ raw_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let profile =
                sample_profile(customer, taxonomy, &cfg.behavior, &segment_zipf, &mut rng);
            // Typed properties from an independent per-agent stream.
            let mut props = Rng::seed_from_u64(
                seed.rotate_left(29) ^ raw_id.wrapping_mul(0xA076_1D64_78BD_642F),
            );
            let segment = if senior {
                AgentSegment::Senior
            } else {
                match size {
                    1 => AgentSegment::Single,
                    2 => AgentSegment::Couple,
                    _ => AgentSegment::Family,
                }
            };
            agents.push(Agent {
                profile,
                household: household - 1,
                segment,
                price_sensitivity: props.f64_in(0.0, 1.0),
                home_store,
            });
        }
        AgentPopulation { agents }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Household groups as index ranges into `agents` (members are
    /// consecutive by construction).
    pub fn households(&self) -> Vec<std::ops::Range<usize>> {
        let mut groups = Vec::new();
        let mut start = 0usize;
        for i in 1..=self.agents.len() {
            if i == self.agents.len() || self.agents[i].household != self.agents[start].household {
                groups.push(start..i);
                start = i;
            }
        }
        groups
    }
}

/// Stream label for the household RNG — keeps household structure
/// independent of both the profile and typed-property streams.
const HOUSEHOLD_STREAM: u64 = 0xB0B5_7EAD_0905_E501;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_catalog, CatalogConfig};

    fn taxonomy() -> Taxonomy {
        generate_catalog(&CatalogConfig::default(), &mut Rng::seed_from_u64(1))
    }

    fn config(n: usize) -> AgentConfig {
        AgentConfig {
            n_agents: n,
            n_stores: 5,
            behavior: BehaviorConfig::default(),
        }
    }

    #[test]
    fn profiles_match_legacy_population_stream() {
        use crate::defection::DefectionPlan;
        use crate::population::{Population, PopulationConfig};
        let tax = taxonomy();
        let agents = AgentPopulation::generate(&config(40), &tax, 77);
        let legacy = Population::generate(
            &PopulationConfig {
                n_loyal: 40,
                n_defectors: 0,
                behavior: BehaviorConfig::default(),
                defection: DefectionPlan::standard(6),
            },
            &tax,
            77,
        );
        for (a, p) in agents.agents.iter().zip(&legacy.profiles) {
            assert_eq!(&a.profile, p, "agent {}", a.profile.customer);
        }
    }

    #[test]
    fn households_are_consecutive_and_cover_all() {
        let tax = taxonomy();
        let agents = AgentPopulation::generate(&config(100), &tax, 3);
        let groups = agents.households();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 100);
        for g in &groups {
            assert!(!g.is_empty() && g.len() <= 4);
            let hh = agents.agents[g.start].household;
            let store = agents.agents[g.start].home_store;
            for i in g.clone() {
                assert_eq!(agents.agents[i].household, hh);
                assert_eq!(agents.agents[i].home_store, store);
            }
        }
        // With 100 agents and mean size ~2.15 we expect several
        // multi-member households.
        assert!(groups.iter().any(|g| g.len() >= 2));
    }

    #[test]
    fn typed_properties_in_range() {
        let tax = taxonomy();
        let agents = AgentPopulation::generate(&config(60), &tax, 9);
        let mut seniors = 0;
        for a in &agents.agents {
            assert!((0.0..=1.0).contains(&a.price_sensitivity));
            assert!(a.home_store < 5);
            if a.segment == AgentSegment::Senior {
                seniors += 1;
            }
        }
        // ~25 % of small households → some seniors in 60 agents.
        assert!(seniors > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let tax = taxonomy();
        let a = AgentPopulation::generate(&config(30), &tax, 5);
        let b = AgentPopulation::generate(&config(30), &tax, 5);
        for (x, y) in a.agents.iter().zip(&b.agents) {
            assert_eq!(x.profile, y.profile);
            assert_eq!(x.household, y.household);
            assert_eq!(x.segment, y.segment);
            assert_eq!(x.price_sensitivity, y.price_sensitivity);
            assert_eq!(x.home_store, y.home_store);
        }
    }

    #[test]
    fn segment_names() {
        assert_eq!(AgentSegment::Single.name(), "single");
        assert_eq!(AgentSegment::Family.name(), "family");
    }
}
