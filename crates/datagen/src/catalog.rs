//! Grocery catalog / taxonomy generation.
//!
//! Produces a [`Taxonomy`] with human-readable segment names (coffee,
//! milk, cheese, sponges, …) so that the individual-explanation use case
//! of the paper's Figure 2 ("coffee loss", "milk, sponge and cheese
//! loss") reads literally. Segments beyond the base name list get
//! numbered variants; per-segment product counts and prices are sampled
//! from configurable distributions.

use attrition_types::{Cents, Taxonomy, TaxonomyBuilder};
use attrition_util::Rng;

/// Base grocery segment names, ordered roughly by how central they are to
/// a typical shopping repertoire (the population sampler favors early
/// entries via a Zipf over this order). The first four are the products
/// named in the paper's Figure 2.
pub const SEGMENT_NAMES: [&str; 64] = [
    "coffee",
    "milk",
    "cheese",
    "sponges",
    "bread",
    "butter",
    "eggs",
    "yogurt",
    "pasta",
    "rice",
    "cereal",
    "sugar",
    "flour",
    "chocolate",
    "biscuits",
    "jam",
    "honey",
    "tea",
    "fruit juice",
    "mineral water",
    "soda",
    "beer",
    "wine",
    "chicken",
    "beef",
    "pork",
    "ham",
    "sausages",
    "fish",
    "shrimp",
    "canned tuna",
    "canned tomatoes",
    "olive oil",
    "vinegar",
    "salt",
    "pepper",
    "herbs",
    "mustard",
    "ketchup",
    "mayonnaise",
    "lettuce",
    "tomatoes",
    "potatoes",
    "onions",
    "carrots",
    "apples",
    "bananas",
    "oranges",
    "lemons",
    "frozen vegetables",
    "frozen pizza",
    "ice cream",
    "dish soap",
    "laundry detergent",
    "toilet paper",
    "paper towels",
    "shampoo",
    "toothpaste",
    "soap",
    "razor blades",
    "cat food",
    "dog food",
    "diapers",
    "baby food",
];

/// Configuration of the catalog generator.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Number of segments to create.
    pub n_segments: usize,
    /// Mean number of products per segment (Poisson, min 1).
    pub mean_products_per_segment: f64,
    /// Price range (log-uniform) of a segment's base price, in cents.
    pub base_price_range: (i64, i64),
    /// Multiplicative spread of product prices within a segment.
    pub price_spread: f64,
}

impl Default for CatalogConfig {
    fn default() -> CatalogConfig {
        CatalogConfig {
            n_segments: 120,
            mean_products_per_segment: 8.0,
            base_price_range: (80, 1500),
            price_spread: 0.35,
        }
    }
}

/// Name of segment `idx`: base names first, then numbered variants
/// (`"coffee #2"`, …).
pub fn segment_name(idx: usize) -> String {
    let base = SEGMENT_NAMES[idx % SEGMENT_NAMES.len()];
    let round = idx / SEGMENT_NAMES.len();
    if round == 0 {
        base.to_owned()
    } else {
        format!("{base} #{}", round + 1)
    }
}

/// Generate a taxonomy according to `cfg`, deterministically from `rng`.
pub fn generate_catalog(cfg: &CatalogConfig, rng: &mut Rng) -> Taxonomy {
    assert!(cfg.n_segments > 0, "catalog needs at least one segment");
    assert!(
        cfg.base_price_range.0 > 0 && cfg.base_price_range.1 >= cfg.base_price_range.0,
        "invalid price range"
    );
    let mut builder = TaxonomyBuilder::new();
    for s in 0..cfg.n_segments {
        let seg_name = segment_name(s);
        let seg = builder.add_segment(seg_name.clone());
        let n_products = rng.poisson(cfg.mean_products_per_segment).max(1) as usize;
        // Log-uniform base price for the segment.
        let (lo, hi) = cfg.base_price_range;
        let base = (lo as f64).ln() + rng.f64() * ((hi as f64).ln() - (lo as f64).ln());
        let base = base.exp();
        for p in 0..n_products {
            let spread = (1.0 + cfg.price_spread * rng.normal()).clamp(0.3, 3.0);
            let price = Cents(((base * spread).round() as i64).max(10));
            let name = format!("{seg_name} — product {}", p + 1);
            builder
                .add_product(seg, name, price)
                .expect("segment was just created");
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_shape() {
        let mut rng = Rng::seed_from_u64(1);
        let cfg = CatalogConfig::default();
        let tax = generate_catalog(&cfg, &mut rng);
        assert_eq!(tax.num_segments(), 120);
        // Mean 8 products/segment → expect within a broad band.
        let per = tax.num_products() as f64 / tax.num_segments() as f64;
        assert!((5.0..11.0).contains(&per), "products per segment {per}");
    }

    #[test]
    fn deterministic() {
        let cfg = CatalogConfig::default();
        let a = generate_catalog(&cfg, &mut Rng::seed_from_u64(9));
        let b = generate_catalog(&cfg, &mut Rng::seed_from_u64(9));
        assert_eq!(a.num_products(), b.num_products());
        for (pa, pb) in a.products().zip(b.products()) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn figure2_segments_exist_by_name() {
        let mut rng = Rng::seed_from_u64(2);
        let tax = generate_catalog(&CatalogConfig::default(), &mut rng);
        for name in ["coffee", "milk", "cheese", "sponges"] {
            assert!(tax.segment_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn numbered_variants_beyond_base_list() {
        assert_eq!(segment_name(0), "coffee");
        assert_eq!(segment_name(64), "coffee #2");
        assert_eq!(segment_name(65), "milk #2");
        assert_eq!(segment_name(128), "coffee #3");
        let mut rng = Rng::seed_from_u64(3);
        let tax = generate_catalog(
            &CatalogConfig {
                n_segments: 70,
                ..CatalogConfig::default()
            },
            &mut rng,
        );
        assert!(tax.segment_by_name("coffee #2").is_some());
    }

    #[test]
    fn prices_positive_and_in_plausible_band() {
        let mut rng = Rng::seed_from_u64(4);
        let tax = generate_catalog(&CatalogConfig::default(), &mut rng);
        for p in tax.products() {
            assert!(p.price.raw() >= 10, "price too low: {}", p.price);
            assert!(p.price.raw() < 10_000, "price too high: {}", p.price);
        }
    }

    #[test]
    fn every_segment_has_a_product() {
        let mut rng = Rng::seed_from_u64(5);
        let tax = generate_catalog(
            &CatalogConfig {
                n_segments: 30,
                mean_products_per_segment: 0.5,
                ..CatalogConfig::default()
            },
            &mut rng,
        );
        for s in tax.segments() {
            assert!(
                !tax.products_in(s.segment).unwrap().is_empty(),
                "segment {} empty",
                s.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        generate_catalog(
            &CatalogConfig {
                n_segments: 0,
                ..CatalogConfig::default()
            },
            &mut Rng::seed_from_u64(0),
        );
    }
}
