//! Partial-defection injection.
//!
//! Grocery attrition is *partial* ([Buckinx & Van den Poel 2005], cited in
//! the paper's introduction): a defecting customer "will usually lower his
//! purchases, instead of totally leaving the store". A [`DefectionPlan`]
//! rewrites a loyal [`CustomerProfile`] accordingly:
//!
//! * each core item independently receives a **drop month** — a point
//!   after the onset from which it is never bought again; drops are
//!   staggered over the ramp so that significance-weighted losses arrive
//!   over several windows (what Figure 2 shows: coffee first, then milk +
//!   sponge + cheese), and
//! * the shopping-trip rate decays multiplicatively after onset.
//!
//! A fraction of the repertoire survives (`keep_fraction`), keeping the
//! defection partial rather than a hard exit.

use crate::profile::{CustomerProfile, TripDecay};
use attrition_util::Rng;

/// How a defector loses their repertoire.
#[derive(Debug, Clone)]
pub struct DefectionPlan {
    /// Month (0-based) the defection starts — the paper's Figure 1 marks
    /// this on the time axis (month 18 of 28 in the default scenario).
    pub onset_month: u32,
    /// Number of months over which item drops are staggered.
    pub ramp_months: u32,
    /// Fraction of core items that are *kept* (never dropped).
    pub keep_fraction: f64,
    /// Monthly multiplicative trip-rate factor after onset (`1.0` = trips
    /// unaffected, `0.85` = 15% fewer trips each month).
    pub trip_rate_factor: f64,
}

impl DefectionPlan {
    /// A moderate plan matching the default scenario: onset at
    /// `onset_month`, drops staggered over 10 months, ~35% of the
    /// repertoire kept, trips decaying by 6%/month.
    ///
    /// Calibration note: these values were chosen so that the default
    /// scenario's detection difficulty lands in the paper's band — a
    /// stability AUROC around 0.8 two months after onset (the paper
    /// reports 0.79), rather than a trivially separable cohort.
    pub fn standard(onset_month: u32) -> DefectionPlan {
        DefectionPlan {
            onset_month,
            ramp_months: 10,
            keep_fraction: 0.35,
            trip_rate_factor: 0.94,
        }
    }

    /// Apply the plan to a (loyal) profile, sampling drop months from
    /// `rng`. Items are dropped in a random order uniformly staggered over
    /// `[onset, onset + ramp_months)`.
    pub fn apply(&self, profile: &mut CustomerProfile, rng: &mut Rng) {
        assert!(
            (0.0..=1.0).contains(&self.keep_fraction),
            "keep_fraction must be in [0,1]"
        );
        assert!(
            self.trip_rate_factor > 0.0 && self.trip_rate_factor <= 1.0,
            "trip_rate_factor must be in (0,1]"
        );
        for item in profile.preferred.iter_mut() {
            if rng.bernoulli(self.keep_fraction) {
                continue; // survivor: defection stays partial
            }
            let offset = if self.ramp_months == 0 {
                0
            } else {
                rng.u64_below(self.ramp_months as u64) as u32
            };
            item.drop_month = Some(self.onset_month + offset);
        }
        if self.trip_rate_factor < 1.0 {
            profile.trip_decay = Some(TripDecay {
                onset_month: self.onset_month,
                monthly_factor: self.trip_rate_factor,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PreferredItem;
    use attrition_types::{CustomerId, ItemId};

    fn loyal_profile(n_items: usize) -> CustomerProfile {
        CustomerProfile {
            customer: CustomerId::new(1),
            trips_per_month: 4.0,
            preferred: (0..n_items)
                .map(|i| PreferredItem {
                    item: ItemId::new(i as u32),
                    per_trip_prob: 0.8,
                    drop_month: None,
                })
                .collect(),
            exploration_rate: 1.0,
            trip_decay: None,
            brand_switch_prob: 0.0,
            entry_month: 0,
        }
    }

    #[test]
    fn drops_within_ramp() {
        let mut p = loyal_profile(200);
        let plan = DefectionPlan::standard(18);
        plan.apply(&mut p, &mut Rng::seed_from_u64(1));
        for item in &p.preferred {
            if let Some(m) = item.drop_month {
                assert!((18..28).contains(&m), "drop month {m} outside ramp");
            }
        }
        assert!(p.is_defector_profile());
        assert_eq!(p.trip_decay.unwrap().onset_month, 18);
    }

    #[test]
    fn keep_fraction_respected() {
        let mut p = loyal_profile(1000);
        let plan = DefectionPlan {
            keep_fraction: 0.5,
            ..DefectionPlan::standard(10)
        };
        plan.apply(&mut p, &mut Rng::seed_from_u64(2));
        let kept = p
            .preferred
            .iter()
            .filter(|i| i.drop_month.is_none())
            .count();
        let rate = kept as f64 / 1000.0;
        assert!((rate - 0.5).abs() < 0.06, "kept rate {rate}");
    }

    #[test]
    fn keep_all_means_no_item_drops() {
        let mut p = loyal_profile(50);
        let plan = DefectionPlan {
            keep_fraction: 1.0,
            trip_rate_factor: 0.9,
            ..DefectionPlan::standard(10)
        };
        plan.apply(&mut p, &mut Rng::seed_from_u64(3));
        assert!(p.preferred.iter().all(|i| i.drop_month.is_none()));
        // Still a defector via trip decay.
        assert!(p.is_defector_profile());
    }

    #[test]
    fn zero_ramp_drops_everything_at_onset() {
        let mut p = loyal_profile(50);
        let plan = DefectionPlan {
            ramp_months: 0,
            keep_fraction: 0.0,
            ..DefectionPlan::standard(7)
        };
        plan.apply(&mut p, &mut Rng::seed_from_u64(4));
        assert!(p.preferred.iter().all(|i| i.drop_month == Some(7)));
    }

    #[test]
    fn unity_trip_factor_leaves_trips_intact() {
        let mut p = loyal_profile(10);
        let plan = DefectionPlan {
            trip_rate_factor: 1.0,
            ..DefectionPlan::standard(5)
        };
        plan.apply(&mut p, &mut Rng::seed_from_u64(5));
        assert!(p.trip_decay.is_none());
    }

    #[test]
    #[should_panic(expected = "keep_fraction")]
    fn invalid_keep_fraction_panics() {
        let mut p = loyal_profile(1);
        DefectionPlan {
            keep_fraction: 1.5,
            ..DefectionPlan::standard(5)
        }
        .apply(&mut p, &mut Rng::seed_from_u64(0));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let plan = DefectionPlan::standard(12);
        let mut a = loyal_profile(100);
        let mut b = loyal_profile(100);
        plan.apply(&mut a, &mut Rng::seed_from_u64(42));
        plan.apply(&mut b, &mut Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
