//! Discrete-event scaffolding for the scenario engine.
//!
//! The scenario engine (see [`crate::scenario`]) runs a seeded,
//! time-ordered event queue in the style of agent-based epi frameworks:
//! world-level plan events (promotions, store closures, competitor entry,
//! seasonal drift) and agent-level mutation events (defection onset, exit,
//! re-acquisition) interleave with one `MonthTick` shopping event per
//! active agent per month.
//!
//! # Determinism contract
//!
//! [`Event`] derives a **total** `Ord` over its entire content
//! (`month`, then [`Phase`], then [`Actor`], then [`EventKind`] — every
//! payload is an integer, so the derive covers all of it). The queue is a
//! `BinaryHeap<Reverse<Event>>`, so pop order is the ascending total
//! order regardless of insertion order: two events that compare equal are
//! *indistinguishable*, and any tie the heap breaks arbitrarily is
//! therefore unobservable. Same seed → same events → same pops → same
//! trips, bytes and all. The shuffled-insertion property test below locks
//! this in.
//!
//! # Phase ordering
//!
//! Within one month, `Plan < Mutate < Shop`: world interventions apply
//! first, agent state changes second, shopping last. An `Exit` at
//! `(m, Mutate)` therefore precedes the agent's `(m, Shop)` tick — a
//! fully-exited agent emits no trips in its exit month.

use attrition_types::CustomerId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Sub-month ordering of events. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// World-level interventions (promotions, closures, drift).
    Plan,
    /// Agent state mutations (defection onset, exit, re-acquisition).
    Mutate,
    /// Shopping: one `MonthTick` per active agent.
    Shop,
}

/// How a scripted defection unfolds after its onset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefectMode {
    /// The paper's partial defection: the profile's baked-in item drops
    /// and trip decay play out; the agent keeps shopping (reduced).
    Partial,
    /// Progressive ramp-down over `ramp_months`, then a full stop.
    Gradual {
        /// Months between onset and the full stop.
        ramp_months: u32,
    },
    /// Full stop in the onset month itself.
    Abrupt,
}

/// What happens when an event fires.
///
/// Continuous knobs are carried as integer **milli-units** (`1500` =
/// `×1.5`) so the derived `Ord`/`Eq` stay total and exact — `f64` fields
/// would forfeit `Eq` and with it the whole determinism argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A promotion window opens: trip and exploration rates scale up for
    /// agents with price sensitivity ≥ the threshold.
    PromoStart {
        /// Trip-rate multiplier, milli (1600 = ×1.6).
        trip_milli: u32,
        /// Exploration-rate multiplier, milli.
        explore_milli: u32,
        /// Minimum price sensitivity to react, milli (350 = 0.35).
        min_sensitivity_milli: u32,
    },
    /// The promotion window closes.
    PromoEnd,
    /// A store closes: its regulars' trip rates drop while they
    /// re-home, and a fraction exits outright.
    StoreClose {
        /// The closing store.
        store: u32,
        /// Trip multiplier while re-homing, milli (450 = ×0.45).
        closure_milli: u32,
        /// Months until displaced regulars recover their full rate.
        recovery_months: u32,
        /// Probability a displaced regular exits instead, milli.
        exit_milli: u32,
    },
    /// A competitor opens: price-sensitive agents defect with
    /// probability `exit_scale × sensitivity`, staggered over the
    /// following months, a fraction of them gradually.
    CompetitorEntry {
        /// Scale on sensitivity → exit probability, milli.
        exit_scale_milli: u32,
        /// Onsets are staggered uniformly over this many months.
        stagger_months: u32,
        /// Fraction of defectors that go gradually, milli.
        gradual_frac_milli: u32,
        /// Ramp length for the gradual ones.
        ramp_months: u32,
    },
    /// Population-wide trip-rate drift begins: the seasonal factor's
    /// deviation from 1 is amplified by `drift × months-elapsed`.
    SeasonalDrift {
        /// Monthly amplification, milli (80 = +8 % per month).
        monthly_drift_milli: i32,
    },
    /// Ground-truth defection onset for one agent. This event *is* the
    /// label timestamp — detection latency is measured from it.
    DefectOnset(DefectMode),
    /// The agent stops shopping entirely (no further `MonthTick`s).
    Exit,
    /// A previously exited agent returns with its original profile.
    Reacquire,
    /// One month of shopping for one active agent.
    MonthTick,
}

/// Who an event applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Actor {
    /// The shared world (promotions, closures, drift).
    World,
    /// One agent.
    Agent(CustomerId),
}

/// One scheduled event. Fields are ordered so the derived `Ord` is the
/// scheduling order: month, then phase, then actor, then kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// Month index (0-based from the observation start).
    pub month: u32,
    /// Sub-month phase.
    pub phase: Phase,
    /// Target of the event.
    pub actor: Actor,
    /// Payload.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Plan => "plan",
            Phase::Mutate => "mutate",
            Phase::Shop => "shop",
        };
        match self.actor {
            Actor::World => write!(f, "m{:02} {} world {:?}", self.month, phase, self.kind),
            Actor::Agent(c) => write!(
                f,
                "m{:02} {} agent:{} {:?}",
                self.month,
                phase,
                c.raw(),
                self.kind
            ),
        }
    }
}

/// A min-heap of events popping in ascending total order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule an event.
    pub fn push(&mut self, event: Event) {
        self.heap.push(Reverse(event));
    }

    /// Pop the earliest event (ties are indistinguishable — see the
    /// module docs).
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::Rng;

    fn tick(month: u32, agent: u64) -> Event {
        Event {
            month,
            phase: Phase::Shop,
            actor: Actor::Agent(CustomerId::new(agent)),
            kind: EventKind::MonthTick,
        }
    }

    #[test]
    fn phases_order_plan_mutate_shop() {
        assert!(Phase::Plan < Phase::Mutate);
        assert!(Phase::Mutate < Phase::Shop);
        let exit = Event {
            month: 4,
            phase: Phase::Mutate,
            actor: Actor::Agent(CustomerId::new(9)),
            kind: EventKind::Exit,
        };
        // Exit in month m sorts before the same agent's Shop tick of
        // month m — no trips in the exit month.
        assert!(exit < tick(4, 9));
        // …and after every event of month m−1.
        assert!(exit > tick(3, u64::MAX));
    }

    #[test]
    fn month_dominates_phase_and_actor() {
        let late_plan = Event {
            month: 5,
            phase: Phase::Plan,
            actor: Actor::World,
            kind: EventKind::PromoEnd,
        };
        assert!(tick(4, 0) < late_plan);
        assert!(Actor::World < Actor::Agent(CustomerId::new(0)));
    }

    #[test]
    fn queue_pops_in_ascending_order() {
        let mut q = EventQueue::new();
        q.push(tick(3, 1));
        q.push(tick(1, 2));
        q.push(tick(1, 0));
        q.push(Event {
            month: 1,
            phase: Phase::Plan,
            actor: Actor::World,
            kind: EventKind::PromoEnd,
        });
        let order: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order.len(), 4);
        for pair in order.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert_eq!(order[0].phase, Phase::Plan);
        assert_eq!(order[1], tick(1, 0));
        assert_eq!(order[2], tick(1, 2));
        assert_eq!(order[3], tick(3, 1));
    }

    #[test]
    fn shuffled_insertion_same_pop_order() {
        // The BinaryHeap tie-break must be unobservable: any insertion
        // order of the same multiset pops the same sequence.
        let mut events = Vec::new();
        for month in 0..6 {
            for agent in 0..10 {
                events.push(tick(month, agent));
            }
            events.push(Event {
                month,
                phase: Phase::Mutate,
                actor: Actor::Agent(CustomerId::new(month as u64)),
                kind: EventKind::DefectOnset(DefectMode::Abrupt),
            });
        }
        let reference: Vec<Event> = {
            let mut q = EventQueue::new();
            for &e in &events {
                q.push(e);
            }
            std::iter::from_fn(|| q.pop()).collect()
        };
        let mut rng = Rng::seed_from_u64(0xF1FE);
        for _ in 0..16 {
            // Fisher–Yates shuffle with the workspace RNG.
            for i in (1..events.len()).rev() {
                let j = rng.u64_below(i as u64 + 1) as usize;
                events.swap(i, j);
            }
            let mut q = EventQueue::new();
            for &e in &events {
                q.push(e);
            }
            let popped: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(popped, reference);
        }
    }

    #[test]
    fn display_is_stable() {
        let e = Event {
            month: 7,
            phase: Phase::Mutate,
            actor: Actor::Agent(CustomerId::new(42)),
            kind: EventKind::DefectOnset(DefectMode::Gradual { ramp_months: 4 }),
        };
        assert_eq!(
            e.to_string(),
            "m07 mutate agent:42 DefectOnset(Gradual { ramp_months: 4 })"
        );
        let w = Event {
            month: 0,
            phase: Phase::Plan,
            actor: Actor::World,
            kind: EventKind::SeasonalDrift {
                monthly_drift_milli: 80,
            },
        };
        assert_eq!(
            w.to_string(),
            "m00 plan world SeasonalDrift { monthly_drift_milli: 80 }"
        );
    }
}
