//! Ground-truth cohort labels.
//!
//! The paper's retailer supplied "the IDs of loyal customers, and of loyal
//! customers that defected in the last 6 months". The simulator emits the
//! same two cohorts, exactly — with the defection onset month attached so
//! experiments can mark it on the time axis.

use attrition_types::CustomerId;

/// The cohort of one customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cohort {
    /// Behaviorally loyal throughout the observation period.
    Loyal,
    /// Loyal until `onset_month` (0-based month index relative to the
    /// observation start), partially defecting afterwards.
    Defector {
        /// First month of the defection.
        onset_month: u32,
    },
}

impl Cohort {
    /// True for the defector cohort.
    #[inline]
    pub fn is_defector(self) -> bool {
        matches!(self, Cohort::Defector { .. })
    }
}

/// One labeled customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomerLabel {
    /// The customer.
    pub customer: CustomerId,
    /// Their cohort.
    pub cohort: Cohort,
}

/// All labels of a generated population, sorted by customer id.
#[derive(Debug, Clone, Default)]
pub struct LabelSet {
    labels: Vec<CustomerLabel>,
}

impl LabelSet {
    /// Build from unsorted labels.
    pub fn new(mut labels: Vec<CustomerLabel>) -> LabelSet {
        labels.sort_by_key(|l| l.customer);
        LabelSet { labels }
    }

    /// Number of labeled customers.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no labels are present.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All labels, sorted by customer id.
    pub fn labels(&self) -> &[CustomerLabel] {
        &self.labels
    }

    /// The cohort of one customer, if labeled.
    pub fn cohort_of(&self, customer: CustomerId) -> Option<Cohort> {
        self.labels
            .binary_search_by_key(&customer, |l| l.customer)
            .ok()
            .map(|i| self.labels[i].cohort)
    }

    /// Number of defectors.
    pub fn num_defectors(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| l.cohort.is_defector())
            .count()
    }

    /// Number of loyal customers.
    pub fn num_loyal(&self) -> usize {
        self.len() - self.num_defectors()
    }

    /// Iterate over `(customer, is_defector)` pairs — the binary label
    /// stream evaluation consumes (defector = positive class).
    pub fn binary_labels(&self) -> impl Iterator<Item = (CustomerId, bool)> + '_ {
        self.labels
            .iter()
            .map(|l| (l.customer, l.cohort.is_defector()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(id: u64, cohort: Cohort) -> CustomerLabel {
        CustomerLabel {
            customer: CustomerId::new(id),
            cohort,
        }
    }

    #[test]
    fn sorted_on_build_and_lookup() {
        let set = LabelSet::new(vec![
            label(5, Cohort::Loyal),
            label(1, Cohort::Defector { onset_month: 18 }),
            label(3, Cohort::Loyal),
        ]);
        assert_eq!(set.len(), 3);
        assert_eq!(
            set.cohort_of(CustomerId::new(1)),
            Some(Cohort::Defector { onset_month: 18 })
        );
        assert_eq!(set.cohort_of(CustomerId::new(3)), Some(Cohort::Loyal));
        assert_eq!(set.cohort_of(CustomerId::new(2)), None);
        let ids: Vec<u64> = set.labels().iter().map(|l| l.customer.raw()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn cohort_counts() {
        let set = LabelSet::new(vec![
            label(1, Cohort::Defector { onset_month: 10 }),
            label(2, Cohort::Loyal),
            label(3, Cohort::Defector { onset_month: 12 }),
        ]);
        assert_eq!(set.num_defectors(), 2);
        assert_eq!(set.num_loyal(), 1);
    }

    #[test]
    fn binary_labels_stream() {
        let set = LabelSet::new(vec![
            label(1, Cohort::Loyal),
            label(2, Cohort::Defector { onset_month: 3 }),
        ]);
        let pairs: Vec<(u64, bool)> = set.binary_labels().map(|(c, d)| (c.raw(), d)).collect();
        assert_eq!(pairs, vec![(1, false), (2, true)]);
    }

    #[test]
    fn empty_set() {
        let set = LabelSet::default();
        assert!(set.is_empty());
        assert_eq!(set.num_defectors(), 0);
        assert_eq!(set.cohort_of(CustomerId::new(0)), None);
    }

    #[test]
    fn cohort_is_defector() {
        assert!(!Cohort::Loyal.is_defector());
        assert!(Cohort::Defector { onset_month: 0 }.is_defector());
    }
}
