//! Ground-truth cohort labels.
//!
//! The paper's retailer supplied "the IDs of loyal customers, and of loyal
//! customers that defected in the last 6 months". The simulator emits the
//! same two cohorts, exactly — with the defection onset month attached so
//! experiments can mark it on the time axis.

use attrition_types::CustomerId;

/// The cohort of one customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cohort {
    /// Behaviorally loyal throughout the observation period.
    Loyal,
    /// Loyal until `onset_month` (0-based month index relative to the
    /// observation start), partially defecting afterwards.
    Defector {
        /// First month of the defection.
        onset_month: u32,
    },
}

impl Cohort {
    /// True for the defector cohort.
    #[inline]
    pub fn is_defector(self) -> bool {
        matches!(self, Cohort::Defector { .. })
    }
}

/// One labeled customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomerLabel {
    /// The customer.
    pub customer: CustomerId,
    /// Their cohort.
    pub cohort: Cohort,
}

/// All labels of a generated population, sorted by customer id.
#[derive(Debug, Clone, Default)]
pub struct LabelSet {
    labels: Vec<CustomerLabel>,
}

impl LabelSet {
    /// Build from unsorted labels.
    pub fn new(mut labels: Vec<CustomerLabel>) -> LabelSet {
        labels.sort_by_key(|l| l.customer);
        LabelSet { labels }
    }

    /// Number of labeled customers.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no labels are present.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All labels, sorted by customer id.
    pub fn labels(&self) -> &[CustomerLabel] {
        &self.labels
    }

    /// The cohort of one customer, if labeled.
    pub fn cohort_of(&self, customer: CustomerId) -> Option<Cohort> {
        self.labels
            .binary_search_by_key(&customer, |l| l.customer)
            .ok()
            .map(|i| self.labels[i].cohort)
    }

    /// Number of defectors.
    pub fn num_defectors(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| l.cohort.is_defector())
            .count()
    }

    /// Number of loyal customers.
    pub fn num_loyal(&self) -> usize {
        self.len() - self.num_defectors()
    }

    /// Iterate over `(customer, is_defector)` pairs — the binary label
    /// stream evaluation consumes (defector = positive class).
    pub fn binary_labels(&self) -> impl Iterator<Item = (CustomerId, bool)> + '_ {
        self.labels
            .iter()
            .map(|l| (l.customer, l.cohort.is_defector()))
    }
}

/// How a scripted defection unfolds — the label-side mirror of
/// [`crate::events::DefectMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectionStyle {
    /// Paper-style partial defection: reduced but continuing activity.
    Partial,
    /// Ramp-down over several months, then a full stop.
    Gradual,
    /// Full stop in the onset month.
    Abrupt,
}

impl DefectionStyle {
    /// Stable lowercase name for logs and CSV.
    pub fn name(self) -> &'static str {
        match self {
            DefectionStyle::Partial => "partial",
            DefectionStyle::Gradual => "gradual",
            DefectionStyle::Abrupt => "abrupt",
        }
    }
}

/// One ground-truth label event, stamped with the logical month the
/// corresponding engine event fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelEvent {
    /// Month index (0-based from the observation start).
    pub month: u32,
    /// The customer.
    pub customer: CustomerId,
    /// What happened.
    pub kind: LabelEventKind,
}

/// The kind of a [`LabelEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelEventKind {
    /// Defection onset — detection latency is measured from this month.
    DefectionOnset(DefectionStyle),
    /// The customer stopped shopping entirely.
    Exit,
    /// A previously exited customer returned.
    Reacquisition,
}

/// Per-customer ground-truth summary assembled from the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruthRecord {
    /// The customer.
    pub customer: CustomerId,
    /// Defection onset month, if the customer ever defected.
    pub onset_month: Option<u32>,
    /// Style of the defection, if any.
    pub style: Option<DefectionStyle>,
    /// Month all shopping stopped, if it did.
    pub exit_month: Option<u32>,
    /// Month the customer was re-acquired, if they were.
    pub reacquired_month: Option<u32>,
}

impl TruthRecord {
    fn new(customer: CustomerId) -> TruthRecord {
        TruthRecord {
            customer,
            onset_month: None,
            style: None,
            exit_month: None,
            reacquired_month: None,
        }
    }
}

/// Exact ground truth of one scenario run: the ordered label-event
/// stream plus per-customer records derived from it. Every record field
/// corresponds to exactly one event (the label-invariant suite checks
/// this bijection).
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    events: Vec<LabelEvent>,
    records: Vec<TruthRecord>, // sorted by customer id
}

impl GroundTruth {
    /// An empty truth stream.
    pub fn new() -> GroundTruth {
        GroundTruth::default()
    }

    fn record_mut(&mut self, customer: CustomerId) -> &mut TruthRecord {
        let idx = match self.records.binary_search_by_key(&customer, |r| r.customer) {
            Ok(i) => i,
            Err(i) => {
                self.records.insert(i, TruthRecord::new(customer));
                i
            }
        };
        &mut self.records[idx]
    }

    /// Record a defection onset. Idempotent per customer: only the first
    /// onset is kept (the engine never fires two, but scripted scenarios
    /// guard here too).
    pub fn record_onset(&mut self, month: u32, customer: CustomerId, style: DefectionStyle) {
        let record = self.record_mut(customer);
        if record.onset_month.is_some() {
            return;
        }
        record.onset_month = Some(month);
        record.style = Some(style);
        self.events.push(LabelEvent {
            month,
            customer,
            kind: LabelEventKind::DefectionOnset(style),
        });
    }

    /// Record a full shopping stop.
    pub fn record_exit(&mut self, month: u32, customer: CustomerId) {
        let record = self.record_mut(customer);
        if record.exit_month.is_some() {
            return;
        }
        record.exit_month = Some(month);
        self.events.push(LabelEvent {
            month,
            customer,
            kind: LabelEventKind::Exit,
        });
    }

    /// Record a re-acquisition.
    pub fn record_reacquire(&mut self, month: u32, customer: CustomerId) {
        let record = self.record_mut(customer);
        if record.reacquired_month.is_some() {
            return;
        }
        record.reacquired_month = Some(month);
        self.events.push(LabelEvent {
            month,
            customer,
            kind: LabelEventKind::Reacquisition,
        });
    }

    /// The label events in the order they were recorded (= engine event
    /// order, which is deterministic).
    pub fn events(&self) -> &[LabelEvent] {
        &self.events
    }

    /// Per-customer records, sorted by customer id.
    pub fn records(&self) -> &[TruthRecord] {
        &self.records
    }

    /// The record of one customer, if any event touched them.
    pub fn record_of(&self, customer: CustomerId) -> Option<&TruthRecord> {
        self.records
            .binary_search_by_key(&customer, |r| r.customer)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Number of customers with a defection onset.
    pub fn num_defectors(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.onset_month.is_some())
            .count()
    }

    /// Collapse to the binary cohort [`LabelSet`] the eval pipeline
    /// consumes, covering every customer in `all_customers`.
    pub fn label_set(&self, all_customers: impl Iterator<Item = CustomerId>) -> LabelSet {
        let labels = all_customers
            .map(|customer| {
                let cohort = match self.record_of(customer).and_then(|r| r.onset_month) {
                    Some(onset_month) => Cohort::Defector { onset_month },
                    None => Cohort::Loyal,
                };
                CustomerLabel { customer, cohort }
            })
            .collect();
        LabelSet::new(labels)
    }

    /// Serialize the event stream as CSV (`month,customer,event`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("month,customer,event\n");
        for e in &self.events {
            let kind = match e.kind {
                LabelEventKind::DefectionOnset(style) => format!("onset:{}", style.name()),
                LabelEventKind::Exit => "exit".to_string(),
                LabelEventKind::Reacquisition => "reacquire".to_string(),
            };
            out.push_str(&format!("{},{},{}\n", e.month, e.customer.raw(), kind));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(id: u64, cohort: Cohort) -> CustomerLabel {
        CustomerLabel {
            customer: CustomerId::new(id),
            cohort,
        }
    }

    #[test]
    fn sorted_on_build_and_lookup() {
        let set = LabelSet::new(vec![
            label(5, Cohort::Loyal),
            label(1, Cohort::Defector { onset_month: 18 }),
            label(3, Cohort::Loyal),
        ]);
        assert_eq!(set.len(), 3);
        assert_eq!(
            set.cohort_of(CustomerId::new(1)),
            Some(Cohort::Defector { onset_month: 18 })
        );
        assert_eq!(set.cohort_of(CustomerId::new(3)), Some(Cohort::Loyal));
        assert_eq!(set.cohort_of(CustomerId::new(2)), None);
        let ids: Vec<u64> = set.labels().iter().map(|l| l.customer.raw()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn cohort_counts() {
        let set = LabelSet::new(vec![
            label(1, Cohort::Defector { onset_month: 10 }),
            label(2, Cohort::Loyal),
            label(3, Cohort::Defector { onset_month: 12 }),
        ]);
        assert_eq!(set.num_defectors(), 2);
        assert_eq!(set.num_loyal(), 1);
    }

    #[test]
    fn binary_labels_stream() {
        let set = LabelSet::new(vec![
            label(1, Cohort::Loyal),
            label(2, Cohort::Defector { onset_month: 3 }),
        ]);
        let pairs: Vec<(u64, bool)> = set.binary_labels().map(|(c, d)| (c.raw(), d)).collect();
        assert_eq!(pairs, vec![(1, false), (2, true)]);
    }

    #[test]
    fn empty_set() {
        let set = LabelSet::default();
        assert!(set.is_empty());
        assert_eq!(set.num_defectors(), 0);
        assert_eq!(set.cohort_of(CustomerId::new(0)), None);
    }

    #[test]
    fn cohort_is_defector() {
        assert!(!Cohort::Loyal.is_defector());
        assert!(Cohort::Defector { onset_month: 0 }.is_defector());
    }

    #[test]
    fn ground_truth_event_record_bijection() {
        let mut truth = GroundTruth::new();
        truth.record_onset(5, CustomerId::new(2), DefectionStyle::Gradual);
        truth.record_exit(9, CustomerId::new(2));
        truth.record_onset(3, CustomerId::new(7), DefectionStyle::Abrupt);
        truth.record_exit(3, CustomerId::new(7));
        truth.record_reacquire(8, CustomerId::new(7));
        assert_eq!(truth.events().len(), 5);
        assert_eq!(truth.num_defectors(), 2);
        let r2 = truth.record_of(CustomerId::new(2)).unwrap();
        assert_eq!(r2.onset_month, Some(5));
        assert_eq!(r2.style, Some(DefectionStyle::Gradual));
        assert_eq!(r2.exit_month, Some(9));
        assert_eq!(r2.reacquired_month, None);
        let r7 = truth.record_of(CustomerId::new(7)).unwrap();
        assert_eq!(r7.exit_month, Some(3));
        assert_eq!(r7.reacquired_month, Some(8));
        assert!(truth.record_of(CustomerId::new(0)).is_none());
    }

    #[test]
    fn ground_truth_is_idempotent() {
        let mut truth = GroundTruth::new();
        truth.record_onset(5, CustomerId::new(1), DefectionStyle::Abrupt);
        truth.record_onset(6, CustomerId::new(1), DefectionStyle::Gradual);
        truth.record_exit(5, CustomerId::new(1));
        truth.record_exit(7, CustomerId::new(1));
        assert_eq!(truth.events().len(), 2);
        let r = truth.record_of(CustomerId::new(1)).unwrap();
        assert_eq!(r.onset_month, Some(5));
        assert_eq!(r.style, Some(DefectionStyle::Abrupt));
        assert_eq!(r.exit_month, Some(5));
    }

    #[test]
    fn ground_truth_label_set() {
        let mut truth = GroundTruth::new();
        truth.record_onset(4, CustomerId::new(1), DefectionStyle::Partial);
        let set = truth.label_set((0..3).map(CustomerId::new));
        assert_eq!(set.len(), 3);
        assert_eq!(
            set.cohort_of(CustomerId::new(1)),
            Some(Cohort::Defector { onset_month: 4 })
        );
        assert_eq!(set.cohort_of(CustomerId::new(0)), Some(Cohort::Loyal));
        assert_eq!(set.num_defectors(), 1);
    }

    #[test]
    fn ground_truth_csv() {
        let mut truth = GroundTruth::new();
        truth.record_onset(4, CustomerId::new(9), DefectionStyle::Gradual);
        truth.record_exit(8, CustomerId::new(9));
        truth.record_reacquire(11, CustomerId::new(9));
        assert_eq!(
            truth.to_csv(),
            "month,customer,event\n4,9,onset:gradual\n8,9,exit\n11,9,reacquire\n"
        );
    }
}
