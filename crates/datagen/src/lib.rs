//! # attrition-datagen
//!
//! A synthetic grocery-retail simulator, standing in for the proprietary
//! dataset of the paper ("anonymized receipts of 6 millions customers,
//! from May 2012 to August 2014 ... 4 millions products, that are grouped
//! into 3 388 segments", provided by a major French retailer).
//!
//! The stability model consumes only `(customer, timestamp, item-set)`
//! triples, so what the substitution must preserve is the *behavioral
//! structure* the paper's evaluation relies on:
//!
//! 1. loyal customers keep a stable item repertoire, revisiting their core
//!    products with high per-trip probability plus exploration noise;
//! 2. partial defectors behave identically until a known onset month, then
//!    progressively stop buying their established products and shop less
//!    often — grocery attrition is partial, not contract-cancelling;
//! 3. cohort labels (loyal / defected in the last 6 months) with the onset
//!    marked on the time axis, matching Figure 1's vertical line.
//!
//! Pipeline: [`catalog`] generates a named product/segment taxonomy;
//! [`population`] draws customer [`profile`]s (defectors get a
//! [`defection`] plan); [`simulate`] plays the population month by month
//! (with [`seasonality`]) into a columnar
//! [`ReceiptStore`](attrition_store::ReceiptStore); [`scenario`] bundles
//! presets, including [`scenario::ScenarioConfig::paper_default`].
//!
//! Everything is driven by the workspace's deterministic PRNG: the same
//! seed reproduces the same dataset byte-for-byte, forever.

pub mod agents;
pub mod catalog;
pub mod defection;
pub mod events;
pub mod labels;
pub mod population;
pub mod profile;
pub mod scenario;
pub mod seasonality;
pub mod simulate;

pub use agents::{Agent, AgentConfig, AgentPopulation, AgentSegment};
pub use catalog::{generate_catalog, CatalogConfig};
pub use defection::DefectionPlan;
pub use events::{Actor, DefectMode, Event, EventKind, EventQueue, Phase};
pub use labels::{
    Cohort, CustomerLabel, DefectionStyle, GroundTruth, LabelEvent, LabelEventKind, LabelSet,
    TruthRecord,
};
pub use population::{BehaviorConfig, Population, PopulationConfig};
pub use profile::{CustomerProfile, PreferredItem, TripDecay};
pub use scenario::{
    figure2_customer, generate, run_scenario, GeneratedDataset, ScenarioConfig, ScenarioId,
    ScenarioRun,
};
pub use seasonality::Seasonality;
pub use simulate::Simulator;
