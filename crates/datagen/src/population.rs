//! Population sampling: drawing customer profiles.
//!
//! A population is `n_loyal` loyal profiles plus `n_defectors` profiles
//! that were loyal until the scenario's onset month and then follow a
//! [`DefectionPlan`]. Profile construction:
//!
//! * the customer's **core repertoire** is a set of segments drawn from a
//!   Zipf over the catalog's segment order (early segments — coffee, milk,
//!   cheese… — are population-wide staples), with one or occasionally two
//!   products per chosen segment (Zipf within the segment);
//! * each core item gets a per-trip purchase probability spread over a
//!   configurable band, so repertoires mix near-every-trip staples with
//!   occasional purchases — which is exactly what makes the paper's
//!   significance weights α^(c−l) informative;
//! * the trip rate and exploration rate are drawn per customer.

use crate::defection::DefectionPlan;
use crate::labels::{Cohort, CustomerLabel, LabelSet};
use crate::profile::{CustomerProfile, PreferredItem};
use attrition_types::{CustomerId, Taxonomy};
use attrition_util::{Rng, Zipf};

/// Behavioral knobs shared by every sampled customer.
#[derive(Debug, Clone)]
pub struct BehaviorConfig {
    /// Inclusive range of the number of core segments per customer.
    pub core_segments: (usize, usize),
    /// Probability that a core segment contributes a second product.
    pub second_product_prob: f64,
    /// Band of per-trip purchase probabilities (highest-affinity item
    /// first; the band is swept linearly across the repertoire).
    pub per_trip_prob: (f64, f64),
    /// Inclusive range of mean shopping trips per month.
    pub trips_per_month: (f64, f64),
    /// Inclusive range of the exploration (noise) rate: mean non-core
    /// items added per trip.
    pub exploration_rate: (f64, f64),
    /// Zipf exponent over segments (population-level staple skew).
    pub segment_zipf_s: f64,
    /// Zipf exponent over products within a segment.
    pub item_zipf_s: f64,
    /// Inclusive range of the per-item monthly brand-switch probability
    /// (switching to a sibling product of the same segment).
    pub brand_switch_prob: (f64, f64),
    /// Late joiners: `Some((fraction, max_entry_month))` gives that
    /// fraction of customers a uniformly drawn entry month in
    /// `1..=max_entry_month`; `None` starts everyone at month 0.
    pub late_join: Option<(f64, u32)>,
}

impl Default for BehaviorConfig {
    fn default() -> BehaviorConfig {
        BehaviorConfig {
            core_segments: (12, 28),
            second_product_prob: 0.2,
            per_trip_prob: (0.35, 0.92),
            trips_per_month: (2.5, 6.0),
            exploration_rate: (0.6, 2.0),
            segment_zipf_s: 0.9,
            item_zipf_s: 1.1,
            brand_switch_prob: (0.0, 0.03),
            late_join: None,
        }
    }
}

/// Size and defection parameters of a population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of loyal customers (ids `0..n_loyal`).
    pub n_loyal: usize,
    /// Number of defectors (ids `n_loyal..n_loyal+n_defectors`).
    pub n_defectors: usize,
    /// Shared behavior knobs.
    pub behavior: BehaviorConfig,
    /// Plan applied to every defector.
    pub defection: DefectionPlan,
}

/// A sampled population: profiles plus ground-truth labels.
#[derive(Debug, Clone)]
pub struct Population {
    /// One profile per customer, in id order.
    pub profiles: Vec<CustomerProfile>,
    /// Ground-truth cohort labels.
    pub labels: LabelSet,
}

impl Population {
    /// Sample a population from `cfg` against `taxonomy`.
    ///
    /// Each customer is generated from an independent child stream keyed
    /// by their id, so profiles do not depend on generation order.
    pub fn generate(cfg: &PopulationConfig, taxonomy: &Taxonomy, seed: u64) -> Population {
        let n_total = cfg.n_loyal + cfg.n_defectors;
        let segment_zipf = Zipf::new(taxonomy.num_segments(), cfg.behavior.segment_zipf_s);
        let mut profiles = Vec::with_capacity(n_total);
        let mut labels = Vec::with_capacity(n_total);
        for raw_id in 0..n_total as u64 {
            let customer = CustomerId::new(raw_id);
            // Independent stream per customer: seed mixed with the id.
            let mut rng = Rng::seed_from_u64(seed ^ raw_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut profile =
                sample_profile(customer, taxonomy, &cfg.behavior, &segment_zipf, &mut rng);
            let cohort = if raw_id < cfg.n_loyal as u64 {
                Cohort::Loyal
            } else {
                cfg.defection.apply(&mut profile, &mut rng);
                Cohort::Defector {
                    onset_month: cfg.defection.onset_month,
                }
            };
            labels.push(CustomerLabel { customer, cohort });
            profiles.push(profile);
        }
        Population {
            profiles,
            labels: LabelSet::new(labels),
        }
    }
}

/// Sample one loyal profile. Shared with the agent layer
/// ([`crate::agents`]), which draws typed properties from separate
/// streams on top.
pub(crate) fn sample_profile(
    customer: CustomerId,
    taxonomy: &Taxonomy,
    behavior: &BehaviorConfig,
    segment_zipf: &Zipf,
    rng: &mut Rng,
) -> CustomerProfile {
    let (seg_lo, seg_hi) = behavior.core_segments;
    assert!(
        seg_lo >= 1 && seg_hi >= seg_lo,
        "invalid core_segments range"
    );
    let target_segments = rng.i64_in(seg_lo as i64, seg_hi as i64) as usize;
    let target_segments = target_segments.min(taxonomy.num_segments());

    // Draw distinct core segments from the population-level Zipf.
    let mut chosen = Vec::with_capacity(target_segments);
    let mut seen = vec![false; taxonomy.num_segments()];
    let mut attempts = 0usize;
    while chosen.len() < target_segments && attempts < target_segments * 64 {
        attempts += 1;
        let s = segment_zipf.sample(rng);
        if !seen[s] {
            seen[s] = true;
            chosen.push(attrition_types::SegmentId::new(s as u32));
        }
    }
    // Fallback: fill with the first unchosen segments if the Zipf kept
    // colliding (only reachable with tiny catalogs).
    for (s, taken) in seen.iter_mut().enumerate() {
        if chosen.len() >= target_segments {
            break;
        }
        if !*taken {
            *taken = true;
            chosen.push(attrition_types::SegmentId::new(s as u32));
        }
    }

    // Pick products within each chosen segment.
    let mut items = Vec::with_capacity(chosen.len() + 4);
    for seg in &chosen {
        let products = taxonomy
            .products_in(*seg)
            .expect("segment drawn from the taxonomy");
        let within = Zipf::new(products.len(), behavior.item_zipf_s);
        let first = products[within.sample(rng)];
        items.push(first);
        if products.len() > 1 && rng.bernoulli(behavior.second_product_prob) {
            let second = products[within.sample(rng)];
            if second != first {
                items.push(second);
            }
        }
    }

    // Spread per-trip probabilities across the repertoire: first items get
    // the top of the band (staples), later ones the bottom, with jitter.
    let (p_lo, p_hi) = behavior.per_trip_prob;
    let n = items.len().max(1);
    let preferred = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| {
            let frac = if n == 1 {
                0.0
            } else {
                i as f64 / (n - 1) as f64
            };
            let base = p_hi - (p_hi - p_lo) * frac;
            let jitter = 0.05 * rng.normal();
            PreferredItem {
                item,
                per_trip_prob: (base + jitter).clamp(0.05, 0.98),
                drop_month: None,
            }
        })
        .collect();

    let entry_month = match behavior.late_join {
        Some((fraction, max_entry)) if max_entry > 0 && rng.bernoulli(fraction) => {
            rng.i64_in(1, max_entry as i64) as u32
        }
        _ => 0,
    };
    CustomerProfile {
        customer,
        trips_per_month: rng.f64_in(behavior.trips_per_month.0, behavior.trips_per_month.1),
        preferred,
        exploration_rate: rng.f64_in(behavior.exploration_rate.0, behavior.exploration_rate.1),
        trip_decay: None,
        brand_switch_prob: rng.f64_in(behavior.brand_switch_prob.0, behavior.brand_switch_prob.1),
        entry_month,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_catalog, CatalogConfig};

    fn taxonomy() -> Taxonomy {
        generate_catalog(&CatalogConfig::default(), &mut Rng::seed_from_u64(1))
    }

    fn config(n_loyal: usize, n_defectors: usize) -> PopulationConfig {
        PopulationConfig {
            n_loyal,
            n_defectors,
            behavior: BehaviorConfig::default(),
            defection: DefectionPlan::standard(18),
        }
    }

    #[test]
    fn sizes_and_cohorts() {
        let tax = taxonomy();
        let pop = Population::generate(&config(30, 20), &tax, 7);
        assert_eq!(pop.profiles.len(), 50);
        assert_eq!(pop.labels.num_loyal(), 30);
        assert_eq!(pop.labels.num_defectors(), 20);
        // Loyal profiles carry no defection machinery; defectors do.
        for p in &pop.profiles[..30] {
            assert!(!p.is_defector_profile(), "customer {}", p.customer);
        }
        for p in &pop.profiles[30..] {
            assert!(p.is_defector_profile(), "customer {}", p.customer);
        }
    }

    #[test]
    fn repertoire_sizes_in_range() {
        let tax = taxonomy();
        let pop = Population::generate(&config(40, 0), &tax, 8);
        for p in &pop.profiles {
            // 12..=28 core segments, each contributing 1–2 products.
            assert!(
                (12..=56).contains(&p.preferred.len()),
                "repertoire size {}",
                p.preferred.len()
            );
            for item in &p.preferred {
                assert!((0.05..=0.98).contains(&item.per_trip_prob));
            }
        }
    }

    #[test]
    fn first_item_is_a_staple() {
        let tax = taxonomy();
        let pop = Population::generate(&config(20, 0), &tax, 9);
        for p in &pop.profiles {
            let first = p.preferred.first().unwrap().per_trip_prob;
            let last = p.preferred.last().unwrap().per_trip_prob;
            assert!(
                first > last - 0.2,
                "expected descending probability band: {first} vs {last}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let tax = taxonomy();
        let a = Population::generate(&config(10, 10), &tax, 99);
        let b = Population::generate(&config(10, 10), &tax, 99);
        assert_eq!(a.profiles, b.profiles);
        let c = Population::generate(&config(10, 10), &tax, 100);
        assert_ne!(a.profiles, c.profiles);
    }

    #[test]
    fn profiles_independent_of_population_size() {
        // Customer 5's profile must be identical whether the population
        // has 10 or 100 members (independent per-customer streams).
        let tax = taxonomy();
        let small = Population::generate(&config(10, 0), &tax, 5);
        let large = Population::generate(&config(100, 0), &tax, 5);
        assert_eq!(small.profiles[5], large.profiles[5]);
    }

    #[test]
    fn core_segments_are_distinct() {
        let tax = taxonomy();
        let pop = Population::generate(&config(10, 0), &tax, 11);
        for p in &pop.profiles {
            let mut segs: Vec<u32> = p
                .preferred
                .iter()
                .map(|i| tax.segment_of(i.item).unwrap().raw())
                .collect();
            segs.sort_unstable();
            // Each segment contributes at most 2 products.
            let mut counts = std::collections::HashMap::new();
            for s in segs {
                *counts.entry(s).or_insert(0usize) += 1;
            }
            assert!(counts.values().all(|&c| c <= 2));
        }
    }

    #[test]
    fn tiny_catalog_does_not_hang() {
        let tax = generate_catalog(
            &CatalogConfig {
                n_segments: 3,
                mean_products_per_segment: 1.0,
                ..CatalogConfig::default()
            },
            &mut Rng::seed_from_u64(2),
        );
        let pop = Population::generate(&config(5, 0), &tax, 1);
        for p in &pop.profiles {
            assert!(p.preferred.len() <= 6);
            assert!(!p.preferred.is_empty());
        }
    }
}
