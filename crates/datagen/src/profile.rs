//! Customer behavior profiles.
//!
//! A [`CustomerProfile`] is the generative model of one customer: how
//! often they shop (Poisson trips per month), which items form their core
//! repertoire and with what per-trip purchase probability, how much they
//! explore outside it, and — for defectors — when each core item is lost
//! (see [`crate::defection`]).

use attrition_types::{CustomerId, ItemId};

/// One item of a customer's core repertoire.
#[derive(Debug, Clone, PartialEq)]
pub struct PreferredItem {
    /// The product.
    pub item: ItemId,
    /// Probability of putting the item in the basket on any given trip
    /// (before defection).
    pub per_trip_prob: f64,
    /// Month index (0-based, relative to the observation start) from which
    /// the customer no longer buys the item; `None` = never lost.
    pub drop_month: Option<u32>,
}

impl PreferredItem {
    /// The effective per-trip probability during `month`.
    #[inline]
    pub fn prob_in_month(&self, month: u32) -> f64 {
        match self.drop_month {
            Some(m) if month >= m => 0.0,
            _ => self.per_trip_prob,
        }
    }
}

/// The generative model of one simulated customer.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomerProfile {
    /// The customer.
    pub customer: CustomerId,
    /// Mean shopping trips per month (before seasonality/defection).
    pub trips_per_month: f64,
    /// Core repertoire with per-trip probabilities.
    pub preferred: Vec<PreferredItem>,
    /// Mean number of exploration (non-core) items added per trip,
    /// sampled from the global catalog popularity distribution.
    pub exploration_rate: f64,
    /// Monthly multiplicative decay of the trip rate after `trip_decay`'s
    /// onset; `None` for customers whose trip frequency never decays.
    pub trip_decay: Option<TripDecay>,
    /// Probability, per core item per month, of permanently switching to
    /// a sibling product of the same segment (brand switching). The
    /// customer's *need* stays served — which is exactly why the paper
    /// models at segment granularity; the granularity ablation quantifies
    /// it.
    pub brand_switch_prob: f64,
    /// First month (0-based) the customer is active; `0` for customers
    /// present from the observation start. Late joiners make the window
    /// alignment choice (global vs per-customer) consequential.
    pub entry_month: u32,
}

/// Post-onset multiplicative decay of the shopping-trip rate — the
/// "shops less and less often" half of partial defection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripDecay {
    /// Month (0-based) the decay starts.
    pub onset_month: u32,
    /// Multiplier applied for every month elapsed past the onset
    /// (e.g. `0.85` → rate × 0.85^(months past onset)).
    pub monthly_factor: f64,
}

impl CustomerProfile {
    /// The effective mean trip rate during `month` (seasonality excluded —
    /// the simulator applies it on top). Zero before the entry month.
    pub fn trip_rate_in_month(&self, month: u32) -> f64 {
        if month < self.entry_month {
            return 0.0;
        }
        let mut rate = self.trips_per_month;
        if let Some(decay) = self.trip_decay {
            if month >= decay.onset_month {
                let elapsed = (month - decay.onset_month + 1) as i32;
                rate *= decay.monthly_factor.powi(elapsed);
            }
        }
        rate
    }

    /// True if any core item carries a drop month or the trip rate decays
    /// — i.e. the profile was injected with defection behavior.
    pub fn is_defector_profile(&self) -> bool {
        self.trip_decay.is_some() || self.preferred.iter().any(|p| p.drop_month.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(raw: u32, p: f64, drop: Option<u32>) -> PreferredItem {
        PreferredItem {
            item: ItemId::new(raw),
            per_trip_prob: p,
            drop_month: drop,
        }
    }

    #[test]
    fn prob_in_month_respects_drop() {
        let pi = item(1, 0.8, Some(18));
        assert_eq!(pi.prob_in_month(0), 0.8);
        assert_eq!(pi.prob_in_month(17), 0.8);
        assert_eq!(pi.prob_in_month(18), 0.0);
        assert_eq!(pi.prob_in_month(25), 0.0);
        let keeps = item(1, 0.8, None);
        assert_eq!(keeps.prob_in_month(100), 0.8);
    }

    #[test]
    fn trip_rate_decay() {
        let p = CustomerProfile {
            customer: CustomerId::new(1),
            trips_per_month: 4.0,
            preferred: vec![],
            exploration_rate: 1.0,
            trip_decay: Some(TripDecay {
                onset_month: 10,
                monthly_factor: 0.5,
            }),
            brand_switch_prob: 0.0,
            entry_month: 0,
        };
        assert_eq!(p.trip_rate_in_month(9), 4.0);
        assert!((p.trip_rate_in_month(10) - 2.0).abs() < 1e-12);
        assert!((p.trip_rate_in_month(12) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_decay_profile() {
        let p = CustomerProfile {
            customer: CustomerId::new(1),
            trips_per_month: 3.0,
            preferred: vec![item(1, 0.5, None)],
            exploration_rate: 0.5,
            trip_decay: None,
            brand_switch_prob: 0.0,
            entry_month: 0,
        };
        assert_eq!(p.trip_rate_in_month(27), 3.0);
        assert!(!p.is_defector_profile());
    }

    #[test]
    fn entry_month_gates_trips() {
        let p = CustomerProfile {
            customer: CustomerId::new(1),
            trips_per_month: 4.0,
            preferred: vec![],
            exploration_rate: 0.0,
            trip_decay: None,
            brand_switch_prob: 0.0,
            entry_month: 6,
        };
        assert_eq!(p.trip_rate_in_month(5), 0.0);
        assert_eq!(p.trip_rate_in_month(6), 4.0);
    }

    #[test]
    fn defector_detection() {
        let by_drop = CustomerProfile {
            customer: CustomerId::new(1),
            trips_per_month: 3.0,
            preferred: vec![item(1, 0.5, Some(2))],
            exploration_rate: 0.0,
            trip_decay: None,
            brand_switch_prob: 0.0,
            entry_month: 0,
        };
        assert!(by_drop.is_defector_profile());
        let by_decay = CustomerProfile {
            customer: CustomerId::new(2),
            trips_per_month: 3.0,
            preferred: vec![],
            exploration_rate: 0.0,
            trip_decay: Some(TripDecay {
                onset_month: 0,
                monthly_factor: 0.9,
            }),
            brand_switch_prob: 0.0,
            entry_month: 0,
        };
        assert!(by_decay.is_defector_profile());
    }
}
