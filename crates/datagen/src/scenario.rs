//! End-to-end dataset scenarios.
//!
//! A [`ScenarioConfig`] bundles every generator knob; [`generate`] runs
//! catalog → population → simulation and returns the full
//! [`GeneratedDataset`]. [`ScenarioConfig::paper_default`] mirrors the
//! paper's setting: observation from May 2012, 28 months (through August
//! 2014), defection onset at month 18 (Figure 1's vertical line), balanced
//! loyal/defector cohorts.
//!
//! [`figure2_customer`] builds the scripted defector of the paper's
//! Figure 2: a customer who stops buying **coffee** in month 20 and
//! **milk, sponges and cheese** in month 22.

use crate::agents::{AgentConfig, AgentPopulation};
use crate::catalog::{generate_catalog, CatalogConfig};
use crate::defection::DefectionPlan;
use crate::events::{Actor, DefectMode, Event, EventKind, EventQueue, Phase};
use crate::labels::{Cohort, DefectionStyle, GroundTruth, LabelSet};
use crate::population::{BehaviorConfig, Population, PopulationConfig};
use crate::profile::{CustomerProfile, PreferredItem, TripDecay};
use crate::seasonality::Seasonality;
use crate::simulate::{simulate_customer_month, MonthContext, Simulator};
use attrition_store::{ReceiptStore, ReceiptStoreBuilder, WindowSpec};
use attrition_types::{CustomerId, Date, ItemId, Taxonomy};
use attrition_util::{Rng, Zipf};

/// Full configuration of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// First day of the observation period.
    pub start: Date,
    /// Observation length in months.
    pub n_months: u32,
    /// Loyal cohort size.
    pub n_loyal: usize,
    /// Defector cohort size.
    pub n_defectors: usize,
    /// Month (0-based) the defectors' attrition starts.
    pub onset_month: u32,
    /// Catalog generator knobs.
    pub catalog: CatalogConfig,
    /// Customer behavior knobs.
    pub behavior: BehaviorConfig,
    /// Defection plan template (its `onset_month` is overwritten by
    /// `self.onset_month`).
    pub defection: DefectionPlan,
    /// Seasonality profile.
    pub seasonality: Seasonality,
}

impl ScenarioConfig {
    /// The paper-shaped default: May 2012 start, 28 months, onset at
    /// month 18, balanced cohorts of 600, default catalog/behavior.
    ///
    /// The paper's population is 6M customers; 600+600 is enough for
    /// stable AUROC estimates while keeping every experiment laptop-fast.
    /// Scale `n_loyal`/`n_defectors` up freely — the scalability bench
    /// does.
    pub fn paper_default() -> ScenarioConfig {
        ScenarioConfig {
            seed: 0x00A7_7121_7102,
            start: Date::from_ymd(2012, 5, 1).expect("valid date"),
            n_months: 28,
            n_loyal: 600,
            n_defectors: 600,
            onset_month: 18,
            catalog: CatalogConfig::default(),
            behavior: BehaviorConfig::default(),
            defection: DefectionPlan::standard(18),
            seasonality: Seasonality::grocery_default(),
        }
    }

    /// A small, fast scenario for tests and examples (60+60 customers,
    /// 16 months, onset at month 10, 40-segment catalog).
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7,
            start: Date::from_ymd(2012, 5, 1).expect("valid date"),
            n_months: 16,
            n_loyal: 60,
            n_defectors: 60,
            onset_month: 10,
            catalog: CatalogConfig {
                n_segments: 40,
                mean_products_per_segment: 5.0,
                ..CatalogConfig::default()
            },
            behavior: BehaviorConfig::default(),
            defection: DefectionPlan::standard(10),
            seasonality: Seasonality::grocery_default(),
        }
    }

    /// The paper's window grid for this scenario: `w_months`-month
    /// windows anchored at the observation start.
    pub fn window_spec(&self, w_months: u32) -> WindowSpec {
        WindowSpec::months(self.start, w_months)
    }

    /// Number of `w_months`-month windows in the observation period.
    pub fn num_windows(&self, w_months: u32) -> u32 {
        self.n_months.div_ceil(w_months)
    }

    /// The window containing the defection onset.
    pub fn onset_window(&self, w_months: u32) -> u32 {
        self.onset_month / w_months
    }

    /// Validate the configuration's cross-field invariants.
    ///
    /// # Errors
    /// Returns the first violated invariant. [`generate`] calls this and
    /// panics on violation (configs are developer input, not user data;
    /// the CLI validates before calling).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_months == 0 {
            return Err("observation period must be at least one month".into());
        }
        if self.n_defectors > 0 && self.onset_month >= self.n_months {
            return Err(format!(
                "defection onset (month {}) must precede the end of the observation ({} months)",
                self.onset_month, self.n_months
            ));
        }
        if self.n_loyal + self.n_defectors == 0 {
            return Err("population must contain at least one customer".into());
        }
        if self.catalog.n_segments == 0 {
            return Err("catalog must contain at least one segment".into());
        }
        Ok(())
    }
}

/// A fully generated dataset.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The configuration that produced it.
    pub config: ScenarioConfig,
    /// Product taxonomy.
    pub taxonomy: Taxonomy,
    /// Product-granularity receipts.
    pub store: ReceiptStore,
    /// Ground-truth cohort labels.
    pub labels: LabelSet,
    /// The generated profiles (kept for white-box tests and the Figure 2
    /// case study).
    pub profiles: Vec<CustomerProfile>,
}

impl GeneratedDataset {
    /// Receipts projected to segment granularity (the level the paper's
    /// experiments run at).
    pub fn segment_store(&self) -> ReceiptStore {
        attrition_store::project_to_segments(&self.store, &self.taxonomy)
            .expect("generated receipts reference only cataloged products")
    }
}

/// Run a scenario end to end.
///
/// # Panics
/// On an invalid configuration (see [`ScenarioConfig::validate`]).
pub fn generate(config: &ScenarioConfig) -> GeneratedDataset {
    if let Err(message) = config.validate() {
        panic!("invalid scenario: {message}");
    }
    let mut rng = Rng::seed_from_u64(config.seed);
    let taxonomy = generate_catalog(&config.catalog, &mut rng);
    let defection = DefectionPlan {
        onset_month: config.onset_month,
        ..config.defection.clone()
    };
    let population = Population::generate(
        &PopulationConfig {
            n_loyal: config.n_loyal,
            n_defectors: config.n_defectors,
            behavior: config.behavior.clone(),
            defection,
        },
        &taxonomy,
        config.seed ^ 0x5EED_5EED,
    );
    let simulator = Simulator::new(
        config.start,
        config.n_months,
        config.seasonality.clone(),
        config.seed ^ 0x51_4D_55_4C,
    );
    let store = simulator.run(&population.profiles, &taxonomy);
    GeneratedDataset {
        config: config.clone(),
        taxonomy,
        store,
        labels: population.labels,
        profiles: population.profiles,
    }
}

/// Build the scripted defector of the paper's Figure 2 against a
/// catalog: a reliable shopper with a broad repertoire who stops buying
/// **coffee** in month `coffee_loss_month` (20 in the paper) and **milk,
/// sponges and cheese** two months later.
///
/// Returns the profile; give it a fresh customer id not used by the rest
/// of the population and simulate it alongside them.
pub fn figure2_customer(
    taxonomy: &Taxonomy,
    customer: CustomerId,
    coffee_loss_month: u32,
) -> CustomerProfile {
    let must_have = ["coffee", "milk", "cheese", "sponges"];
    let mut preferred = Vec::new();
    for (idx, name) in must_have.iter().enumerate() {
        let seg = taxonomy
            .segment_by_name(name)
            .unwrap_or_else(|| panic!("catalog lacks the {name} segment"));
        let product = taxonomy.products_in(seg).expect("segment exists")[0];
        let drop = if idx == 0 {
            Some(coffee_loss_month) // coffee
        } else {
            Some(coffee_loss_month + 2) // milk, cheese, sponges
        };
        preferred.push(PreferredItem {
            item: product,
            per_trip_prob: 0.9,
            drop_month: drop,
        });
    }
    // A small stable background repertoire that is never lost. Kept
    // deliberately compact so the four scripted losses account for a
    // large share of the total significance — the paper's example shows
    // a visible dip at the coffee loss and a sharp fall at the
    // milk/sponge/cheese loss.
    let background = ["bread", "butter", "eggs", "yogurt"];
    for name in background {
        if let Some(seg) = taxonomy.segment_by_name(name) {
            let product = taxonomy.products_in(seg).expect("segment exists")[0];
            preferred.push(PreferredItem {
                item: product,
                per_trip_prob: 0.9,
                drop_month: None,
            });
        }
    }
    CustomerProfile {
        customer,
        trips_per_month: 4.5,
        preferred,
        // No exploration: the catalog's most popular segments are the
        // very ones this customer loses, so at segment granularity even a
        // rare exploration draw would mask the scripted losses. The paper
        // likewise hand-picked a clean illustrative customer. Brand
        // switching stays off for the same reason.
        exploration_rate: 0.0,
        trip_decay: None,
        brand_switch_prob: 0.0,
        entry_month: 0,
    }
}

// ---------------------------------------------------------------------------
// Scenario library: the discrete-event engine and its named scenarios.
// ---------------------------------------------------------------------------

/// Stream label for the world-scripting RNG (defector selection, onset
/// stagger, co-shopping follow draws…). Consumed strictly in event pop
/// order, so one seed reproduces the whole script.
const WORLD_STREAM: u64 = 0x0005_CE4A_A105_7A6E;
/// Stream label for build-time scenario planning (who is scripted to
/// defect and when).
const PLAN_STREAM: u64 = 0x91A4_00FF_5EED;

/// A named scenario in the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioId {
    /// The paper's setting run through the event engine: partial
    /// defection at a fixed onset, byte-identical trips to [`generate`].
    Baseline,
    /// A promotion window boosts price-sensitive activity right before a
    /// wave of abrupt defections — activity confounds the signal.
    PromoShock,
    /// One store closes: displaced regulars shop less while re-homing
    /// and half of them exit outright.
    StoreClosure,
    /// A competitor opens: price-sensitive agents defect with
    /// sensitivity-scaled probability, staggered, half gradually.
    CompetitorEntry,
    /// Population-wide seasonal amplitude drifts upward while a cohort
    /// defects gradually — drift vs. defection disambiguation.
    SeasonalDrift,
    /// Households co-shop; a member's exit pulls others along and some
    /// exited members are re-acquired later.
    HouseholdCoshop,
    /// A pure gradual-vs-abrupt defection mix with no confounders —
    /// isolates detection-latency differences by style.
    DefectionMix,
}

impl ScenarioId {
    /// Every scenario, in library order.
    pub const ALL: [ScenarioId; 7] = [
        ScenarioId::Baseline,
        ScenarioId::PromoShock,
        ScenarioId::StoreClosure,
        ScenarioId::CompetitorEntry,
        ScenarioId::SeasonalDrift,
        ScenarioId::HouseholdCoshop,
        ScenarioId::DefectionMix,
    ];

    /// Stable kebab-case name (CLI argument, result keys).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioId::Baseline => "baseline",
            ScenarioId::PromoShock => "promo-shock",
            ScenarioId::StoreClosure => "store-closure",
            ScenarioId::CompetitorEntry => "competitor-entry",
            ScenarioId::SeasonalDrift => "seasonal-drift",
            ScenarioId::HouseholdCoshop => "household-coshop",
            ScenarioId::DefectionMix => "defection-mix",
        }
    }

    /// Parse a [`name`](ScenarioId::name) back to the id.
    pub fn parse(s: &str) -> Option<ScenarioId> {
        ScenarioId::ALL.iter().copied().find(|id| id.name() == s)
    }

    /// One-line description for tables and `--help`.
    pub fn summary(self) -> &'static str {
        match self {
            ScenarioId::Baseline => "paper setting via the event engine (partial defection)",
            ScenarioId::PromoShock => "promotion window confounding an abrupt defection wave",
            ScenarioId::StoreClosure => "store closes; displaced regulars re-home or exit",
            ScenarioId::CompetitorEntry => "competitor opens; sensitivity-scaled staggered churn",
            ScenarioId::SeasonalDrift => "drifting seasonal amplitude over gradual churn",
            ScenarioId::HouseholdCoshop => {
                "household co-shopping with follow-on exits and re-acquisition"
            }
            ScenarioId::DefectionMix => "clean 50/50 gradual vs abrupt defection mix",
        }
    }

    /// True when the scenario can re-acquire exited customers — the only
    /// case where trips after a defection are legal (label invariant).
    pub fn declares_reacquisition(self) -> bool {
        matches!(self, ScenarioId::HouseholdCoshop)
    }

    /// True when defection is partial (trips continue past the onset).
    pub fn partial_defection(self) -> bool {
        matches!(self, ScenarioId::Baseline)
    }
}

/// The output of one scenario run: trips, exact ground truth, and the
/// rendered world/mutation event log.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Which scenario.
    pub id: ScenarioId,
    /// The master seed it ran under.
    pub seed: u64,
    /// True for the CI-sized quick variant.
    pub quick: bool,
    /// First day of month 0.
    pub start: Date,
    /// Observation length in months.
    pub n_months: u32,
    /// Population size (customer ids are dense `0..n_customers`).
    pub n_customers: usize,
    /// Product taxonomy.
    pub taxonomy: Taxonomy,
    /// Product-granularity receipts.
    pub store: ReceiptStore,
    /// Exact ground truth: ordered label events + per-customer records.
    pub truth: GroundTruth,
    /// Rendered non-tick events in pop order (determinism witness).
    pub event_log: Vec<String>,
}

impl ScenarioRun {
    /// The scenario's stable name.
    pub fn name(&self) -> &'static str {
        self.id.name()
    }

    /// Receipts projected to segment granularity.
    pub fn segment_store(&self) -> ReceiptStore {
        attrition_store::project_to_segments(&self.store, &self.taxonomy)
            .expect("generated receipts reference only cataloged products")
    }

    /// Binary cohort labels over the whole population (defector =
    /// any customer with a ground-truth onset).
    pub fn label_set(&self) -> LabelSet {
        self.truth
            .label_set((0..self.n_customers as u64).map(CustomerId::new))
    }

    /// The window grid anchored at the observation start.
    pub fn window_spec(&self, w_months: u32) -> WindowSpec {
        WindowSpec::months(self.start, w_months)
    }

    /// Number of `w_months`-month windows in the observation.
    pub fn num_windows(&self, w_months: u32) -> u32 {
        self.n_months.div_ceil(w_months)
    }
}

/// Run one library scenario.
///
/// `quick` selects the CI-sized variant (smaller population, shorter
/// observation) — same script shape, same invariants, seconds not
/// minutes. Everything derives from `seed`; the same `(id, seed, quick)`
/// triple reproduces the run byte-for-byte.
pub fn run_scenario(id: ScenarioId, seed: u64, quick: bool) -> ScenarioRun {
    match id {
        ScenarioId::Baseline => run_baseline(seed, quick),
        _ => run_scripted(id, seed, quick),
    }
}

/// Per-agent engine state on top of the generative profile.
struct EngineAgent {
    profile: CustomerProfile,
    /// Pristine copy restored on re-acquisition.
    original: CustomerProfile,
    current_brand: Vec<ItemId>,
    active: bool,
    price_sensitivity: f64,
    home_store: u32,
    household: u32,
    /// Trip multiplier while displaced by a store closure…
    closure_mult: f64,
    /// …applied to months `< closure_until`.
    closure_until: u32,
    /// Pooled household items (co-shopping scenario).
    extras: Vec<(ItemId, f64)>,
}

impl EngineAgent {
    fn new(profile: CustomerProfile, sensitivity: f64, home_store: u32, household: u32) -> Self {
        let current_brand = profile.preferred.iter().map(|p| p.item).collect();
        EngineAgent {
            original: profile.clone(),
            profile,
            current_brand,
            active: true,
            price_sensitivity: sensitivity,
            home_store,
            household,
            closure_mult: 1.0,
            closure_until: 0,
            extras: Vec::new(),
        }
    }
}

/// A built scenario: scripted events plus engine knobs.
struct Plan {
    events: Vec<Event>,
    /// Probability that an active household member follows an exit
    /// (scheduled one month later).
    coshop_follow: Option<f64>,
    /// `(probability, months_after_exit)` of re-acquisition.
    reacquire: Option<(f64, u32)>,
}

impl Plan {
    fn bare(events: Vec<Event>) -> Plan {
        Plan {
            events,
            coshop_follow: None,
            reacquire: None,
        }
    }
}

/// The discrete-event engine. Pops the queue in total order and plays
/// one [`simulate_customer_month`] per active agent per month; world
/// events mutate shared state, agent events mutate one agent. All
/// scripting randomness comes from `world_rng`, consumed in pop order.
struct Engine<'a> {
    taxonomy: &'a Taxonomy,
    start: Date,
    n_months: u32,
    seasonality: Seasonality,
    agents: Vec<EngineAgent>,
    rngs: Vec<Rng>,
    queue: EventQueue,
    world_rng: Rng,
    coshop_follow: Option<f64>,
    reacquire: Option<(f64, u32)>,
    promo: Option<(f64, f64, f64)>,
    drift: Option<(u32, f64)>,
    truth: GroundTruth,
    log: Vec<String>,
}

impl<'a> Engine<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        taxonomy: &'a Taxonomy,
        start: Date,
        n_months: u32,
        seasonality: Seasonality,
        agents: Vec<EngineAgent>,
        plan: Plan,
        sim_seed: u64,
        world_seed: u64,
    ) -> Engine<'a> {
        // The SAME per-customer stream key as Simulator::customer_rng —
        // an unperturbed agent shops byte-identically to the legacy
        // simulator under the same seed.
        let rngs = agents
            .iter()
            .map(|a| {
                Rng::seed_from_u64(
                    sim_seed
                        .rotate_left(17)
                        .wrapping_add(a.profile.customer.raw().wrapping_mul(0xD6E8_FEB8_6659_FD93)),
                )
            })
            .collect();
        let mut queue = EventQueue::new();
        for event in plan.events {
            queue.push(event);
        }
        for agent in &agents {
            queue.push(Event {
                month: agent.profile.entry_month.min(n_months.saturating_sub(1)),
                phase: Phase::Shop,
                actor: Actor::Agent(agent.profile.customer),
                kind: EventKind::MonthTick,
            });
        }
        Engine {
            taxonomy,
            start,
            n_months,
            seasonality,
            agents,
            rngs,
            queue,
            world_rng: Rng::seed_from_u64(world_seed),
            coshop_follow: plan.coshop_follow,
            reacquire: plan.reacquire,
            promo: None,
            drift: None,
            truth: GroundTruth::new(),
            log: Vec::new(),
        }
    }

    fn run(mut self) -> (ReceiptStore, GroundTruth, Vec<String>) {
        let exploration = Zipf::new(self.taxonomy.num_products(), 1.05);
        let mut builder =
            ReceiptStoreBuilder::with_capacity(self.agents.len() * self.n_months as usize * 4);
        let mut items_buf: Vec<ItemId> = Vec::new();
        while let Some(event) = self.queue.pop() {
            if event.month >= self.n_months {
                continue;
            }
            match (event.actor, event.kind) {
                (Actor::World, kind) => self.handle_world(event.month, kind, &event),
                (Actor::Agent(customer), EventKind::MonthTick) => self.shop_month(
                    customer,
                    event.month,
                    &exploration,
                    &mut builder,
                    &mut items_buf,
                ),
                (Actor::Agent(customer), EventKind::DefectOnset(mode)) => {
                    self.defect_onset(customer, event.month, mode, &event)
                }
                (Actor::Agent(customer), EventKind::Exit) => {
                    self.exit(customer, event.month, &event)
                }
                (Actor::Agent(customer), EventKind::Reacquire) => {
                    self.reacquire(customer, event.month, &event)
                }
                (Actor::Agent(_), _) => unreachable!("world event kinds target Actor::World"),
            }
        }
        (builder.build(), self.truth, self.log)
    }

    fn handle_world(&mut self, month: u32, kind: EventKind, event: &Event) {
        self.log.push(event.to_string());
        match kind {
            EventKind::PromoStart {
                trip_milli,
                explore_milli,
                min_sensitivity_milli,
            } => {
                self.promo = Some((
                    trip_milli as f64 / 1000.0,
                    explore_milli as f64 / 1000.0,
                    min_sensitivity_milli as f64 / 1000.0,
                ));
            }
            EventKind::PromoEnd => self.promo = None,
            EventKind::StoreClose {
                store,
                closure_milli,
                recovery_months,
                exit_milli,
            } => {
                let exit_frac = exit_milli as f64 / 1000.0;
                for idx in 0..self.agents.len() {
                    if !self.agents[idx].active || self.agents[idx].home_store != store {
                        continue;
                    }
                    if self.world_rng.bernoulli(exit_frac) {
                        self.queue.push(Event {
                            month,
                            phase: Phase::Mutate,
                            actor: Actor::Agent(self.agents[idx].profile.customer),
                            kind: EventKind::DefectOnset(DefectMode::Abrupt),
                        });
                    } else {
                        self.agents[idx].closure_mult = closure_milli as f64 / 1000.0;
                        self.agents[idx].closure_until = month + recovery_months;
                    }
                }
            }
            EventKind::CompetitorEntry {
                exit_scale_milli,
                stagger_months,
                gradual_frac_milli,
                ramp_months,
            } => {
                let scale = exit_scale_milli as f64 / 1000.0;
                let gradual_frac = gradual_frac_milli as f64 / 1000.0;
                for idx in 0..self.agents.len() {
                    if !self.agents[idx].active {
                        continue;
                    }
                    let p = (scale * self.agents[idx].price_sensitivity).min(0.95);
                    if !self.world_rng.bernoulli(p) {
                        continue;
                    }
                    let onset =
                        month + self.world_rng.u64_below(stagger_months.max(1) as u64) as u32;
                    let mode = if self.world_rng.bernoulli(gradual_frac) {
                        DefectMode::Gradual { ramp_months }
                    } else {
                        DefectMode::Abrupt
                    };
                    if onset < self.n_months {
                        self.queue.push(Event {
                            month: onset,
                            phase: Phase::Mutate,
                            actor: Actor::Agent(self.agents[idx].profile.customer),
                            kind: EventKind::DefectOnset(mode),
                        });
                    }
                }
            }
            EventKind::SeasonalDrift {
                monthly_drift_milli,
            } => {
                self.drift = Some((month, monthly_drift_milli as f64 / 1000.0));
            }
            _ => unreachable!("agent event kinds target Actor::Agent"),
        }
    }

    fn defect_onset(&mut self, customer: CustomerId, month: u32, mode: DefectMode, event: &Event) {
        let idx = customer.index();
        let already = self
            .truth
            .record_of(customer)
            .is_some_and(|r| r.onset_month.is_some());
        if !self.agents[idx].active || already {
            return; // double-scheduled (e.g. closure + competitor): first wins
        }
        self.log.push(event.to_string());
        let style = match mode {
            DefectMode::Partial => DefectionStyle::Partial,
            DefectMode::Gradual { .. } => DefectionStyle::Gradual,
            DefectMode::Abrupt => DefectionStyle::Abrupt,
        };
        self.truth.record_onset(month, customer, style);
        match mode {
            // Partial: the profile's baked-in drops/decay ARE the
            // defection — no state change, no randomness consumed.
            DefectMode::Partial => {}
            DefectMode::Gradual { ramp_months } => {
                let agent = &mut self.agents[idx];
                agent.profile.trip_decay = Some(TripDecay {
                    onset_month: month,
                    monthly_factor: 0.55,
                });
                for pref in agent.profile.preferred.iter_mut() {
                    let drop = month + self.world_rng.u64_below(ramp_months as u64 + 1) as u32;
                    pref.drop_month = Some(pref.drop_month.map_or(drop, |d| d.min(drop)));
                }
                let stop = month + ramp_months;
                if stop < self.n_months {
                    self.queue.push(Event {
                        month: stop,
                        phase: Phase::Mutate,
                        actor: Actor::Agent(customer),
                        kind: EventKind::Exit,
                    });
                }
            }
            DefectMode::Abrupt => {
                self.queue.push(Event {
                    month,
                    phase: Phase::Mutate,
                    actor: Actor::Agent(customer),
                    kind: EventKind::Exit,
                });
            }
        }
    }

    fn exit(&mut self, customer: CustomerId, month: u32, event: &Event) {
        let idx = customer.index();
        if !self.agents[idx].active {
            return;
        }
        self.agents[idx].active = false;
        self.truth.record_exit(month, customer);
        self.log.push(event.to_string());
        if let Some(follow) = self.coshop_follow {
            let household = self.agents[idx].household;
            for j in 0..self.agents.len() {
                if j == idx || self.agents[j].household != household || !self.agents[j].active {
                    continue;
                }
                if month + 1 < self.n_months && self.world_rng.bernoulli(follow) {
                    self.queue.push(Event {
                        month: month + 1,
                        phase: Phase::Mutate,
                        actor: Actor::Agent(self.agents[j].profile.customer),
                        kind: EventKind::DefectOnset(DefectMode::Abrupt),
                    });
                }
            }
        }
        if let Some((p, gap)) = self.reacquire {
            if month + gap < self.n_months && self.world_rng.bernoulli(p) {
                self.queue.push(Event {
                    month: month + gap,
                    phase: Phase::Mutate,
                    actor: Actor::Agent(customer),
                    kind: EventKind::Reacquire,
                });
            }
        }
    }

    fn reacquire(&mut self, customer: CustomerId, month: u32, event: &Event) {
        let idx = customer.index();
        if self.agents[idx].active {
            return;
        }
        let agent = &mut self.agents[idx];
        agent.active = true;
        agent.profile = agent.original.clone();
        agent.current_brand = agent.profile.preferred.iter().map(|p| p.item).collect();
        self.truth.record_reacquire(month, customer);
        self.log.push(event.to_string());
        // Resume shopping in the re-acquisition month: Mutate < Shop, so
        // this month's tick is still ahead of us.
        self.queue.push(Event {
            month,
            phase: Phase::Shop,
            actor: Actor::Agent(customer),
            kind: EventKind::MonthTick,
        });
    }

    fn shop_month(
        &mut self,
        customer: CustomerId,
        month: u32,
        exploration: &Zipf,
        builder: &mut ReceiptStoreBuilder,
        items_buf: &mut Vec<ItemId>,
    ) {
        let idx = customer.index();
        if !self.agents[idx].active {
            return; // exited: the tick chain stops (Reacquire restarts it)
        }
        let month_start = self.start.add_months(month as i32);
        let month_end = self.start.add_months(month as i32 + 1);
        let base = self.seasonality.factor(month_start.month());
        let seasonal_factor = match self.drift {
            Some((from, rate)) if month >= from => {
                // Amplify the seasonal deviation from 1 by rate·elapsed.
                let amp = 1.0 + rate * (month - from) as f64;
                (1.0 + (base - 1.0) * amp).max(0.05)
            }
            _ => base,
        };
        let mut trip_mult = 1.0;
        let mut explore_mult = 1.0;
        if let Some((trip, explore, min_sensitivity)) = self.promo {
            if self.agents[idx].price_sensitivity >= min_sensitivity {
                trip_mult *= trip;
                explore_mult *= explore;
            }
        }
        if month < self.agents[idx].closure_until {
            trip_mult *= self.agents[idx].closure_mult;
        }
        let agent = &mut self.agents[idx];
        let ctx = MonthContext {
            taxonomy: self.taxonomy,
            exploration,
            month,
            month_start,
            days_in_month: (month_end - month_start) as u64,
            seasonal_factor,
            trip_mult,
            explore_mult,
            extra_items: &agent.extras,
        };
        simulate_customer_month(
            &agent.profile,
            &ctx,
            &mut self.rngs[idx],
            &mut agent.current_brand,
            items_buf,
            &mut |r| {
                builder.push(r);
            },
        );
        if month + 1 < self.n_months {
            self.queue.push(Event {
                month: month + 1,
                phase: Phase::Shop,
                actor: Actor::Agent(customer),
                kind: EventKind::MonthTick,
            });
        }
    }
}

/// The paper baseline through the event engine: legacy population
/// (defection baked into profiles), one `DefectOnset(Partial)` label
/// event per defector, neutral modifiers everywhere — trips are
/// byte-identical to [`generate`] with the same seed.
fn run_baseline(seed: u64, quick: bool) -> ScenarioRun {
    let mut cfg = if quick {
        ScenarioConfig::small()
    } else {
        ScenarioConfig::paper_default()
    };
    cfg.seed = seed;
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let taxonomy = generate_catalog(&cfg.catalog, &mut rng);
    let defection = DefectionPlan {
        onset_month: cfg.onset_month,
        ..cfg.defection.clone()
    };
    let population = Population::generate(
        &PopulationConfig {
            n_loyal: cfg.n_loyal,
            n_defectors: cfg.n_defectors,
            behavior: cfg.behavior.clone(),
            defection,
        },
        &taxonomy,
        cfg.seed ^ 0x5EED_5EED,
    );
    let mut events = Vec::new();
    for label in population.labels.labels() {
        if let Cohort::Defector { onset_month } = label.cohort {
            events.push(Event {
                month: onset_month,
                phase: Phase::Mutate,
                actor: Actor::Agent(label.customer),
                kind: EventKind::DefectOnset(DefectMode::Partial),
            });
        }
    }
    let n_customers = population.profiles.len();
    let agents = population
        .profiles
        .into_iter()
        .enumerate()
        .map(|(i, profile)| EngineAgent::new(profile, 0.0, 0, i as u32))
        .collect();
    let engine = Engine::new(
        &taxonomy,
        cfg.start,
        cfg.n_months,
        cfg.seasonality.clone(),
        agents,
        Plan::bare(events),
        cfg.seed ^ 0x51_4D_55_4C,
        cfg.seed ^ WORLD_STREAM,
    );
    let (store, truth, event_log) = engine.run();
    ScenarioRun {
        id: ScenarioId::Baseline,
        seed,
        quick,
        start: cfg.start,
        n_months: cfg.n_months,
        n_customers,
        taxonomy,
        store,
        truth,
        event_log,
    }
}

/// Pick `k` distinct agent indices with a seeded partial Fisher–Yates.
fn pick_agents(plan_rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = i + plan_rng.u64_below((n - i) as u64) as usize;
        indices.swap(i, j);
    }
    indices.truncate(k);
    indices
}

/// Draw a month uniformly in `lo..=hi`.
fn month_in(plan_rng: &mut Rng, lo: u32, hi: u32) -> u32 {
    lo + plan_rng.u64_below((hi - lo + 1) as u64) as u32
}

fn onset_event(customer: CustomerId, month: u32, mode: DefectMode) -> Event {
    Event {
        month,
        phase: Phase::Mutate,
        actor: Actor::Agent(customer),
        kind: EventKind::DefectOnset(mode),
    }
}

fn world_event(month: u32, kind: EventKind) -> Event {
    Event {
        month,
        phase: Phase::Plan,
        actor: Actor::World,
        kind,
    }
}

/// Every non-baseline scenario: typed agents + a scripted plan.
fn run_scripted(id: ScenarioId, seed: u64, quick: bool) -> ScenarioRun {
    let start = Date::from_ymd(2012, 5, 1).expect("valid date");
    let (n_agents, n_months) = if quick { (120, 14) } else { (480, 24) };
    let catalog = if quick {
        CatalogConfig {
            n_segments: 40,
            mean_products_per_segment: 5.0,
            ..CatalogConfig::default()
        }
    } else {
        CatalogConfig::default()
    };
    let mut rng = Rng::seed_from_u64(seed);
    let taxonomy = generate_catalog(&catalog, &mut rng);
    let population = AgentPopulation::generate(
        &AgentConfig {
            n_agents,
            n_stores: 5,
            behavior: BehaviorConfig::default(),
        },
        &taxonomy,
        seed ^ 0x5EED_5EED,
    );
    let mut plan_rng = Rng::seed_from_u64(seed ^ PLAN_STREAM);
    let mut events = Vec::new();
    let mut plan_follow = None;
    let mut plan_reacquire = None;
    let mut coshop_extras = false;
    match id {
        ScenarioId::PromoShock => {
            let (promo_month, promo_len) = if quick { (6, 3) } else { (10, 4) };
            events.push(world_event(
                promo_month,
                EventKind::PromoStart {
                    trip_milli: 1600,
                    explore_milli: 2500,
                    min_sensitivity_milli: 350,
                },
            ));
            events.push(world_event(promo_month + promo_len, EventKind::PromoEnd));
            let k = if quick { 30 } else { 120 };
            let (lo, hi) = if quick { (8, 11) } else { (12, 18) };
            for agent_idx in pick_agents(&mut plan_rng, n_agents, k) {
                let onset = month_in(&mut plan_rng, lo, hi);
                events.push(onset_event(
                    CustomerId::new(agent_idx as u64),
                    onset,
                    DefectMode::Abrupt,
                ));
            }
        }
        ScenarioId::StoreClosure => {
            let month = if quick { 6 } else { 10 };
            events.push(world_event(
                month,
                EventKind::StoreClose {
                    store: 2,
                    closure_milli: 450,
                    recovery_months: 3,
                    exit_milli: 500,
                },
            ));
        }
        ScenarioId::CompetitorEntry => {
            let month = if quick { 6 } else { 10 };
            events.push(world_event(
                month,
                EventKind::CompetitorEntry {
                    exit_scale_milli: 600,
                    stagger_months: if quick { 4 } else { 6 },
                    gradual_frac_milli: 500,
                    ramp_months: if quick { 3 } else { 4 },
                },
            ));
        }
        ScenarioId::SeasonalDrift => {
            let from = if quick { 4 } else { 8 };
            events.push(world_event(
                from,
                EventKind::SeasonalDrift {
                    monthly_drift_milli: 80,
                },
            ));
            let k = if quick { 26 } else { 110 };
            let (lo, hi) = if quick { (6, 9) } else { (10, 16) };
            let ramp = if quick { 3 } else { 5 };
            for agent_idx in pick_agents(&mut plan_rng, n_agents, k) {
                let onset = month_in(&mut plan_rng, lo, hi);
                events.push(onset_event(
                    CustomerId::new(agent_idx as u64),
                    onset,
                    DefectMode::Gradual { ramp_months: ramp },
                ));
            }
        }
        ScenarioId::HouseholdCoshop => {
            coshop_extras = true;
            plan_follow = Some(0.65);
            plan_reacquire = Some((0.3, if quick { 3 } else { 4 }));
            let target = if quick { 10 } else { 40 };
            let (lo, hi) = if quick { (5, 8) } else { (9, 14) };
            let groups: Vec<std::ops::Range<usize>> = population
                .households()
                .into_iter()
                .filter(|g| g.len() >= 2)
                .collect();
            for gi in pick_agents(&mut plan_rng, groups.len(), target) {
                let onset = month_in(&mut plan_rng, lo, hi);
                // The first household member seeds the exit cascade.
                events.push(onset_event(
                    CustomerId::new(groups[gi].start as u64),
                    onset,
                    DefectMode::Abrupt,
                ));
            }
        }
        ScenarioId::DefectionMix => {
            let k = if quick { 36 } else { 140 };
            let (lo, hi) = if quick { (5, 9) } else { (9, 15) };
            let ramp = if quick { 3 } else { 6 };
            for (i, agent_idx) in pick_agents(&mut plan_rng, n_agents, k)
                .into_iter()
                .enumerate()
            {
                let onset = month_in(&mut plan_rng, lo, hi);
                let mode = if i % 2 == 0 {
                    DefectMode::Gradual { ramp_months: ramp }
                } else {
                    DefectMode::Abrupt
                };
                events.push(onset_event(CustomerId::new(agent_idx as u64), onset, mode));
            }
        }
        ScenarioId::Baseline => unreachable!("baseline handled by run_baseline"),
    }
    let mut agents: Vec<EngineAgent> = population
        .agents
        .iter()
        .map(|a| {
            EngineAgent::new(
                a.profile.clone(),
                a.price_sensitivity,
                a.home_store,
                a.household,
            )
        })
        .collect();
    if coshop_extras {
        // Each member also picks up the other members' top staples with
        // moderate probability — pooled household shopping.
        for group in population.households() {
            if group.len() < 2 {
                continue;
            }
            for i in group.clone() {
                let mut extras = Vec::new();
                for j in group.clone() {
                    if j == i {
                        continue;
                    }
                    if let Some(top) = population.agents[j].profile.preferred.first() {
                        extras.push((top.item, 0.3));
                    }
                }
                agents[i].extras = extras;
            }
        }
    }
    let plan = Plan {
        events,
        coshop_follow: plan_follow,
        reacquire: plan_reacquire,
    };
    let engine = Engine::new(
        &taxonomy,
        start,
        n_months,
        Seasonality::grocery_default(),
        agents,
        plan,
        seed ^ 0x51_4D_55_4C,
        seed ^ WORLD_STREAM,
    );
    let (store, truth, event_log) = engine.run();
    ScenarioRun {
        id,
        seed,
        quick,
        start,
        n_months,
        n_customers: n_agents,
        taxonomy,
        store,
        truth,
        event_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_generates() {
        let ds = generate(&ScenarioConfig::small());
        assert_eq!(ds.labels.len(), 120);
        assert_eq!(ds.labels.num_defectors(), 60);
        assert!(ds.store.num_receipts() > 1000);
        assert_eq!(ds.store.num_customers(), 120);
        let (lo, hi) = ds.store.date_range().unwrap();
        assert!(lo >= ds.config.start);
        assert!(hi < ds.config.start.add_months(16));
    }

    #[test]
    fn paper_default_shape() {
        let cfg = ScenarioConfig::paper_default();
        assert_eq!(cfg.n_months, 28);
        assert_eq!(cfg.onset_month, 18);
        assert_eq!(cfg.num_windows(2), 14);
        assert_eq!(cfg.onset_window(2), 9);
        let spec = cfg.window_spec(2);
        assert_eq!(spec.window_start(0), Date::from_ymd(2012, 5, 1).unwrap());
        assert_eq!(spec.window_end(13), Date::from_ymd(2014, 9, 1).unwrap());
    }

    #[test]
    fn deterministic_generation() {
        let cfg = ScenarioConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.store.num_receipts(), b.store.num_receipts());
        for (ra, rb) in a.store.receipts().zip(b.store.receipts()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn segment_store_projects() {
        let ds = generate(&ScenarioConfig::small());
        let seg = ds.segment_store();
        assert_eq!(seg.num_receipts(), ds.store.num_receipts());
        let max_seg = seg.max_item_id().unwrap().raw();
        assert!(
            (max_seg as usize) < ds.taxonomy.num_segments(),
            "segment id {max_seg} out of range"
        );
    }

    #[test]
    fn figure2_profile_shape() {
        let ds = generate(&ScenarioConfig::small());
        let profile = figure2_customer(&ds.taxonomy, CustomerId::new(10_000), 20);
        // 4 scripted losses + the compact background repertoire.
        assert!(profile.preferred.len() >= 8);
        // Coffee drops at 20, the other three named products at 22.
        let coffee_seg = ds.taxonomy.segment_by_name("coffee").unwrap();
        let mut saw_coffee = false;
        let mut late_drops = 0;
        for p in &profile.preferred {
            let seg = ds.taxonomy.segment_of(p.item).unwrap();
            if seg == coffee_seg {
                assert_eq!(p.drop_month, Some(20));
                saw_coffee = true;
            } else if p.drop_month.is_some() {
                assert_eq!(p.drop_month, Some(22));
                late_drops += 1;
            }
        }
        assert!(saw_coffee);
        assert_eq!(late_drops, 3);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let good = ScenarioConfig::small();
        assert!(good.validate().is_ok());
        let mut no_months = good.clone();
        no_months.n_months = 0;
        assert!(no_months.validate().is_err());
        let mut late_onset = good.clone();
        late_onset.onset_month = 16;
        assert!(late_onset.validate().is_err());
        // …but a late onset is fine when there are no defectors at all.
        late_onset.n_defectors = 0;
        assert!(late_onset.validate().is_ok());
        let mut empty = good.clone();
        empty.n_loyal = 0;
        empty.n_defectors = 0;
        assert!(empty.validate().is_err());
        let mut no_catalog = good.clone();
        no_catalog.catalog.n_segments = 0;
        assert!(no_catalog.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn generate_panics_on_invalid_config() {
        let mut cfg = ScenarioConfig::small();
        cfg.n_months = 0;
        generate(&cfg);
    }

    #[test]
    fn labels_match_profiles() {
        let ds = generate(&ScenarioConfig::small());
        for profile in &ds.profiles {
            let cohort = ds.labels.cohort_of(profile.customer).unwrap();
            assert_eq!(
                cohort.is_defector(),
                profile.is_defector_profile(),
                "customer {}",
                profile.customer
            );
        }
    }

    #[test]
    fn baseline_engine_byte_identical_to_legacy_generate() {
        // The tentpole invariant: the event engine with neutral modifiers
        // reproduces the legacy generator draw-for-draw. The golden fig1
        // regression rests on this at full size; here the quick size.
        let mut cfg = ScenarioConfig::small();
        cfg.seed = 7;
        let legacy = generate(&cfg);
        let run = run_scenario(ScenarioId::Baseline, 7, true);
        assert_eq!(run.store.num_receipts(), legacy.store.num_receipts());
        for (a, b) in run.store.receipts().zip(legacy.store.receipts()) {
            assert_eq!(a, b);
        }
        // Ground truth mirrors the legacy cohorts exactly.
        assert_eq!(run.truth.num_defectors(), legacy.labels.num_defectors());
        for label in legacy.labels.labels() {
            if let Cohort::Defector { onset_month } = label.cohort {
                let record = run.truth.record_of(label.customer).unwrap();
                assert_eq!(record.onset_month, Some(onset_month));
                assert_eq!(record.style, Some(DefectionStyle::Partial));
                assert_eq!(record.exit_month, None);
            }
        }
        let set = run.label_set();
        assert_eq!(set.num_defectors(), legacy.labels.num_defectors());
        assert_eq!(set.len(), legacy.labels.len());
    }

    #[test]
    fn scenario_ids_round_trip() {
        assert_eq!(ScenarioId::ALL.len(), 7);
        for id in ScenarioId::ALL {
            assert_eq!(ScenarioId::parse(id.name()), Some(id));
            assert!(!id.summary().is_empty());
        }
        assert_eq!(ScenarioId::parse("nope"), None);
        assert!(ScenarioId::HouseholdCoshop.declares_reacquisition());
        assert!(!ScenarioId::PromoShock.declares_reacquisition());
        assert!(ScenarioId::Baseline.partial_defection());
    }

    #[test]
    fn every_scenario_emits_trips_and_labels() {
        for id in ScenarioId::ALL {
            let run = run_scenario(id, 42, true);
            assert!(run.store.num_receipts() > 0, "{}: no trips", id.name());
            assert!(
                !run.truth.events().is_empty(),
                "{}: empty label stream",
                id.name()
            );
            assert!(run.truth.num_defectors() > 0, "{}: no defectors", id.name());
            assert!(
                run.truth.num_defectors() < run.n_customers,
                "{}: everyone defected",
                id.name()
            );
            // Every onset lands inside the observation.
            for r in run.truth.records() {
                if let Some(m) = r.onset_month {
                    assert!(m < run.n_months, "{}: onset out of range", id.name());
                }
            }
        }
    }
}
