//! End-to-end dataset scenarios.
//!
//! A [`ScenarioConfig`] bundles every generator knob; [`generate`] runs
//! catalog → population → simulation and returns the full
//! [`GeneratedDataset`]. [`ScenarioConfig::paper_default`] mirrors the
//! paper's setting: observation from May 2012, 28 months (through August
//! 2014), defection onset at month 18 (Figure 1's vertical line), balanced
//! loyal/defector cohorts.
//!
//! [`figure2_customer`] builds the scripted defector of the paper's
//! Figure 2: a customer who stops buying **coffee** in month 20 and
//! **milk, sponges and cheese** in month 22.

use crate::catalog::{generate_catalog, CatalogConfig};
use crate::defection::DefectionPlan;
use crate::labels::LabelSet;
use crate::population::{BehaviorConfig, Population, PopulationConfig};
use crate::profile::{CustomerProfile, PreferredItem};
use crate::seasonality::Seasonality;
use crate::simulate::Simulator;
use attrition_store::{ReceiptStore, WindowSpec};
use attrition_types::{CustomerId, Date, Taxonomy};
use attrition_util::Rng;

/// Full configuration of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// First day of the observation period.
    pub start: Date,
    /// Observation length in months.
    pub n_months: u32,
    /// Loyal cohort size.
    pub n_loyal: usize,
    /// Defector cohort size.
    pub n_defectors: usize,
    /// Month (0-based) the defectors' attrition starts.
    pub onset_month: u32,
    /// Catalog generator knobs.
    pub catalog: CatalogConfig,
    /// Customer behavior knobs.
    pub behavior: BehaviorConfig,
    /// Defection plan template (its `onset_month` is overwritten by
    /// `self.onset_month`).
    pub defection: DefectionPlan,
    /// Seasonality profile.
    pub seasonality: Seasonality,
}

impl ScenarioConfig {
    /// The paper-shaped default: May 2012 start, 28 months, onset at
    /// month 18, balanced cohorts of 600, default catalog/behavior.
    ///
    /// The paper's population is 6M customers; 600+600 is enough for
    /// stable AUROC estimates while keeping every experiment laptop-fast.
    /// Scale `n_loyal`/`n_defectors` up freely — the scalability bench
    /// does.
    pub fn paper_default() -> ScenarioConfig {
        ScenarioConfig {
            seed: 0x00A7_7121_7102,
            start: Date::from_ymd(2012, 5, 1).expect("valid date"),
            n_months: 28,
            n_loyal: 600,
            n_defectors: 600,
            onset_month: 18,
            catalog: CatalogConfig::default(),
            behavior: BehaviorConfig::default(),
            defection: DefectionPlan::standard(18),
            seasonality: Seasonality::grocery_default(),
        }
    }

    /// A small, fast scenario for tests and examples (60+60 customers,
    /// 16 months, onset at month 10, 40-segment catalog).
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7,
            start: Date::from_ymd(2012, 5, 1).expect("valid date"),
            n_months: 16,
            n_loyal: 60,
            n_defectors: 60,
            onset_month: 10,
            catalog: CatalogConfig {
                n_segments: 40,
                mean_products_per_segment: 5.0,
                ..CatalogConfig::default()
            },
            behavior: BehaviorConfig::default(),
            defection: DefectionPlan::standard(10),
            seasonality: Seasonality::grocery_default(),
        }
    }

    /// The paper's window grid for this scenario: `w_months`-month
    /// windows anchored at the observation start.
    pub fn window_spec(&self, w_months: u32) -> WindowSpec {
        WindowSpec::months(self.start, w_months)
    }

    /// Number of `w_months`-month windows in the observation period.
    pub fn num_windows(&self, w_months: u32) -> u32 {
        self.n_months.div_ceil(w_months)
    }

    /// The window containing the defection onset.
    pub fn onset_window(&self, w_months: u32) -> u32 {
        self.onset_month / w_months
    }

    /// Validate the configuration's cross-field invariants.
    ///
    /// # Errors
    /// Returns the first violated invariant. [`generate`] calls this and
    /// panics on violation (configs are developer input, not user data;
    /// the CLI validates before calling).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_months == 0 {
            return Err("observation period must be at least one month".into());
        }
        if self.n_defectors > 0 && self.onset_month >= self.n_months {
            return Err(format!(
                "defection onset (month {}) must precede the end of the observation ({} months)",
                self.onset_month, self.n_months
            ));
        }
        if self.n_loyal + self.n_defectors == 0 {
            return Err("population must contain at least one customer".into());
        }
        if self.catalog.n_segments == 0 {
            return Err("catalog must contain at least one segment".into());
        }
        Ok(())
    }
}

/// A fully generated dataset.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The configuration that produced it.
    pub config: ScenarioConfig,
    /// Product taxonomy.
    pub taxonomy: Taxonomy,
    /// Product-granularity receipts.
    pub store: ReceiptStore,
    /// Ground-truth cohort labels.
    pub labels: LabelSet,
    /// The generated profiles (kept for white-box tests and the Figure 2
    /// case study).
    pub profiles: Vec<CustomerProfile>,
}

impl GeneratedDataset {
    /// Receipts projected to segment granularity (the level the paper's
    /// experiments run at).
    pub fn segment_store(&self) -> ReceiptStore {
        attrition_store::project_to_segments(&self.store, &self.taxonomy)
            .expect("generated receipts reference only cataloged products")
    }
}

/// Run a scenario end to end.
///
/// # Panics
/// On an invalid configuration (see [`ScenarioConfig::validate`]).
pub fn generate(config: &ScenarioConfig) -> GeneratedDataset {
    if let Err(message) = config.validate() {
        panic!("invalid scenario: {message}");
    }
    let mut rng = Rng::seed_from_u64(config.seed);
    let taxonomy = generate_catalog(&config.catalog, &mut rng);
    let defection = DefectionPlan {
        onset_month: config.onset_month,
        ..config.defection.clone()
    };
    let population = Population::generate(
        &PopulationConfig {
            n_loyal: config.n_loyal,
            n_defectors: config.n_defectors,
            behavior: config.behavior.clone(),
            defection,
        },
        &taxonomy,
        config.seed ^ 0x5EED_5EED,
    );
    let simulator = Simulator::new(
        config.start,
        config.n_months,
        config.seasonality.clone(),
        config.seed ^ 0x51_4D_55_4C,
    );
    let store = simulator.run(&population.profiles, &taxonomy);
    GeneratedDataset {
        config: config.clone(),
        taxonomy,
        store,
        labels: population.labels,
        profiles: population.profiles,
    }
}

/// Build the scripted defector of the paper's Figure 2 against a
/// catalog: a reliable shopper with a broad repertoire who stops buying
/// **coffee** in month `coffee_loss_month` (20 in the paper) and **milk,
/// sponges and cheese** two months later.
///
/// Returns the profile; give it a fresh customer id not used by the rest
/// of the population and simulate it alongside them.
pub fn figure2_customer(
    taxonomy: &Taxonomy,
    customer: CustomerId,
    coffee_loss_month: u32,
) -> CustomerProfile {
    let must_have = ["coffee", "milk", "cheese", "sponges"];
    let mut preferred = Vec::new();
    for (idx, name) in must_have.iter().enumerate() {
        let seg = taxonomy
            .segment_by_name(name)
            .unwrap_or_else(|| panic!("catalog lacks the {name} segment"));
        let product = taxonomy.products_in(seg).expect("segment exists")[0];
        let drop = if idx == 0 {
            Some(coffee_loss_month) // coffee
        } else {
            Some(coffee_loss_month + 2) // milk, cheese, sponges
        };
        preferred.push(PreferredItem {
            item: product,
            per_trip_prob: 0.9,
            drop_month: drop,
        });
    }
    // A small stable background repertoire that is never lost. Kept
    // deliberately compact so the four scripted losses account for a
    // large share of the total significance — the paper's example shows
    // a visible dip at the coffee loss and a sharp fall at the
    // milk/sponge/cheese loss.
    let background = ["bread", "butter", "eggs", "yogurt"];
    for name in background {
        if let Some(seg) = taxonomy.segment_by_name(name) {
            let product = taxonomy.products_in(seg).expect("segment exists")[0];
            preferred.push(PreferredItem {
                item: product,
                per_trip_prob: 0.9,
                drop_month: None,
            });
        }
    }
    CustomerProfile {
        customer,
        trips_per_month: 4.5,
        preferred,
        // No exploration: the catalog's most popular segments are the
        // very ones this customer loses, so at segment granularity even a
        // rare exploration draw would mask the scripted losses. The paper
        // likewise hand-picked a clean illustrative customer. Brand
        // switching stays off for the same reason.
        exploration_rate: 0.0,
        trip_decay: None,
        brand_switch_prob: 0.0,
        entry_month: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_generates() {
        let ds = generate(&ScenarioConfig::small());
        assert_eq!(ds.labels.len(), 120);
        assert_eq!(ds.labels.num_defectors(), 60);
        assert!(ds.store.num_receipts() > 1000);
        assert_eq!(ds.store.num_customers(), 120);
        let (lo, hi) = ds.store.date_range().unwrap();
        assert!(lo >= ds.config.start);
        assert!(hi < ds.config.start.add_months(16));
    }

    #[test]
    fn paper_default_shape() {
        let cfg = ScenarioConfig::paper_default();
        assert_eq!(cfg.n_months, 28);
        assert_eq!(cfg.onset_month, 18);
        assert_eq!(cfg.num_windows(2), 14);
        assert_eq!(cfg.onset_window(2), 9);
        let spec = cfg.window_spec(2);
        assert_eq!(spec.window_start(0), Date::from_ymd(2012, 5, 1).unwrap());
        assert_eq!(spec.window_end(13), Date::from_ymd(2014, 9, 1).unwrap());
    }

    #[test]
    fn deterministic_generation() {
        let cfg = ScenarioConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.store.num_receipts(), b.store.num_receipts());
        for (ra, rb) in a.store.receipts().zip(b.store.receipts()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn segment_store_projects() {
        let ds = generate(&ScenarioConfig::small());
        let seg = ds.segment_store();
        assert_eq!(seg.num_receipts(), ds.store.num_receipts());
        let max_seg = seg.max_item_id().unwrap().raw();
        assert!(
            (max_seg as usize) < ds.taxonomy.num_segments(),
            "segment id {max_seg} out of range"
        );
    }

    #[test]
    fn figure2_profile_shape() {
        let ds = generate(&ScenarioConfig::small());
        let profile = figure2_customer(&ds.taxonomy, CustomerId::new(10_000), 20);
        // 4 scripted losses + the compact background repertoire.
        assert!(profile.preferred.len() >= 8);
        // Coffee drops at 20, the other three named products at 22.
        let coffee_seg = ds.taxonomy.segment_by_name("coffee").unwrap();
        let mut saw_coffee = false;
        let mut late_drops = 0;
        for p in &profile.preferred {
            let seg = ds.taxonomy.segment_of(p.item).unwrap();
            if seg == coffee_seg {
                assert_eq!(p.drop_month, Some(20));
                saw_coffee = true;
            } else if p.drop_month.is_some() {
                assert_eq!(p.drop_month, Some(22));
                late_drops += 1;
            }
        }
        assert!(saw_coffee);
        assert_eq!(late_drops, 3);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let good = ScenarioConfig::small();
        assert!(good.validate().is_ok());
        let mut no_months = good.clone();
        no_months.n_months = 0;
        assert!(no_months.validate().is_err());
        let mut late_onset = good.clone();
        late_onset.onset_month = 16;
        assert!(late_onset.validate().is_err());
        // …but a late onset is fine when there are no defectors at all.
        late_onset.n_defectors = 0;
        assert!(late_onset.validate().is_ok());
        let mut empty = good.clone();
        empty.n_loyal = 0;
        empty.n_defectors = 0;
        assert!(empty.validate().is_err());
        let mut no_catalog = good.clone();
        no_catalog.catalog.n_segments = 0;
        assert!(no_catalog.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn generate_panics_on_invalid_config() {
        let mut cfg = ScenarioConfig::small();
        cfg.n_months = 0;
        generate(&cfg);
    }

    #[test]
    fn labels_match_profiles() {
        let ds = generate(&ScenarioConfig::small());
        for profile in &ds.profiles {
            let cohort = ds.labels.cohort_of(profile.customer).unwrap();
            assert_eq!(
                cohort.is_defector(),
                profile.is_defector_profile(),
                "customer {}",
                profile.customer
            );
        }
    }
}
