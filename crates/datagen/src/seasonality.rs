//! Seasonal modulation of shopping activity.
//!
//! Real grocery demand is seasonal (December peaks, summer-holiday dips);
//! the simulator multiplies every customer's trip rate by a calendar-month
//! factor so that loyal customers show realistic activity fluctuation that
//! the models must not mistake for attrition.

use attrition_types::Month;

/// Multiplicative trip-rate factors per calendar month.
#[derive(Debug, Clone, PartialEq)]
pub struct Seasonality {
    factors: [f64; 12],
}

impl Seasonality {
    /// No seasonal effect (all factors 1).
    pub fn flat() -> Seasonality {
        Seasonality { factors: [1.0; 12] }
    }

    /// A mild, realistic grocery profile: +18% in December, +6% around
    /// school start (September), −10% in July/August (holidays), ±3%
    /// elsewhere.
    pub fn grocery_default() -> Seasonality {
        Seasonality {
            factors: [
                0.98, // January
                0.97, // February
                1.00, // March
                1.01, // April
                1.02, // May
                1.00, // June
                0.90, // July
                0.90, // August
                1.06, // September
                1.02, // October
                1.03, // November
                1.18, // December
            ],
        }
    }

    /// Build from explicit factors (January first). All must be positive.
    pub fn from_factors(factors: [f64; 12]) -> Seasonality {
        assert!(
            factors.iter().all(|&f| f > 0.0),
            "seasonality factors must be positive"
        );
        Seasonality { factors }
    }

    /// Factor for a calendar month.
    #[inline]
    pub fn factor(&self, month: Month) -> f64 {
        self.factors[(month.number() - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_unity() {
        let s = Seasonality::flat();
        for m in Month::ALL {
            assert_eq!(s.factor(m), 1.0);
        }
    }

    #[test]
    fn grocery_profile_shape() {
        let s = Seasonality::grocery_default();
        assert!(s.factor(Month::December) > 1.1);
        assert!(s.factor(Month::July) < 1.0);
        assert!(s.factor(Month::August) < 1.0);
        // Mean stays near 1 so long-run volume is unbiased.
        let mean: f64 = Month::ALL.iter().map(|&m| s.factor(m)).sum::<f64>() / 12.0;
        assert!((mean - 1.0).abs() < 0.02, "mean factor {mean}");
    }

    #[test]
    fn from_factors_roundtrip() {
        let mut f = [1.0; 12];
        f[3] = 1.5;
        let s = Seasonality::from_factors(f);
        assert_eq!(s.factor(Month::April), 1.5);
        assert_eq!(s.factor(Month::May), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_factor_panics() {
        let mut f = [1.0; 12];
        f[0] = 0.0;
        Seasonality::from_factors(f);
    }
}
