//! The month-by-month purchase simulator.
//!
//! Plays a population of [`CustomerProfile`]s over an observation period
//! into a columnar [`ReceiptStore`]: per month, each customer makes
//! `Poisson(rate × seasonality)` shopping trips on uniformly drawn days;
//! each trip's basket contains every core item that passes its per-trip
//! Bernoulli (with defection-dropped items at probability zero) plus
//! `Poisson(exploration)` catalog-popularity-distributed noise items. The
//! receipt total is the sum of unit prices.
//!
//! Per-customer streams are keyed by customer id, so a customer's entire
//! purchase history is invariant to the rest of the population — adding
//! customers to a scenario never changes existing histories.

use crate::profile::CustomerProfile;
use crate::seasonality::Seasonality;
use attrition_store::{ReceiptStore, ReceiptStoreBuilder};
use attrition_types::{Basket, Cents, Date, ItemId, Receipt, Taxonomy};
use attrition_util::{Rng, Zipf};

/// Simulation clock and environment.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// First day of month 0.
    pub start: Date,
    /// Number of months to simulate.
    pub n_months: u32,
    /// Seasonal trip-rate modulation.
    pub seasonality: Seasonality,
    /// Zipf exponent of the exploration-item popularity distribution.
    pub exploration_zipf_s: f64,
    /// Master seed; per-customer streams are derived from it.
    pub seed: u64,
}

impl Simulator {
    /// A simulator with default exploration skew.
    pub fn new(start: Date, n_months: u32, seasonality: Seasonality, seed: u64) -> Simulator {
        Simulator {
            start,
            n_months,
            seasonality,
            exploration_zipf_s: 1.05,
            seed,
        }
    }

    /// Simulate every profile and build the receipt store.
    pub fn run(&self, profiles: &[CustomerProfile], taxonomy: &Taxonomy) -> ReceiptStore {
        assert!(taxonomy.num_products() > 0, "empty taxonomy");
        let exploration = Zipf::new(taxonomy.num_products(), self.exploration_zipf_s);
        // Rough pre-size: trips/month ≈ 4, so profiles × months × 4.
        let mut builder =
            ReceiptStoreBuilder::with_capacity(profiles.len() * self.n_months as usize * 4);
        for profile in profiles {
            self.simulate_customer(profile, taxonomy, &exploration, &mut builder);
        }
        builder.build()
    }

    /// Stream key for one customer: independent of population composition.
    fn customer_rng(&self, customer: attrition_types::CustomerId) -> Rng {
        Rng::seed_from_u64(
            self.seed
                .rotate_left(17)
                .wrapping_add(customer.raw().wrapping_mul(0xD6E8_FEB8_6659_FD93)),
        )
    }

    fn simulate_customer(
        &self,
        profile: &CustomerProfile,
        taxonomy: &Taxonomy,
        exploration: &Zipf,
        builder: &mut ReceiptStoreBuilder,
    ) {
        let mut rng = self.customer_rng(profile.customer);
        let mut items_buf: Vec<ItemId> = Vec::with_capacity(profile.preferred.len() + 4);
        // Brand state: the concrete product currently satisfying each core
        // preference; brand switching reassigns it within the segment.
        let mut current_brand: Vec<ItemId> = profile.preferred.iter().map(|p| p.item).collect();
        for month in 0..self.n_months {
            let month_start = self.start.add_months(month as i32);
            let month_end = self.start.add_months(month as i32 + 1);
            let ctx = MonthContext {
                taxonomy,
                exploration,
                month,
                month_start,
                days_in_month: (month_end - month_start) as u64,
                seasonal_factor: self.seasonality.factor(month_start.month()),
                trip_mult: 1.0,
                explore_mult: 1.0,
                extra_items: &[],
            };
            simulate_customer_month(
                profile,
                &ctx,
                &mut rng,
                &mut current_brand,
                &mut items_buf,
                &mut |r| {
                    builder.push(r);
                },
            );
        }
    }
}

/// Everything one customer-month draw needs besides the customer state.
///
/// The scenario engine layers time-varying modifiers on top of the plain
/// simulator through this struct; with `trip_mult`/`explore_mult` at `1.0`
/// and no `extra_items` the draw sequence is bit-identical to
/// [`Simulator::run`] (multiplying a rate by exactly `1.0` changes no
/// bits, and empty extras consume no randomness) — the golden fig1
/// regression depends on that.
pub(crate) struct MonthContext<'a> {
    pub taxonomy: &'a Taxonomy,
    pub exploration: &'a Zipf,
    pub month: u32,
    pub month_start: Date,
    pub days_in_month: u64,
    pub seasonal_factor: f64,
    /// Multiplier on the trip rate (promotions, store closures).
    pub trip_mult: f64,
    /// Multiplier on the exploration rate (promotions).
    pub explore_mult: f64,
    /// Pooled household items appended after exploration, each passing
    /// its own per-trip Bernoulli (household co-shopping).
    pub extra_items: &'a [(ItemId, f64)],
}

/// Play one month of one customer: brand switching, `Poisson(rate)`
/// trips on uniform days, per-trip core Bernoullis plus exploration
/// noise, quantity draws for the till total. Returns the trip count.
pub(crate) fn simulate_customer_month(
    profile: &CustomerProfile,
    ctx: &MonthContext<'_>,
    rng: &mut Rng,
    current_brand: &mut [ItemId],
    items_buf: &mut Vec<ItemId>,
    sink: &mut dyn FnMut(Receipt),
) -> u64 {
    let month = ctx.month;
    if month >= profile.entry_month && profile.brand_switch_prob > 0.0 {
        for brand in current_brand.iter_mut() {
            if rng.bernoulli(profile.brand_switch_prob) {
                let segment = ctx
                    .taxonomy
                    .segment_of(*brand)
                    .expect("core items come from the taxonomy");
                let siblings = ctx.taxonomy.products_in(segment).expect("segment exists");
                if siblings.len() > 1 {
                    *brand = *rng.choose(siblings).expect("non-empty");
                }
            }
        }
    }
    let rate = profile.trip_rate_in_month(month) * ctx.seasonal_factor * ctx.trip_mult;
    let n_trips = rng.poisson(rate);
    for _ in 0..n_trips {
        let date = ctx.month_start + rng.u64_below(ctx.days_in_month) as i32;
        items_buf.clear();
        for (pref, &brand) in profile.preferred.iter().zip(current_brand.iter()) {
            if rng.bernoulli(pref.prob_in_month(month)) {
                items_buf.push(brand);
            }
        }
        let n_explore = rng.poisson(profile.exploration_rate * ctx.explore_mult);
        for _ in 0..n_explore {
            items_buf.push(ItemId::new(ctx.exploration.sample(rng) as u32));
        }
        for &(item, prob) in ctx.extra_items {
            if rng.bernoulli(prob) {
                items_buf.push(item);
            }
        }
        if items_buf.is_empty() {
            // A till receipt always has at least one line.
            items_buf.push(ItemId::new(ctx.exploration.sample(rng) as u32));
        }
        let basket = Basket::new(items_buf.clone());
        // Baskets are item *sets* (the model ignores quantity), but
        // the till total reflects quantities: most lines are a
        // single unit, with an occasional multi-pack.
        let total: Cents = basket
            .iter()
            .map(|i| {
                let quantity = 1 + rng.poisson(0.25) as i64;
                ctx.taxonomy.price_of(i).unwrap_or(Cents::ZERO) * quantity
            })
            .sum();
        sink(Receipt::new(profile.customer, date, basket, total));
    }
    n_trips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_catalog, CatalogConfig};
    use crate::defection::DefectionPlan;
    use crate::population::{BehaviorConfig, Population, PopulationConfig};
    use attrition_types::CustomerId;

    fn taxonomy() -> Taxonomy {
        generate_catalog(&CatalogConfig::default(), &mut Rng::seed_from_u64(1))
    }

    fn start() -> Date {
        Date::from_ymd(2012, 5, 1).unwrap()
    }

    fn small_population(tax: &Taxonomy, n_loyal: usize, n_defectors: usize) -> Population {
        Population::generate(
            &PopulationConfig {
                n_loyal,
                n_defectors,
                behavior: BehaviorConfig::default(),
                defection: DefectionPlan::standard(6),
            },
            tax,
            3,
        )
    }

    #[test]
    fn receipts_inside_observation_period() {
        let tax = taxonomy();
        let pop = small_population(&tax, 5, 0);
        let sim = Simulator::new(start(), 12, Seasonality::grocery_default(), 42);
        let store = sim.run(&pop.profiles, &tax);
        assert!(store.num_receipts() > 0);
        let (lo, hi) = store.date_range().unwrap();
        assert!(lo >= start());
        assert!(hi < start().add_months(12));
    }

    #[test]
    fn trip_volume_tracks_rate() {
        let tax = taxonomy();
        let pop = small_population(&tax, 20, 0);
        let months = 12u32;
        let sim = Simulator::new(start(), months, Seasonality::flat(), 42);
        let store = sim.run(&pop.profiles, &tax);
        let expected: f64 = pop
            .profiles
            .iter()
            .map(|p| p.trips_per_month * months as f64)
            .sum();
        let actual = store.num_receipts() as f64;
        let ratio = actual / expected;
        assert!((0.9..1.1).contains(&ratio), "trip volume ratio {ratio}");
    }

    #[test]
    fn baskets_never_empty_and_totals_bounded_by_prices() {
        let tax = taxonomy();
        let pop = small_population(&tax, 5, 0);
        let sim = Simulator::new(start(), 6, Seasonality::flat(), 1);
        let store = sim.run(&pop.profiles, &tax);
        let mut saw_multipack = false;
        for r in store.receipts() {
            assert!(!r.items.is_empty());
            let unit_sum: Cents = r.items.iter().map(|&i| tax.price_of(i).unwrap()).sum();
            // Quantities are ≥ 1 per line, so totals are at least the unit
            // sum and rarely more than a few multiples of it.
            assert!(r.total >= unit_sum, "total below unit prices");
            assert!(r.total.raw() <= unit_sum.raw() * 6, "implausible total");
            saw_multipack |= r.total > unit_sum;
        }
        assert!(saw_multipack, "quantity sampling never fired");
    }

    #[test]
    fn deterministic_runs() {
        let tax = taxonomy();
        let pop = small_population(&tax, 5, 5);
        let sim = Simulator::new(start(), 8, Seasonality::grocery_default(), 7);
        let a = sim.run(&pop.profiles, &tax);
        let b = sim.run(&pop.profiles, &tax);
        assert_eq!(a.num_receipts(), b.num_receipts());
        for (ra, rb) in a.receipts().zip(b.receipts()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn histories_invariant_to_population_composition() {
        let tax = taxonomy();
        let pop_small = small_population(&tax, 3, 0);
        let pop_large = small_population(&tax, 10, 0);
        let sim = Simulator::new(start(), 6, Seasonality::flat(), 9);
        let store_small = sim.run(&pop_small.profiles, &tax);
        let store_large = sim.run(&pop_large.profiles, &tax);
        let c = CustomerId::new(2);
        let small_hist: Vec<_> = store_small
            .customer_receipts(c)
            .unwrap()
            .map(|r| (r.date, r.total))
            .collect();
        let large_hist: Vec<_> = store_large
            .customer_receipts(c)
            .unwrap()
            .map(|r| (r.date, r.total))
            .collect();
        assert_eq!(small_hist, large_hist);
    }

    #[test]
    fn defectors_shop_less_after_onset() {
        let tax = taxonomy();
        // Strong decay for a clear signal.
        let pop = Population::generate(
            &PopulationConfig {
                n_loyal: 0,
                n_defectors: 20,
                behavior: BehaviorConfig::default(),
                defection: DefectionPlan {
                    onset_month: 6,
                    ramp_months: 3,
                    keep_fraction: 0.1,
                    trip_rate_factor: 0.6,
                },
            },
            &tax,
            5,
        );
        let sim = Simulator::new(start(), 12, Seasonality::flat(), 11);
        let store = sim.run(&pop.profiles, &tax);
        let before = store
            .scan_date_range(start(), start().add_months(6))
            .count();
        let after = store
            .scan_date_range(start().add_months(6), start().add_months(12))
            .count();
        assert!(
            (after as f64) < before as f64 * 0.7,
            "before {before} after {after}"
        );
    }

    #[test]
    fn dropped_items_disappear_from_purchases() {
        let tax = taxonomy();
        let pop = Population::generate(
            &PopulationConfig {
                n_loyal: 0,
                n_defectors: 5,
                behavior: BehaviorConfig::default(),
                defection: DefectionPlan {
                    onset_month: 4,
                    ramp_months: 0, // everything drops exactly at month 4
                    keep_fraction: 0.0,
                    trip_rate_factor: 1.0,
                },
            },
            &tax,
            6,
        );
        let sim = Simulator::new(start(), 10, Seasonality::flat(), 13);
        let store = sim.run(&pop.profiles, &tax);
        let cutoff = start().add_months(4);
        // After the drop, a core item can only re-enter a basket through
        // exploration noise, so the mean core-item count per basket must
        // collapse (it cannot hit zero exactly — popular products are both
        // core and exploration-favored).
        let mut before = (0usize, 0usize); // (core occurrences, baskets)
        let mut after = (0usize, 0usize);
        for profile in &pop.profiles {
            let core: std::collections::HashSet<u32> =
                profile.preferred.iter().map(|p| p.item.raw()).collect();
            for r in store.customer_receipts(profile.customer).unwrap() {
                let overlap = r.items.iter().filter(|i| core.contains(&i.raw())).count();
                let slot = if r.date >= cutoff {
                    &mut after
                } else {
                    &mut before
                };
                slot.0 += overlap;
                slot.1 += 1;
            }
        }
        let rate_before = before.0 as f64 / before.1 as f64;
        let rate_after = after.0 as f64 / after.1 as f64;
        assert!(
            rate_after < rate_before * 0.1,
            "core rate before {rate_before:.2} vs after {rate_after:.2}"
        );
    }

    #[test]
    fn brand_switching_changes_products_not_segments() {
        let tax = taxonomy();
        let mut pop = small_population(&tax, 10, 0);
        for p in pop.profiles.iter_mut() {
            p.brand_switch_prob = 0.25; // aggressive for a clear signal
            p.exploration_rate = 0.0;
        }
        let sim = Simulator::new(start(), 18, Seasonality::flat(), 21);
        let store = sim.run(&pop.profiles, &tax);
        let mut switches = 0usize;
        for profile in &pop.profiles {
            // Count purchased products outside the original core item set
            // but inside a core segment.
            let core_items: std::collections::HashSet<u32> =
                profile.preferred.iter().map(|p| p.item.raw()).collect();
            let core_segments: std::collections::HashSet<u32> = profile
                .preferred
                .iter()
                .map(|p| tax.segment_of(p.item).unwrap().raw())
                .collect();
            for r in store.customer_receipts(profile.customer).unwrap() {
                for item in r.items {
                    let seg = tax.segment_of(*item).unwrap().raw();
                    if !core_items.contains(&item.raw()) && core_segments.contains(&seg) {
                        switches += 1;
                    }
                }
            }
        }
        assert!(
            switches > 50,
            "expected visible brand switching, saw {switches}"
        );
    }

    #[test]
    fn late_joiners_have_no_early_receipts() {
        let tax = taxonomy();
        let mut pop = small_population(&tax, 10, 0);
        for p in pop.profiles.iter_mut() {
            p.entry_month = 6;
        }
        let sim = Simulator::new(start(), 12, Seasonality::flat(), 23);
        let store = sim.run(&pop.profiles, &tax);
        let cutoff = start().add_months(6);
        assert!(store.num_receipts() > 0);
        for r in store.receipts() {
            assert!(r.date >= cutoff, "receipt before entry: {}", r.date);
        }
    }

    #[test]
    fn seasonality_shifts_volume() {
        let tax = taxonomy();
        let pop = small_population(&tax, 30, 0);
        let mut factors = [1.0; 12];
        factors[11] = 3.0; // December ×3
        let sim = Simulator::new(
            Date::from_ymd(2012, 11, 1).unwrap(),
            2, // November, December
            Seasonality::from_factors(factors),
            17,
        );
        let store = sim.run(&pop.profiles, &tax);
        let nov = store
            .scan_date_range(
                Date::from_ymd(2012, 11, 1).unwrap(),
                Date::from_ymd(2012, 12, 1).unwrap(),
            )
            .count();
        let dec = store
            .scan_date_range(
                Date::from_ymd(2012, 12, 1).unwrap(),
                Date::from_ymd(2013, 1, 1).unwrap(),
            )
            .count();
        assert!(
            dec as f64 > nov as f64 * 2.0,
            "december {dec} vs november {nov}"
        );
    }
}
