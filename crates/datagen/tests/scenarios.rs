//! Scenario-library property suite: determinism and label invariants.
//!
//! Determinism: the same `(scenario, seed)` must reproduce the event
//! log, the trip CSV and the label stream byte-for-byte across two
//! independent engine instances (the in-crate `events` tests separately
//! prove pop order is invariant to heap insertion order).
//!
//! Label invariants: every ground-truth record field corresponds to
//! exactly one emitted label event at the same logical month, there is
//! no event without a record, and a fully exited customer emits no
//! trips between exit and re-acquisition — with re-acquisition legal
//! only in scenarios that declare it.

use attrition_datagen::{run_scenario, DefectionStyle, LabelEventKind, ScenarioId, ScenarioRun};
use attrition_store::csv_io::receipts_to_csv;
use attrition_types::CustomerId;

const SEED: u64 = 0xDEC0DE;

fn quick(id: ScenarioId) -> ScenarioRun {
    run_scenario(id, SEED, true)
}

#[test]
fn same_seed_byte_identical_across_instances() {
    for id in ScenarioId::ALL {
        let a = quick(id);
        let b = quick(id);
        assert_eq!(
            a.event_log,
            b.event_log,
            "{}: event log diverged",
            id.name()
        );
        assert_eq!(
            receipts_to_csv(&a.store),
            receipts_to_csv(&b.store),
            "{}: trip CSV diverged",
            id.name()
        );
        assert_eq!(
            a.truth.to_csv(),
            b.truth.to_csv(),
            "{}: label stream diverged",
            id.name()
        );
    }
}

#[test]
fn different_seed_different_trips() {
    // Sanity: the seed actually drives the run.
    let a = run_scenario(ScenarioId::PromoShock, 1, true);
    let b = run_scenario(ScenarioId::PromoShock, 2, true);
    assert_ne!(receipts_to_csv(&a.store), receipts_to_csv(&b.store));
}

#[test]
fn every_label_event_matches_exactly_one_record_field() {
    for id in ScenarioId::ALL {
        let run = quick(id);
        let name = id.name();
        // Events → records: each event must be the one that stamped the
        // corresponding record field.
        let mut onsets = 0usize;
        let mut exits = 0usize;
        let mut reacquires = 0usize;
        for e in run.truth.events() {
            let record = run
                .truth
                .record_of(e.customer)
                .unwrap_or_else(|| panic!("{name}: event without record for {}", e.customer));
            match e.kind {
                LabelEventKind::DefectionOnset(style) => {
                    onsets += 1;
                    assert_eq!(record.onset_month, Some(e.month), "{name}: onset month");
                    assert_eq!(record.style, Some(style), "{name}: onset style");
                }
                LabelEventKind::Exit => {
                    exits += 1;
                    assert_eq!(record.exit_month, Some(e.month), "{name}: exit month");
                }
                LabelEventKind::Reacquisition => {
                    reacquires += 1;
                    assert_eq!(
                        record.reacquired_month,
                        Some(e.month),
                        "{name}: reacquire month"
                    );
                }
            }
        }
        // Records → events: each populated field was counted exactly once,
        // so totals must match (no record field without an event).
        let records = run.truth.records();
        assert_eq!(
            onsets,
            records.iter().filter(|r| r.onset_month.is_some()).count(),
            "{name}: onset bijection"
        );
        assert_eq!(
            exits,
            records.iter().filter(|r| r.exit_month.is_some()).count(),
            "{name}: exit bijection"
        );
        assert_eq!(
            reacquires,
            records
                .iter()
                .filter(|r| r.reacquired_month.is_some())
                .count(),
            "{name}: reacquire bijection"
        );
        // And a defection label never exists without an onset event.
        for (customer, is_defector) in run.label_set().binary_labels() {
            let has_onset = run
                .truth
                .record_of(customer)
                .is_some_and(|r| r.onset_month.is_some());
            assert_eq!(is_defector, has_onset, "{name}: label/event mismatch");
        }
    }
}

#[test]
fn truth_is_internally_consistent() {
    for id in ScenarioId::ALL {
        let run = quick(id);
        let name = id.name();
        for r in run.truth.records() {
            // An exit implies an onset at or before it (exits only come
            // from defections in every scripted scenario).
            if let Some(exit) = r.exit_month {
                let onset = r
                    .onset_month
                    .unwrap_or_else(|| panic!("{name}: exit without onset for {}", r.customer));
                assert!(onset <= exit, "{name}: exit precedes onset");
            }
            // Re-acquisition implies a prior exit.
            if let Some(back) = r.reacquired_month {
                assert!(
                    id.declares_reacquisition(),
                    "{name}: re-acquisition not declared by scenario"
                );
                let exit = r.exit_month.expect("reacquired without exit");
                assert!(exit < back, "{name}: reacquired before exit");
            }
            // Abrupt defections stop in the onset month.
            if r.style == Some(DefectionStyle::Abrupt) {
                assert_eq!(r.exit_month, Some(r.onset_month.unwrap()), "{name}: abrupt");
            }
            // Partial defection never exits.
            if r.style == Some(DefectionStyle::Partial) {
                assert_eq!(r.exit_month, None, "{name}: partial exited");
            }
        }
    }
}

#[test]
fn no_trips_between_exit_and_reacquisition() {
    for id in ScenarioId::ALL {
        let run = quick(id);
        let name = id.name();
        for r in run.truth.records() {
            let Some(exit) = r.exit_month else { continue };
            let silent_from = run.start.add_months(exit as i32);
            let silent_to = match r.reacquired_month {
                Some(back) => run.start.add_months(back as i32),
                None => run.start.add_months(run.n_months as i32),
            };
            if let Ok(receipts) = run.store.customer_receipts(r.customer) {
                for receipt in receipts {
                    assert!(
                        receipt.date < silent_from || receipt.date >= silent_to,
                        "{name}: {} shopped on {} inside silent period [{silent_from}, {silent_to})",
                        r.customer,
                        receipt.date
                    );
                }
            }
        }
    }
}

#[test]
fn reacquired_customers_shop_again() {
    // The coshop scenario declares re-acquisition; make sure it actually
    // happens and produces post-return trips (otherwise the invariant
    // above is vacuous).
    let run = quick(ScenarioId::HouseholdCoshop);
    let reacquired: Vec<CustomerId> = run
        .truth
        .records()
        .iter()
        .filter(|r| r.reacquired_month.is_some())
        .map(|r| r.customer)
        .collect();
    assert!(
        !reacquired.is_empty(),
        "coshop run produced no re-acquisitions at this seed"
    );
    let mut returned_trips = 0usize;
    for customer in &reacquired {
        let back = run
            .truth
            .record_of(*customer)
            .unwrap()
            .reacquired_month
            .unwrap();
        let from = run.start.add_months(back as i32);
        if let Ok(receipts) = run.store.customer_receipts(*customer) {
            returned_trips += receipts.filter(|r| r.date >= from).count();
        }
    }
    assert!(returned_trips > 0, "no trips after re-acquisition");
}

#[test]
fn exited_customers_exist_in_full_stop_scenarios() {
    // The invariant suite must not be vacuous: these scenarios script
    // full stops, so exits must appear.
    for id in [
        ScenarioId::PromoShock,
        ScenarioId::StoreClosure,
        ScenarioId::CompetitorEntry,
        ScenarioId::HouseholdCoshop,
        ScenarioId::DefectionMix,
    ] {
        let run = quick(id);
        let exits = run
            .truth
            .records()
            .iter()
            .filter(|r| r.exit_month.is_some())
            .count();
        assert!(exits > 0, "{}: no exits scripted", id.name());
    }
}
