//! Probability calibration diagnostics.
//!
//! AUROC measures ranking only; when the RFM logistic regression's output
//! is used as a probability (e.g. to budget a retention campaign), its
//! calibration matters. [`brier_score`] and [`reliability_bins`] quantify
//! it.

/// Mean squared error between predicted probabilities and binary outcomes
/// (lower is better; 0.25 is the score of a constant 0.5 prediction).
/// `NaN` when empty.
pub fn brier_score(labels: &[bool], probabilities: &[f64]) -> f64 {
    assert_eq!(
        labels.len(),
        probabilities.len(),
        "labels/probabilities length mismatch"
    );
    if labels.is_empty() {
        return f64::NAN;
    }
    labels
        .iter()
        .zip(probabilities)
        .map(|(&l, &p)| {
            let y = if l { 1.0 } else { 0.0 };
            (p - y) * (p - y)
        })
        .sum::<f64>()
        / labels.len() as f64
}

/// One reliability bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Lower edge of the predicted-probability bin (inclusive).
    pub lo: f64,
    /// Upper edge (exclusive, except the last bin which includes 1.0).
    pub hi: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean predicted probability in the bin (`NaN` if empty).
    pub mean_predicted: f64,
    /// Observed positive rate in the bin (`NaN` if empty).
    pub observed_rate: f64,
}

/// Equal-width reliability diagram bins over `[0, 1]`.
pub fn reliability_bins(
    labels: &[bool],
    probabilities: &[f64],
    bins: usize,
) -> Vec<ReliabilityBin> {
    assert!(bins > 0, "need at least one bin");
    assert_eq!(
        labels.len(),
        probabilities.len(),
        "labels/probabilities length mismatch"
    );
    let mut counts = vec![0usize; bins];
    let mut sum_p = vec![0.0f64; bins];
    let mut sum_y = vec![0usize; bins];
    for (&l, &p) in labels.iter().zip(probabilities) {
        let idx = ((p * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[idx] += 1;
        sum_p[idx] += p;
        if l {
            sum_y[idx] += 1;
        }
    }
    (0..bins)
        .map(|b| ReliabilityBin {
            lo: b as f64 / bins as f64,
            hi: (b + 1) as f64 / bins as f64,
            count: counts[b],
            mean_predicted: if counts[b] == 0 {
                f64::NAN
            } else {
                sum_p[b] / counts[b] as f64
            },
            observed_rate: if counts[b] == 0 {
                f64::NAN
            } else {
                sum_y[b] as f64 / counts[b] as f64
            },
        })
        .collect()
}

/// Expected calibration error: bin-count-weighted mean |predicted −
/// observed| over non-empty bins. `NaN` when there are no observations.
pub fn expected_calibration_error(labels: &[bool], probabilities: &[f64], bins: usize) -> f64 {
    let total = labels.len();
    if total == 0 {
        return f64::NAN;
    }
    reliability_bins(labels, probabilities, bins)
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| (b.count as f64 / total as f64) * (b.mean_predicted - b.observed_rate).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brier_known_values() {
        assert_eq!(brier_score(&[true], &[1.0]), 0.0);
        assert_eq!(brier_score(&[true], &[0.0]), 1.0);
        assert!((brier_score(&[true, false], &[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!(brier_score(&[], &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn brier_mismatch_panics() {
        brier_score(&[true], &[0.5, 0.5]);
    }

    #[test]
    fn bins_cover_unit_interval() {
        let labels = [true, false, true, false];
        let probs = [0.05, 0.05, 0.95, 0.95];
        let bins = reliability_bins(&labels, &probs, 10);
        assert_eq!(bins.len(), 10);
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[9].count, 2);
        assert!((bins[0].observed_rate - 0.5).abs() < 1e-12);
        assert!((bins[0].mean_predicted - 0.05).abs() < 1e-12);
        assert!(bins[5].mean_predicted.is_nan());
    }

    #[test]
    fn probability_one_lands_in_last_bin() {
        let bins = reliability_bins(&[true], &[1.0], 4);
        assert_eq!(bins[3].count, 1);
    }

    #[test]
    fn perfectly_calibrated_ece_zero() {
        // Predictions equal to the observed rates per bin.
        let labels = [true, false, true, true];
        let probs = [0.5, 0.5, 1.0, 1.0];
        let ece = expected_calibration_error(&labels, &probs, 2);
        assert!(ece.abs() < 1e-12, "ece {ece}");
    }

    #[test]
    fn miscalibrated_ece_positive() {
        let labels = [false, false, false, false];
        let probs = [0.9, 0.9, 0.9, 0.9];
        let ece = expected_calibration_error(&labels, &probs, 10);
        assert!((ece - 0.9).abs() < 1e-12, "ece {ece}");
    }

    #[test]
    fn empty_ece_nan() {
        assert!(expected_calibration_error(&[], &[], 5).is_nan());
    }
}
