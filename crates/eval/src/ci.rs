//! Confidence intervals for the AUROC.
//!
//! Two estimators:
//!
//! * [`auroc_ci_delong`] — the DeLong (1988) asymptotic variance of the
//!   Mann–Whitney AUC from its structural components, with a normal
//!   approximation interval. Exact asymptotics, `O(n log n)` via ranks.
//! * [`auroc_ci_bootstrap`] — stratified bootstrap percentile interval:
//!   resample positives and negatives independently, recompute the AUC.
//!   Distribution-free, costs `reps × O(n log n)`.
//!
//! The `fig1_auroc` experiment reports DeLong intervals so the per-window
//! comparison between stability and RFM carries its uncertainty.

use crate::roc::auroc;
use attrition_util::stats::quantile_sorted;
use attrition_util::Rng;

/// `(auc, lo, hi)` with `NaN`s when a class is empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AurocCi {
    /// Point estimate.
    pub auc: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl AurocCi {
    fn nan() -> AurocCi {
        AurocCi {
            auc: f64::NAN,
            lo: f64::NAN,
            hi: f64::NAN,
        }
    }
}

/// Standard normal quantile (Acklam's rational approximation; |error| <
/// 1.2e-8 — far below sampling noise here).
fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0,1)");
    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Midranks of `xs` (average ranks for ties), 1-based.
fn midranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// DeLong confidence interval at level `1 − alpha`.
pub fn auroc_ci_delong(labels: &[bool], scores: &[f64], alpha: f64) -> AurocCi {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let pos: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| l)
        .map(|(_, &s)| s)
        .collect();
    let neg: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| !l)
        .map(|(_, &s)| s)
        .collect();
    let (m, n) = (pos.len(), neg.len());
    if m == 0 || n == 0 {
        return AurocCi::nan();
    }
    // Structural components: V10_i = (R_i − R10_i)/n, V01_j = 1 − (R_j − R01_j)/m.
    let (v10, v01, auc) = delong_components(&pos, &neg);
    let var = |xs: &[f64]| -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64
    };
    let se = (var(&v10) / m as f64 + var(&v01) / n as f64).sqrt();
    let z = normal_quantile(1.0 - alpha / 2.0);
    AurocCi {
        auc,
        lo: (auc - z * se).max(0.0),
        hi: (auc + z * se).min(1.0),
    }
}

/// Result of a paired DeLong comparison of two models on the *same*
/// observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedDelong {
    /// AUC of model A.
    pub auc_a: f64,
    /// AUC of model B.
    pub auc_b: f64,
    /// `auc_a − auc_b`.
    pub delta: f64,
    /// Z statistic of the difference (accounting for the correlation of
    /// the two models' scores on shared observations).
    pub z: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_value: f64,
}

/// Standard normal CDF via `erf`-free Abramowitz–Stegun 7.1.26
/// approximation (|error| < 1.5e-7).
fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Structural components `(V10, V01, auc)` of one score vector.
fn delong_components(pos: &[f64], neg: &[f64]) -> (Vec<f64>, Vec<f64>, f64) {
    let (m, n) = (pos.len(), neg.len());
    let mut combined = pos.to_vec();
    combined.extend_from_slice(neg);
    let r_all = midranks(&combined);
    let r_pos = midranks(pos);
    let r_neg = midranks(neg);
    let auc = (r_all[..m].iter().sum::<f64>() - m as f64 * (m as f64 + 1.0) / 2.0)
        / (m as f64 * n as f64);
    let v10: Vec<f64> = (0..m).map(|i| (r_all[i] - r_pos[i]) / n as f64).collect();
    let v01: Vec<f64> = (0..n)
        .map(|j| 1.0 - (r_all[m + j] - r_neg[j]) / m as f64)
        .collect();
    (v10, v01, auc)
}

/// Paired DeLong test: do models A and B (scored on the same labeled
/// observations) have different AUCs?
///
/// Returns `None` when either class is empty or the variance degenerates
/// (e.g. both models separate perfectly).
pub fn delong_paired_test(
    labels: &[bool],
    scores_a: &[f64],
    scores_b: &[f64],
) -> Option<PairedDelong> {
    assert_eq!(
        labels.len(),
        scores_a.len(),
        "labels/scores_a length mismatch"
    );
    assert_eq!(
        labels.len(),
        scores_b.len(),
        "labels/scores_b length mismatch"
    );
    let idx_pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let idx_neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    let (m, n) = (idx_pos.len(), idx_neg.len());
    if m == 0 || n == 0 {
        return None;
    }
    let split = |scores: &[f64]| -> (Vec<f64>, Vec<f64>) {
        (
            idx_pos.iter().map(|&i| scores[i]).collect(),
            idx_neg.iter().map(|&i| scores[i]).collect(),
        )
    };
    let (pos_a, neg_a) = split(scores_a);
    let (pos_b, neg_b) = split(scores_b);
    let (v10_a, v01_a, auc_a) = delong_components(&pos_a, &neg_a);
    let (v10_b, v01_b, auc_b) = delong_components(&pos_b, &neg_b);
    let cov = |xs: &[f64], ys: &[f64]| -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        xs.iter()
            .zip(ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / (xs.len() - 1) as f64
    };
    // Var(ΔAUC) = [s10_a + s10_b − 2 cov10] / m + [s01_a + s01_b − 2 cov01] / n
    let var = (cov(&v10_a, &v10_a) + cov(&v10_b, &v10_b) - 2.0 * cov(&v10_a, &v10_b)) / m as f64
        + (cov(&v01_a, &v01_a) + cov(&v01_b, &v01_b) - 2.0 * cov(&v01_a, &v01_b)) / n as f64;
    let delta = auc_a - auc_b;
    if var <= 0.0 {
        return None;
    }
    let z = delta / var.sqrt();
    let p_value = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(PairedDelong {
        auc_a,
        auc_b,
        delta,
        z,
        p_value,
    })
}

/// Stratified bootstrap percentile interval at level `1 − alpha`.
pub fn auroc_ci_bootstrap(
    labels: &[bool],
    scores: &[f64],
    reps: usize,
    alpha: f64,
    rng: &mut Rng,
) -> AurocCi {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    assert!(reps > 0, "reps must be positive");
    let pos: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| l)
        .map(|(_, &s)| s)
        .collect();
    let neg: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| !l)
        .map(|(_, &s)| s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return AurocCi::nan();
    }
    let auc = auroc(labels, scores);
    let mut stats = Vec::with_capacity(reps);
    let mut resampled_scores = Vec::with_capacity(pos.len() + neg.len());
    let mut resampled_labels = Vec::with_capacity(pos.len() + neg.len());
    for _ in 0..reps {
        resampled_scores.clear();
        resampled_labels.clear();
        for _ in 0..pos.len() {
            resampled_scores.push(pos[rng.usize_below(pos.len())]);
            resampled_labels.push(true);
        }
        for _ in 0..neg.len() {
            resampled_scores.push(neg[rng.usize_below(neg.len())]);
            resampled_labels.push(false);
        }
        stats.push(auroc(&resampled_labels, &resampled_scores));
    }
    stats.sort_by(f64::total_cmp);
    AurocCi {
        auc,
        lo: quantile_sorted(&stats, alpha / 2.0),
        hi: quantile_sorted(&stats, 1.0 - alpha / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(n: usize, separation: f64, seed: u64) -> (Vec<bool>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(seed);
        let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        let scores: Vec<f64> = labels
            .iter()
            .map(|&l| rng.normal_with(if l { separation } else { 0.0 }, 1.0))
            .collect();
        (labels, scores)
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.999) - 3.090232).abs() < 1e-4);
    }

    #[test]
    fn delong_point_estimate_matches_auroc() {
        let (labels, scores) = scored(500, 1.0, 1);
        let ci = auroc_ci_delong(&labels, &scores, 0.05);
        let direct = auroc(&labels, &scores);
        assert!((ci.auc - direct).abs() < 1e-12, "{} vs {direct}", ci.auc);
        assert!(ci.lo < ci.auc && ci.auc < ci.hi);
    }

    #[test]
    fn delong_interval_narrows_with_n() {
        let (l1, s1) = scored(100, 1.0, 2);
        let (l2, s2) = scored(10_000, 1.0, 2);
        let small = auroc_ci_delong(&l1, &s1, 0.05);
        let large = auroc_ci_delong(&l2, &s2, 0.05);
        assert!(
            large.hi - large.lo < (small.hi - small.lo) / 3.0,
            "large-n interval not narrower: {large:?} vs {small:?}"
        );
    }

    #[test]
    fn delong_coverage_sanity() {
        // True AUC for separation d under equal-variance normals is
        // Φ(d/√2); with d=1 → ≈0.7602. The 95% CI should usually cover it.
        let true_auc = 0.7602;
        let mut covered = 0;
        for seed in 0..40 {
            let (labels, scores) = scored(400, 1.0, 100 + seed);
            let ci = auroc_ci_delong(&labels, &scores, 0.05);
            if ci.lo <= true_auc && true_auc <= ci.hi {
                covered += 1;
            }
        }
        assert!(covered >= 34, "coverage too low: {covered}/40");
    }

    #[test]
    fn delong_degenerate_nan() {
        let ci = auroc_ci_delong(&[true, true], &[0.1, 0.2], 0.05);
        assert!(ci.auc.is_nan());
    }

    #[test]
    fn bootstrap_brackets_point_estimate() {
        let (labels, scores) = scored(300, 1.0, 3);
        let mut rng = Rng::seed_from_u64(9);
        let ci = auroc_ci_bootstrap(&labels, &scores, 300, 0.05, &mut rng);
        assert!(ci.lo <= ci.auc && ci.auc <= ci.hi, "{ci:?}");
        assert!(ci.hi - ci.lo < 0.2, "interval too wide: {ci:?}");
    }

    #[test]
    fn bootstrap_and_delong_agree_roughly() {
        let (labels, scores) = scored(1000, 1.0, 4);
        let mut rng = Rng::seed_from_u64(10);
        let boot = auroc_ci_bootstrap(&labels, &scores, 500, 0.05, &mut rng);
        let delong = auroc_ci_delong(&labels, &scores, 0.05);
        assert!((boot.lo - delong.lo).abs() < 0.02, "{boot:?} vs {delong:?}");
        assert!((boot.hi - delong.hi).abs() < 0.02, "{boot:?} vs {delong:?}");
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.0249979).abs() < 1e-4);
    }

    #[test]
    fn paired_test_detects_better_model() {
        let mut rng = Rng::seed_from_u64(21);
        let n = 800;
        let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        // Model A: strong signal. Model B: same signal + heavy noise.
        let signal: Vec<f64> = labels
            .iter()
            .map(|&l| if l { 1.2 } else { 0.0 } + rng.normal())
            .collect();
        let noisy: Vec<f64> = signal.iter().map(|s| s + 3.0 * rng.normal()).collect();
        let t = delong_paired_test(&labels, &signal, &noisy).unwrap();
        assert!(t.auc_a > t.auc_b);
        assert!(t.delta > 0.05, "delta {}", t.delta);
        assert!(t.z > 2.0, "z {}", t.z);
        assert!(t.p_value < 0.05, "p {}", t.p_value);
    }

    #[test]
    fn paired_test_similar_models_not_significant() {
        let mut rng = Rng::seed_from_u64(22);
        let n = 400;
        let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        let base: Vec<f64> = labels
            .iter()
            .map(|&l| if l { 1.0 } else { 0.0 } + rng.normal())
            .collect();
        // Two models = same signal with independent small perturbations.
        let a: Vec<f64> = base.iter().map(|s| s + 0.1 * rng.normal()).collect();
        let b: Vec<f64> = base.iter().map(|s| s + 0.1 * rng.normal()).collect();
        let t = delong_paired_test(&labels, &a, &b).unwrap();
        assert!(t.delta.abs() < 0.05, "delta {}", t.delta);
        assert!(t.p_value > 0.05, "p {}", t.p_value);
    }

    #[test]
    fn paired_test_degenerate_none() {
        assert!(delong_paired_test(&[true, true], &[0.1, 0.2], &[0.3, 0.4]).is_none());
        // Identical scores: zero variance of the difference.
        let labels = [true, false, true, false];
        let s = [0.9, 0.1, 0.8, 0.2];
        assert!(delong_paired_test(&labels, &s, &s).is_none());
    }

    #[test]
    fn perfect_separation_interval_clamped() {
        let labels = [true, true, true, false, false, false];
        let scores = [0.9, 0.8, 0.7, 0.3, 0.2, 0.1];
        let ci = auroc_ci_delong(&labels, &scores, 0.05);
        assert_eq!(ci.auc, 1.0);
        assert!(ci.hi <= 1.0);
        assert!(ci.lo >= 0.0);
    }
}
