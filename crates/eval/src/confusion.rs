//! Thresholded binary-classification metrics.
//!
//! Once a stability threshold β is chosen ("If `Stability_i^k > β` the
//! customer is considered loyal. Otherwise … defecting"), retention
//! marketing cares about the resulting confusion matrix: precision of the
//! targeted list, recall of actual defectors, and lift over blanket
//! mailing.

use std::fmt;

/// Counts of a binary confusion matrix (positive = defector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Positives predicted positive.
    pub tp: usize,
    /// Negatives predicted positive.
    pub fp: usize,
    /// Negatives predicted negative.
    pub tn: usize,
    /// Positives predicted negative.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tally predictions against labels.
    pub fn from_predictions(labels: &[bool], predictions: &[bool]) -> ConfusionMatrix {
        assert_eq!(
            labels.len(),
            predictions.len(),
            "labels/predictions length mismatch"
        );
        let mut m = ConfusionMatrix::default();
        for (&l, &p) in labels.iter().zip(predictions) {
            match (l, p) {
                (true, true) => m.tp += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
                (true, false) => m.fn_ += 1,
            }
        }
        m
    }

    /// Tally `score >= threshold` predictions (higher = more positive).
    pub fn at_threshold(labels: &[bool], scores: &[f64], threshold: f64) -> ConfusionMatrix {
        assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
        let predictions: Vec<bool> = scores.iter().map(|&s| s >= threshold).collect();
        ConfusionMatrix::from_predictions(labels, &predictions)
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions (`NaN` when empty).
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// TP / predicted positive (`NaN` if nothing predicted positive).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// TP / actual positive, a.k.a. sensitivity/TPR (`NaN` if no
    /// positives).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// TN / actual negative (`NaN` if no negatives).
    pub fn specificity(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// FP / actual negative (`NaN` if no negatives).
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.tn + self.fp)
    }

    /// Harmonic mean of precision and recall (`NaN` when undefined).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p.is_nan() || r.is_nan() || p + r == 0.0 {
            f64::NAN
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Precision over the positive base rate: how much better targeting
    /// by this classifier is than mailing uniformly at random (`NaN` when
    /// undefined).
    pub fn lift(&self) -> f64 {
        let base = ratio(self.tp + self.fn_, self.total());
        let p = self.precision();
        if base == 0.0 {
            f64::NAN
        } else {
            p / base
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} (precision={:.3} recall={:.3} f1={:.3})",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally() {
        let labels = [true, true, false, false, true];
        let preds = [true, false, true, false, true];
        let m = ConfusionMatrix::from_predictions(&labels, &preds);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn metrics_known_values() {
        let m = ConfusionMatrix {
            tp: 2,
            fp: 1,
            tn: 1,
            fn_: 1,
        };
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.specificity() - 0.5).abs() < 1e-12);
        assert!((m.false_positive_rate() - 0.5).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        // base rate = 3/5, lift = (2/3)/(3/5) = 10/9
        assert!((m.lift() - 10.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn at_threshold_semantics() {
        let labels = [true, false];
        let scores = [0.7, 0.7];
        let m = ConfusionMatrix::at_threshold(&labels, &scores, 0.7);
        // score >= threshold predicts positive for both.
        assert_eq!((m.tp, m.fp), (1, 1));
        let m2 = ConfusionMatrix::at_threshold(&labels, &scores, 0.71);
        assert_eq!((m2.tp, m2.fp, m2.fn_, m2.tn), (0, 0, 1, 1));
    }

    #[test]
    fn degenerate_nan() {
        let m = ConfusionMatrix::default();
        assert!(m.accuracy().is_nan());
        assert!(m.precision().is_nan());
        assert!(m.recall().is_nan());
        assert!(m.f1().is_nan());
        assert!(m.lift().is_nan());
    }

    #[test]
    fn perfect_classifier() {
        let labels = [true, false, true];
        let m = ConfusionMatrix::from_predictions(&labels, &labels);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert!((m.lift() - 1.5).abs() < 1e-12); // 1 / (2/3)
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }

    #[test]
    fn display_renders() {
        let m = ConfusionMatrix {
            tp: 1,
            fp: 0,
            tn: 1,
            fn_: 0,
        };
        let s = m.to_string();
        assert!(s.contains("tp=1"));
        assert!(s.contains("precision=1.000"));
    }
}
