//! Cross-validation splitters.
//!
//! The paper fixes its hyper-parameters ("The window length … is set to
//! two months and the α parameter is set to 2. These values were chosen
//! after performing a 5-fold cross-validation search"). [`KFold`] and
//! [`StratifiedKFold`] provide the deterministic splits that the
//! `cv_param_search` experiment uses to reproduce that selection.

use attrition_util::Rng;

/// One train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of the training portion.
    pub train: Vec<usize>,
    /// Indices of the held-out portion.
    pub test: Vec<usize>,
}

/// Plain k-fold over `n` indices, shuffled deterministically by seed.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Fold>,
}

impl KFold {
    /// Split `0..n` into `k` folds. Panics unless `2 <= k <= n`.
    pub fn new(n: usize, k: usize, seed: u64) -> KFold {
        assert!(k >= 2, "k-fold needs k >= 2");
        assert!(k <= n, "k-fold needs k <= n");
        let mut rng = Rng::seed_from_u64(seed);
        let perm = rng.permutation(n);
        KFold {
            folds: folds_from_groups(&assign_round_robin(&perm, k)),
        }
    }

    /// The folds.
    pub fn folds(&self) -> &[Fold] {
        &self.folds
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }
}

/// Stratified k-fold: each fold preserves the positive/negative ratio of
/// `labels` as closely as integer counts allow.
#[derive(Debug, Clone)]
pub struct StratifiedKFold {
    folds: Vec<Fold>,
}

impl StratifiedKFold {
    /// Split `0..labels.len()` into `k` folds stratified by label.
    ///
    /// Panics unless `2 <= k` and each class has at least `k` members.
    pub fn new(labels: &[bool], k: usize, seed: u64) -> StratifiedKFold {
        assert!(k >= 2, "k-fold needs k >= 2");
        let mut rng = Rng::seed_from_u64(seed);
        let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
        let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
        assert!(
            pos.len() >= k && neg.len() >= k,
            "each class needs at least k members (pos={}, neg={}, k={k})",
            pos.len(),
            neg.len()
        );
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        let mut groups = assign_round_robin(&pos, k);
        for (g, extra) in groups.iter_mut().zip(assign_round_robin(&neg, k)) {
            g.extend(extra);
        }
        StratifiedKFold {
            folds: folds_from_groups(&groups),
        }
    }

    /// The folds.
    pub fn folds(&self) -> &[Fold] {
        &self.folds
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }
}

/// Deal shuffled indices into `k` groups round-robin.
fn assign_round_robin(indices: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::with_capacity(indices.len() / k + 1); k];
    for (pos, &idx) in indices.iter().enumerate() {
        groups[pos % k].push(idx);
    }
    groups
}

/// Each group in turn is the test set; the others are training.
fn folds_from_groups(groups: &[Vec<usize>]) -> Vec<Fold> {
    (0..groups.len())
        .map(|t| {
            let mut train = Vec::new();
            for (g, group) in groups.iter().enumerate() {
                if g != t {
                    train.extend_from_slice(group);
                }
            }
            let mut test = groups[t].clone();
            train.sort_unstable();
            test.sort_unstable();
            Fold { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::check::forall;
    use std::collections::HashSet;

    #[test]
    fn kfold_partitions() {
        let kf = KFold::new(10, 3, 1);
        assert_eq!(kf.k(), 3);
        let mut seen = HashSet::new();
        for fold in kf.folds() {
            for &i in &fold.test {
                assert!(seen.insert(i), "index {i} in two test folds");
            }
            // Train and test are disjoint and together cover 0..10.
            let train: HashSet<usize> = fold.train.iter().copied().collect();
            assert!(fold.test.iter().all(|i| !train.contains(i)));
            assert_eq!(fold.train.len() + fold.test.len(), 10);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn kfold_deterministic() {
        let a = KFold::new(20, 5, 9);
        let b = KFold::new(20, 5, 9);
        assert_eq!(a.folds(), b.folds());
        let c = KFold::new(20, 5, 10);
        assert_ne!(a.folds(), c.folds());
    }

    #[test]
    fn kfold_balanced_sizes() {
        let kf = KFold::new(11, 3, 0);
        let sizes: Vec<usize> = kf.folds().iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 11);
        for &s in &sizes {
            assert!((3..=4).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_k1_panics() {
        KFold::new(10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "k <= n")]
    fn kfold_k_too_large_panics() {
        KFold::new(3, 5, 0);
    }

    #[test]
    fn stratified_preserves_ratio() {
        // 20 positives, 40 negatives, 5 folds → each test fold has
        // exactly 4 positives and 8 negatives.
        let labels: Vec<bool> = (0..60).map(|i| i < 20).collect();
        let skf = StratifiedKFold::new(&labels, 5, 3);
        for fold in skf.folds() {
            let pos = fold.test.iter().filter(|&&i| labels[i]).count();
            assert_eq!(pos, 4, "fold positives {pos}");
            assert_eq!(fold.test.len(), 12);
        }
    }

    #[test]
    fn stratified_partitions() {
        let labels: Vec<bool> = (0..31).map(|i| i % 3 == 0).collect();
        let skf = StratifiedKFold::new(&labels, 3, 7);
        let mut seen = HashSet::new();
        for fold in skf.folds() {
            for &i in &fold.test {
                assert!(seen.insert(i));
            }
        }
        assert_eq!(seen.len(), 31);
    }

    #[test]
    #[should_panic(expected = "at least k members")]
    fn stratified_small_class_panics() {
        let labels = [true, false, false, false, false];
        StratifiedKFold::new(&labels, 2, 0);
    }

    #[test]
    fn kfold_always_partitions() {
        forall(
            256,
            |rng| {
                let n = 4 + rng.usize_below(76);
                let k = 2 + rng.usize_below(3);
                (n, k, rng.u64_below(100))
            },
            |&(n, k, seed)| {
                // n ≥ 4 and k ≤ 4 keep k ≤ n by construction.
                let kf = KFold::new(n, k, seed);
                let mut seen = vec![false; n];
                for fold in kf.folds() {
                    for &i in &fold.test {
                        assert!(!seen[i]);
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s));
            },
        );
    }
}
