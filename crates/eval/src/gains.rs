//! Cumulative gains and lift curves.
//!
//! Retention budgets are set as "mail the top X% riskiest customers";
//! the gains curve answers what fraction of true defectors such a
//! campaign captures, and the lift curve how much better that is than
//! mailing at random. Standard campaign-planning companions to the
//! paper's AUROC evaluation.

/// One point of a cumulative gains curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainsPoint {
    /// Fraction of the population targeted (top-scored first), `(0, 1]`.
    pub targeted_fraction: f64,
    /// Fraction of all positives captured within the targeted set.
    pub captured_fraction: f64,
    /// Lift over random targeting: `captured / targeted`.
    pub lift: f64,
}

/// A cumulative gains curve (one point per distinct score threshold).
#[derive(Debug, Clone, PartialEq)]
pub struct GainsCurve {
    /// Points with strictly increasing `targeted_fraction`.
    pub points: Vec<GainsPoint>,
}

impl GainsCurve {
    /// Compute the curve (higher score = more positive). Empty when
    /// there are no positives or no observations.
    pub fn compute(labels: &[bool], scores: &[f64]) -> GainsCurve {
        assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
        let n = labels.len();
        let n_pos = labels.iter().filter(|&&l| l).count();
        if n == 0 || n_pos == 0 {
            return GainsCurve { points: Vec::new() };
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let mut points = Vec::new();
        let mut captured = 0usize;
        let mut i = 0;
        while i < n {
            let threshold = scores[order[i]];
            while i < n && scores[order[i]] == threshold {
                if labels[order[i]] {
                    captured += 1;
                }
                i += 1;
            }
            let targeted_fraction = i as f64 / n as f64;
            let captured_fraction = captured as f64 / n_pos as f64;
            points.push(GainsPoint {
                targeted_fraction,
                captured_fraction,
                lift: captured_fraction / targeted_fraction,
            });
        }
        GainsCurve { points }
    }

    /// Captured fraction when targeting (at least) the top `fraction` of
    /// the population; `None` on an empty curve.
    pub fn captured_at(&self, fraction: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.targeted_fraction >= fraction)
            .map(|p| p.captured_fraction)
    }

    /// Smallest targeted fraction capturing at least `captured` of the
    /// positives; `None` if never reached (cannot happen for
    /// `captured ≤ 1` on a non-empty curve).
    pub fn targeted_for(&self, captured: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.captured_fraction >= captured)
            .map(|p| p.targeted_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_captures_early() {
        // 2 positives of 4, ranked on top.
        let labels = [true, true, false, false];
        let scores = [0.9, 0.8, 0.2, 0.1];
        let curve = GainsCurve::compute(&labels, &scores);
        assert_eq!(curve.captured_at(0.5), Some(1.0));
        assert_eq!(curve.targeted_for(1.0), Some(0.5));
        // Lift at the first point: captured 0.5 of positives with 0.25 of
        // the population → 2.0.
        assert!((curve.points[0].lift - 2.0).abs() < 1e-12);
    }

    #[test]
    fn random_ranking_diagonal() {
        let mut rng = attrition_util::Rng::seed_from_u64(1);
        let n = 50_000;
        let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.3)).collect();
        let scores: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
        let curve = GainsCurve::compute(&labels, &scores);
        for frac in [0.2, 0.5, 0.8] {
            let captured = curve.captured_at(frac).unwrap();
            assert!(
                (captured - frac).abs() < 0.02,
                "at {frac}: captured {captured}"
            );
        }
    }

    #[test]
    fn curve_ends_at_one_one() {
        let labels = [true, false, true];
        let scores = [0.3, 0.2, 0.1];
        let curve = GainsCurve::compute(&labels, &scores);
        let last = curve.points.last().unwrap();
        assert_eq!(last.targeted_fraction, 1.0);
        assert_eq!(last.captured_fraction, 1.0);
        assert!((last.lift - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_captured() {
        let labels = [true, false, true, false, true, false];
        let scores = [0.9, 0.85, 0.6, 0.5, 0.3, 0.1];
        let curve = GainsCurve::compute(&labels, &scores);
        for pair in curve.points.windows(2) {
            assert!(pair[1].targeted_fraction > pair[0].targeted_fraction);
            assert!(pair[1].captured_fraction >= pair[0].captured_fraction);
        }
    }

    #[test]
    fn ties_grouped() {
        let labels = [true, false, true];
        let scores = [0.5, 0.5, 0.5];
        let curve = GainsCurve::compute(&labels, &scores);
        assert_eq!(curve.points.len(), 1);
        assert_eq!(curve.points[0].targeted_fraction, 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(GainsCurve::compute(&[], &[]).points.is_empty());
        assert!(GainsCurve::compute(&[false], &[0.1]).points.is_empty());
        let empty = GainsCurve { points: Vec::new() };
        assert_eq!(empty.captured_at(0.5), None);
        assert_eq!(empty.targeted_for(0.5), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        GainsCurve::compute(&[true], &[0.1, 0.2]);
    }
}
