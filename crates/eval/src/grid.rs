//! Grid search.
//!
//! Evaluates a caller-supplied scorer over a list of candidate parameter
//! values and reports every score plus the argmax — the shape of the
//! paper's "(α, window) chosen by 5-fold cross-validation search" (the
//! scorer is typically a CV-mean-AUROC closure built with [`crate::cv`]).

/// The score of one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult<P> {
    /// The candidate parameters.
    pub params: P,
    /// Its score (higher is better). `NaN` scores lose to any number.
    pub score: f64,
}

/// Score every candidate and return `(all results, best index)`.
///
/// Results keep the candidate order. `best` is `None` when `candidates`
/// is empty or every score is `NaN`.
pub fn grid_search<P: Clone>(
    candidates: &[P],
    mut scorer: impl FnMut(&P) -> f64,
) -> (Vec<GridResult<P>>, Option<usize>) {
    let results: Vec<GridResult<P>> = candidates
        .iter()
        .map(|p| GridResult {
            params: p.clone(),
            score: scorer(p),
        })
        .collect();
    let best = results
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.score.is_nan())
        .max_by(|(_, a), (_, b)| a.score.total_cmp(&b.score))
        .map(|(i, _)| i);
    (results, best)
}

/// Cartesian product of two candidate axes, row-major (`a` outer).
pub fn product2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_best() {
        let candidates = [1.0f64, 2.0, 3.0, 4.0];
        let (results, best) = grid_search(&candidates, |&x| -(x - 2.5f64).abs());
        assert_eq!(results.len(), 4);
        // 2.0 and 3.0 tie at -0.5; max_by returns the last maximal element.
        let b = best.unwrap();
        assert!(b == 1 || b == 2);
        assert!((results[b].score + 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates() {
        let (results, best) = grid_search::<f64>(&[], |_| 0.0);
        assert!(results.is_empty());
        assert!(best.is_none());
    }

    #[test]
    fn all_nan_scores() {
        let (_, best) = grid_search(&[1, 2, 3], |_| f64::NAN);
        assert!(best.is_none());
    }

    #[test]
    fn nan_skipped_but_others_win() {
        let (_, best) = grid_search(&[1, 2, 3], |&x| if x == 2 { 5.0 } else { f64::NAN });
        assert_eq!(best, Some(1));
    }

    #[test]
    fn preserves_candidate_order() {
        let (results, _) = grid_search(&["a", "b"], |_| 0.0);
        assert_eq!(results[0].params, "a");
        assert_eq!(results[1].params, "b");
    }

    #[test]
    fn product2_row_major() {
        let p = product2(&[1, 2], &['x', 'y', 'z']);
        assert_eq!(
            p,
            vec![(1, 'x'), (1, 'y'), (1, 'z'), (2, 'x'), (2, 'y'), (2, 'z')]
        );
        assert!(product2::<i32, i32>(&[], &[1]).is_empty());
    }
}
