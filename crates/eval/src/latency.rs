//! Detection latency at a fixed false-alarm budget.
//!
//! AUROC says *whether* a model separates defectors from loyal
//! customers; this module says *when*. The protocol (shared by the
//! `detection_latency` bench bin and the per-scenario evaluation): pick
//! the threshold as the `(1 − budget)` quantile of loyal customers'
//! maximum score over the evaluation windows — at most `budget` of
//! loyal customers are ever falsely flagged — then measure, per
//! defector, the months between their true onset and the end of the
//! first flagged window.
//!
//! Everything is index-based (`series[i][window]`, `onset_months[i]`),
//! so the module stays free of store/model dependencies and one code
//! path serves the stability model, the RFM baseline, and any future
//! model-zoo member.

use attrition_util::stats::{quantile, Summary};

/// Protocol knobs.
#[derive(Debug, Clone, Copy)]
pub struct LatencyConfig {
    /// Maximum tolerated fraction of loyal customers ever falsely
    /// flagged during the evaluation windows (the paper-style budget
    /// is 0.10).
    pub fpr_budget: f64,
    /// Window length in months (delay is reported in months).
    pub w_months: u32,
    /// First window from which alarms count — typically the earliest
    /// defection-onset window, so the pre-onset period (where both
    /// cohorts behave identically) neither spends the budget nor
    /// produces vacuous detections.
    pub eval_from_window: u32,
}

/// The outcome of one latency evaluation.
#[derive(Debug, Clone)]
pub struct LatencySummary {
    /// Score threshold implied by the budget.
    pub threshold: f64,
    /// Realized loyal false-alarm rate (≤ budget up to quantile ties).
    pub loyal_fpr: f64,
    /// Loyal customers considered.
    pub num_loyal: usize,
    /// Defectors considered (those with an onset).
    pub num_defectors: usize,
    /// Defectors flagged at least once after their onset.
    pub detected: usize,
    /// Per-detected-defector delay in months: end of the first flagged
    /// window minus the onset month (minimum possible is `w_months`).
    pub delays_months: Vec<f64>,
    /// Median of `delays_months` (NaN when nothing was detected).
    pub median_delay: f64,
    /// 90th percentile of `delays_months`.
    pub p90_delay: f64,
    /// Mean of `delays_months`.
    pub mean_delay: f64,
}

impl LatencySummary {
    /// Detected fraction of defectors (NaN when there are none).
    pub fn detected_fraction(&self) -> f64 {
        self.detected as f64 / self.num_defectors as f64
    }
}

/// Evaluate detection latency.
///
/// `series[i]` is customer `i`'s per-window score (higher = more
/// attrition-suspect); `onset_months[i]` is their ground-truth defection
/// onset, `None` for loyal customers. Customers whose onset lands at or
/// beyond the end of `series[i]` contribute as loyal (their defection is
/// outside the evaluated horizon).
///
/// # Panics
/// When `series` and `onset_months` lengths differ.
pub fn detection_latency(
    series: &[Vec<f64>],
    onset_months: &[Option<u32>],
    cfg: &LatencyConfig,
) -> LatencySummary {
    assert_eq!(
        series.len(),
        onset_months.len(),
        "one onset entry per score series"
    );
    let from = cfg.eval_from_window as usize;
    // Threshold from loyal customers' maximum score over the evaluation
    // windows.
    let loyal_max: Vec<f64> = series
        .iter()
        .zip(onset_months)
        .filter(|(_, onset)| onset.is_none())
        .map(|(s, _)| {
            s.get(from..)
                .unwrap_or(&[])
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    let (threshold, loyal_fpr) = if loyal_max.is_empty() {
        (f64::INFINITY, 0.0)
    } else {
        let t = quantile(&loyal_max, 1.0 - cfg.fpr_budget);
        let fpr = loyal_max.iter().filter(|&&m| m > t).count() as f64 / loyal_max.len() as f64;
        (t, fpr)
    };

    let mut delays = Vec::new();
    let mut detected = 0usize;
    let mut num_defectors = 0usize;
    for (s, onset) in series.iter().zip(onset_months) {
        let Some(onset_month) = onset else { continue };
        // Scan from the later of the customer's own onset window and the
        // evaluation start.
        let onset_window = (onset_month / cfg.w_months).max(cfg.eval_from_window) as usize;
        if onset_window >= s.len() {
            continue; // onset beyond the scored horizon: not evaluable
        }
        num_defectors += 1;
        if let Some(offset) = s[onset_window..].iter().position(|&v| v > threshold) {
            detected += 1;
            let flagged_window = (onset_window + offset) as u32;
            delays.push(((flagged_window + 1) * cfg.w_months) as f64 - *onset_month as f64);
        }
    }
    let summary = Summary::of(&delays);
    LatencySummary {
        threshold,
        loyal_fpr,
        num_loyal: loyal_max.len(),
        num_defectors,
        detected,
        p90_delay: quantile(&delays, 0.9),
        median_delay: summary.median,
        mean_delay: summary.mean,
        delays_months: delays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(from: u32) -> LatencyConfig {
        LatencyConfig {
            fpr_budget: 0.10,
            w_months: 2,
            eval_from_window: from,
        }
    }

    #[test]
    fn detects_step_change_with_minimal_delay() {
        // 20 loyal customers flat at 0.1; one defector steps to 0.9 in
        // window 5 (onset month 10, w=2).
        let mut series: Vec<Vec<f64>> = (0..20).map(|_| vec![0.1; 10]).collect();
        let mut onsets: Vec<Option<u32>> = vec![None; 20];
        let mut defector = vec![0.1; 10];
        for v in defector.iter_mut().skip(5) {
            *v = 0.9;
        }
        series.push(defector);
        onsets.push(Some(10));
        let out = detection_latency(&series, &onsets, &cfg(5));
        assert_eq!(out.num_loyal, 20);
        assert_eq!(out.num_defectors, 1);
        assert_eq!(out.detected, 1);
        // Flagged in window 5 → delay = (5+1)*2 − 10 = 2 (the minimum).
        assert_eq!(out.delays_months, vec![2.0]);
        assert!(out.loyal_fpr <= 0.10 + 1e-12);
        assert!(out.threshold >= 0.1 && out.threshold < 0.9);
    }

    #[test]
    fn respects_fpr_budget_with_noisy_loyals() {
        // Loyal maxima spread 0..1; threshold at the 0.9 quantile keeps
        // the realized FPR within the budget.
        let series: Vec<Vec<f64>> = (0..100).map(|i| vec![0.0, i as f64 / 99.0]).collect();
        let onsets = vec![None; 100];
        let out = detection_latency(&series, &onsets, &cfg(0));
        assert_eq!(out.num_defectors, 0);
        assert_eq!(out.detected, 0);
        assert!(out.loyal_fpr <= 0.10 + 1e-12, "fpr {}", out.loyal_fpr);
        assert!(out.delays_months.is_empty());
        assert!(out.median_delay.is_nan());
    }

    #[test]
    fn undetected_defector_counts_but_adds_no_delay() {
        let mut series: Vec<Vec<f64>> = (0..10).map(|_| vec![0.5; 6]).collect();
        let mut onsets: Vec<Option<u32>> = vec![None; 10];
        series.push(vec![0.2; 6]); // never crosses the loyal threshold
        onsets.push(Some(4));
        let out = detection_latency(&series, &onsets, &cfg(2));
        assert_eq!(out.num_defectors, 1);
        assert_eq!(out.detected, 0);
        assert_eq!(out.detected_fraction(), 0.0);
    }

    #[test]
    fn per_customer_onsets_use_their_own_window() {
        // Two defectors with different onsets; both step immediately.
        let loyal: Vec<Vec<f64>> = (0..20).map(|_| vec![0.0; 8]).collect();
        let mut series = loyal;
        let mut onsets: Vec<Option<u32>> = vec![None; 20];
        let mut early = vec![0.0; 8];
        for v in early.iter_mut().skip(2) {
            *v = 1.0;
        }
        series.push(early);
        onsets.push(Some(4)); // window 2
        let mut late = vec![0.0; 8];
        for v in late.iter_mut().skip(6) {
            *v = 1.0;
        }
        series.push(late);
        onsets.push(Some(12)); // window 6
        let out = detection_latency(&series, &onsets, &cfg(2));
        assert_eq!(out.detected, 2);
        // Both flagged in their own onset window: delay = w_months each.
        assert_eq!(out.delays_months, vec![2.0, 2.0]);
    }

    #[test]
    fn onset_beyond_horizon_is_not_evaluable() {
        let series = vec![vec![0.0; 4], vec![0.0; 4]];
        let onsets = vec![None, Some(100)];
        let out = detection_latency(&series, &onsets, &cfg(0));
        assert_eq!(out.num_defectors, 0);
        assert_eq!(out.num_loyal, 1);
    }

    #[test]
    fn no_loyal_customers_means_infinite_threshold() {
        let series = vec![vec![0.9; 4]];
        let onsets = vec![Some(0)];
        let out = detection_latency(&series, &onsets, &cfg(0));
        assert_eq!(out.num_loyal, 0);
        assert_eq!(out.detected, 0);
        assert!(out.threshold.is_infinite());
    }

    #[test]
    #[should_panic(expected = "one onset entry per score series")]
    fn mismatched_lengths_panic() {
        detection_latency(&[vec![0.0]], &[], &cfg(0));
    }
}
