//! # attrition-eval
//!
//! Evaluation toolkit used by every experiment:
//!
//! * [`roc`] — ROC curves and AUROC (the paper's headline metric,
//!   Figure 1), computed exactly by the Mann–Whitney rank statistic with
//!   tie correction; threshold selection by Youden's J.
//! * [`confusion`] — thresholded binary-classification metrics
//!   (precision, recall, F1, lift).
//! * [`cv`] — deterministic k-fold and stratified k-fold cross-validation
//!   (the paper selects α and the window length by 5-fold CV).
//! * [`grid`] — grid search driven by a caller-supplied scorer.
//! * [`calibration`] — Brier score and reliability bins.
//! * [`latency`] — detection delay at a fixed false-alarm budget
//!   (shared by the latency bench and the per-scenario evaluation).
//!
//! The crate is dependency-light (only `attrition-util`) and fully
//! generic over where scores come from, so the stability model and the
//! RFM baseline are evaluated by identical code paths.

pub mod calibration;
pub mod ci;
pub mod confusion;
pub mod cv;
pub mod gains;
pub mod grid;
pub mod latency;
pub mod pr;
pub mod roc;

pub use ci::{auroc_ci_bootstrap, auroc_ci_delong, delong_paired_test, AurocCi, PairedDelong};
pub use confusion::ConfusionMatrix;
pub use cv::{KFold, StratifiedKFold};
pub use gains::{GainsCurve, GainsPoint};
pub use grid::{grid_search, GridResult};
pub use latency::{detection_latency, LatencyConfig, LatencySummary};
pub use pr::{average_precision, PrCurve, PrPoint};
pub use roc::{auroc, RocCurve, RocPoint};
