//! Precision–recall analysis.
//!
//! Retention campaigns flag a small minority of customers, and under
//! class imbalance PR curves are more informative than ROC: they answer
//! "if I mail the top-N riskiest customers, what fraction are really
//! defecting?" directly.

/// One point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Recall (fraction of positives captured) at this threshold.
    pub recall: f64,
    /// Precision among predicted positives at this threshold.
    pub precision: f64,
    /// Predict positive when `score >= threshold`.
    pub threshold: f64,
}

/// An empirical precision–recall curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PrCurve {
    /// Points in order of decreasing threshold (increasing recall).
    pub points: Vec<PrPoint>,
}

impl PrCurve {
    /// Compute the PR curve (higher score = more positive). Returns an
    /// empty curve when there are no positives.
    pub fn compute(labels: &[bool], scores: &[f64]) -> PrCurve {
        assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
        let n_pos = labels.iter().filter(|&&l| l).count();
        if n_pos == 0 {
            return PrCurve { points: Vec::new() };
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let mut points = Vec::new();
        let (mut tp, mut fp) = (0usize, 0usize);
        let mut i = 0;
        while i < order.len() {
            let threshold = scores[order[i]];
            while i < order.len() && scores[order[i]] == threshold {
                if labels[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(PrPoint {
                recall: tp as f64 / n_pos as f64,
                precision: tp as f64 / (tp + fp) as f64,
                threshold,
            });
        }
        PrCurve { points }
    }

    /// Average precision: the standard step-wise integral
    /// `Σ (R_i − R_{i−1}) · P_i`. `NaN` on an empty curve.
    pub fn average_precision(&self) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        let mut ap = 0.0;
        let mut prev_recall = 0.0;
        for p in &self.points {
            ap += (p.recall - prev_recall) * p.precision;
            prev_recall = p.recall;
        }
        ap
    }

    /// Precision at the smallest threshold reaching at least `recall`
    /// (`None` if the curve never reaches it).
    pub fn precision_at_recall(&self, recall: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.recall >= recall)
            .map(|p| p.precision)
    }
}

/// Average precision convenience wrapper.
pub fn average_precision(labels: &[bool], scores: &[f64]) -> f64 {
    PrCurve::compute(labels, scores).average_precision()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let labels = [true, true, false, false];
        let scores = [0.9, 0.8, 0.2, 0.1];
        let curve = PrCurve::compute(&labels, &scores);
        assert!((curve.average_precision() - 1.0).abs() < 1e-12);
        assert_eq!(curve.precision_at_recall(1.0), Some(1.0));
    }

    #[test]
    fn worst_ranking() {
        let labels = [false, false, true];
        let scores = [0.9, 0.8, 0.1];
        let curve = PrCurve::compute(&labels, &scores);
        // The single positive is found last: AP = 1/3.
        assert!((curve.average_precision() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_intermediate_case() {
        // Ranking: +, -, + → points: (0.5, 1.0), (0.5, 0.5), (1.0, 2/3).
        let labels = [true, false, true];
        let scores = [0.9, 0.8, 0.7];
        let curve = PrCurve::compute(&labels, &scores);
        let ap = curve.average_precision();
        // AP = 0.5·1.0 + 0·0.5 + 0.5·(2/3) = 0.8333…
        assert!((ap - (0.5 + 0.5 * 2.0 / 3.0)).abs() < 1e-12, "ap {ap}");
    }

    #[test]
    fn ties_grouped() {
        let labels = [true, false];
        let scores = [0.5, 0.5];
        let curve = PrCurve::compute(&labels, &scores);
        assert_eq!(curve.points.len(), 1);
        assert_eq!(curve.points[0].recall, 1.0);
        assert_eq!(curve.points[0].precision, 0.5);
    }

    #[test]
    fn no_positives_empty() {
        let curve = PrCurve::compute(&[false, false], &[0.1, 0.2]);
        assert!(curve.points.is_empty());
        assert!(curve.average_precision().is_nan());
        assert_eq!(curve.precision_at_recall(0.5), None);
    }

    #[test]
    fn random_scores_ap_near_base_rate() {
        let mut rng = attrition_util::Rng::seed_from_u64(5);
        let n = 20_000;
        let labels: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.2)).collect();
        let scores: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
        let ap = average_precision(&labels, &scores);
        assert!((ap - 0.2).abs() < 0.02, "ap {ap}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        PrCurve::compute(&[true], &[0.1, 0.2]);
    }
}
