//! ROC analysis.
//!
//! The paper evaluates discrimination with "the area under the ROC curve
//! for different window indices", sweeping the stability threshold β. We
//! compute the AUROC exactly via the Mann–Whitney rank statistic (with
//! average ranks for ties), which equals the area under the empirical ROC
//! curve without choosing a threshold grid, and provide the explicit
//! curve for plotting and threshold selection.
//!
//! Convention: **higher score = more likely positive**. The stability
//! model flags *low* stability as defection, so callers feed it as
//! `-stability` (or `1 − stability`).

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
    /// The threshold: predict positive when `score >= threshold`.
    pub threshold: f64,
}

/// An empirical ROC curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Points from `(0,0)` (threshold `+inf`) to `(1,1)` (threshold
    /// `-inf`), in order of decreasing threshold.
    pub points: Vec<RocPoint>,
}

/// AUROC by the Mann–Whitney U statistic with tie correction.
///
/// `labels[i]` is true for the positive class; `scores[i]` is the
/// classifier score (higher = more positive). Returns `NaN` when either
/// class is empty.
///
/// Equal to the probability that a random positive outranks a random
/// negative (ties counting half), which is exactly the area under the
/// empirical ROC curve.
///
/// ```
/// use attrition_eval::auroc;
/// let labels = [true, true, false, false];
/// let scores = [0.9, 0.6, 0.7, 0.1]; // one inversion
/// assert_eq!(auroc(&labels, &scores), 0.75);
/// ```
pub fn auroc(labels: &[bool], scores: &[f64]) -> f64 {
    let _timer = attrition_obs::ScopedTimer::new("eval.auroc_ms");
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return f64::NAN;
    }
    // Rank the scores ascending with average ranks for ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based: positions i..=j share the average rank.
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

impl RocCurve {
    /// Compute the empirical ROC curve.
    ///
    /// Returns a curve with only the trivial endpoints when either class
    /// is empty.
    pub fn compute(labels: &[bool], scores: &[f64]) -> RocCurve {
        assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
        let n_pos = labels.iter().filter(|&&l| l).count() as f64;
        let n_neg = labels.len() as f64 - n_pos;
        let mut points = vec![RocPoint {
            fpr: 0.0,
            tpr: 0.0,
            threshold: f64::INFINITY,
        }];
        if n_pos == 0.0 || n_neg == 0.0 {
            points.push(RocPoint {
                fpr: 1.0,
                tpr: 1.0,
                threshold: f64::NEG_INFINITY,
            });
            return RocCurve { points };
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a])); // descending
        let (mut tp, mut fp) = (0usize, 0usize);
        let mut i = 0;
        while i < order.len() {
            let threshold = scores[order[i]];
            // Consume the whole tie group at once (a threshold admits all
            // tied scores together).
            while i < order.len() && scores[order[i]] == threshold {
                if labels[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                fpr: fp as f64 / n_neg,
                tpr: tp as f64 / n_pos,
                threshold,
            });
        }
        RocCurve { points }
    }

    /// Area under this curve by trapezoidal integration. Matches
    /// [`auroc`] up to floating-point error.
    pub fn area(&self) -> f64 {
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            area += (b.fpr - a.fpr) * (a.tpr + b.tpr) / 2.0;
        }
        area
    }

    /// The threshold maximizing Youden's J (`tpr − fpr`), with its point.
    ///
    /// Returns `None` when the curve is degenerate (no real thresholds).
    pub fn youden_optimal(&self) -> Option<RocPoint> {
        self.points
            .iter()
            .filter(|p| p.threshold.is_finite())
            .max_by(|a, b| (a.tpr - a.fpr).total_cmp(&(b.tpr - b.fpr)))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::check::{forall, gen_vec};
    use attrition_util::Rng;

    /// Labels of length `[2, max_len]` guaranteed to contain at least
    /// one positive and one negative (AUROC is NaN otherwise).
    fn gen_mixed_labels(rng: &mut Rng, max_len: usize) -> Vec<bool> {
        let mut labels = gen_vec(rng, 2, max_len, |r| r.bernoulli(0.5));
        let flip = rng.usize_below(labels.len());
        labels[flip] = true;
        let other = (flip + 1 + rng.usize_below(labels.len() - 1)) % labels.len();
        labels[other] = false;
        labels
    }

    #[test]
    fn perfect_separation() {
        let labels = [true, true, false, false];
        let scores = [0.9, 0.8, 0.2, 0.1];
        assert_eq!(auroc(&labels, &scores), 1.0);
        let curve = RocCurve::compute(&labels, &scores);
        assert!((curve.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_separation() {
        let labels = [true, true, false, false];
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert_eq!(auroc(&labels, &scores), 0.0);
    }

    #[test]
    fn random_like_interleaving() {
        let labels = [true, false, true, false];
        let scores = [0.4, 0.3, 0.2, 0.1];
        // Positives at ranks {4, 2}: U = (4+2) - 3 = 3, AUC = 3/4.
        assert!((auroc(&labels, &scores) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_ties_gives_half() {
        let labels = [true, false, true, false];
        let scores = [0.5; 4];
        assert!((auroc(&labels, &scores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_ties() {
        // pos: {0.5, 0.3}, neg: {0.5, 0.1}
        // Pairs: (0.5 vs 0.5)=0.5, (0.5 vs 0.1)=1, (0.3 vs 0.5)=0, (0.3 vs 0.1)=1
        // AUC = 2.5/4 = 0.625
        let labels = [true, true, false, false];
        let scores = [0.5, 0.3, 0.5, 0.1];
        assert!((auroc(&labels, &scores) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes_nan() {
        assert!(auroc(&[true, true], &[0.1, 0.2]).is_nan());
        assert!(auroc(&[false], &[0.1]).is_nan());
        assert!(auroc(&[], &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        auroc(&[true], &[0.1, 0.2]);
    }

    #[test]
    fn curve_endpoints() {
        let labels = [true, false];
        let scores = [0.9, 0.1];
        let curve = RocCurve::compute(&labels, &scores);
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn curve_monotone() {
        let labels = [true, false, true, false, true, false, false];
        let scores = [0.9, 0.85, 0.7, 0.6, 0.55, 0.3, 0.2];
        let curve = RocCurve::compute(&labels, &scores);
        for pair in curve.points.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
            assert!(pair[1].threshold <= pair[0].threshold);
        }
    }

    #[test]
    fn youden_picks_separating_threshold() {
        let labels = [true, true, false, false];
        let scores = [0.9, 0.8, 0.2, 0.1];
        let best = RocCurve::compute(&labels, &scores)
            .youden_optimal()
            .unwrap();
        assert_eq!(best.tpr, 1.0);
        assert_eq!(best.fpr, 0.0);
        assert_eq!(best.threshold, 0.8);
    }

    #[test]
    fn degenerate_curve_trivial() {
        let curve = RocCurve::compute(&[true], &[0.5]);
        assert_eq!(curve.points.len(), 2);
        assert!((curve.area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_area_matches_mann_whitney() {
        forall(
            256,
            |rng| {
                let labels = gen_mixed_labels(rng, 59);
                // Build scores with deliberate ties: quantized uniforms.
                let scores: Vec<f64> = labels
                    .iter()
                    .map(|_| (rng.f64() * 8.0).floor() / 8.0)
                    .collect();
                (labels, scores)
            },
            |(labels, scores)| {
                let mw = auroc(labels, scores);
                let curve = RocCurve::compute(labels, scores).area();
                assert!((mw - curve).abs() < 1e-9, "mw {mw} vs curve {curve}");
            },
        );
    }

    #[test]
    fn auroc_invariant_to_monotone_transform() {
        forall(
            256,
            |rng| {
                let labels = gen_mixed_labels(rng, 39);
                let scores: Vec<f64> = labels.iter().map(|_| rng.f64()).collect();
                (labels, scores)
            },
            |(labels, scores)| {
                let transformed: Vec<f64> = scores.iter().map(|s| s.exp() * 3.0 + 1.0).collect();
                let a = auroc(labels, scores);
                let b = auroc(labels, &transformed);
                assert!((a - b).abs() < 1e-12);
            },
        );
    }

    #[test]
    fn auroc_flips_under_negation() {
        forall(
            256,
            |rng| {
                let labels = gen_mixed_labels(rng, 39);
                let scores: Vec<f64> = labels.iter().map(|_| rng.f64()).collect();
                (labels, scores)
            },
            |(labels, scores)| {
                let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
                let a = auroc(labels, scores);
                let b = auroc(labels, &negated);
                assert!((a + b - 1.0).abs() < 1e-12);
            },
        );
    }
}
