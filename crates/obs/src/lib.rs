//! # attrition-obs
//!
//! Dependency-free observability for the attrition pipeline: a
//! process-global [`MetricsRegistry`] of named counters, gauges and
//! fixed-bucket histograms, plus an RAII [`Stage`]/[`ScopedTimer`] API
//! for hierarchical wall-time measurement of the pipeline stages
//! (ingest → windowing → scoring → eval).
//!
//! Every other crate of the workspace records into the global registry
//! through the free functions here ([`counter`], [`gauge`],
//! [`observe_ms`], [`Stage::enter`]); the CLI and the experiment
//! binaries render a [`MetricsReport`] snapshot as a text table or JSON.
//!
//! ## Disabled-mode contract
//!
//! Metrics are **off by default**. Every recording entry point checks
//! one relaxed atomic flag ([`enabled`]) first and returns before
//! touching a clock, a lock, or an atomic metric cell, so an
//! uninstrumented run performs no histogram/timer writes at all — the
//! per-call cost of the disabled path is a single atomic load and the
//! measured end-to-end overhead stays well under the 2% budget
//! documented in DESIGN.md. Instrumentation call sites in hot loops are
//! additionally expected to accumulate locally and flush once per batch
//! rather than once per row.
//!
//! ```
//! use attrition_obs as obs;
//!
//! obs::set_enabled(true);
//! {
//!     let _stage = obs::Stage::enter("scoring");
//!     obs::counter("core.scoring.customers_scored").add(500);
//! }
//! let report = obs::global().snapshot();
//! assert_eq!(report.counter("core.scoring.customers_scored"), Some(500));
//! assert!(report.stage("scoring").is_some());
//! obs::set_enabled(false);
//! obs::global().reset();
//! ```

pub mod registry;
pub mod report;
pub mod timer;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use report::{HistogramReport, MetricsReport, StageReport};
pub use timer::{ScopedTimer, Stage, ThreadTelemetry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is on. One relaxed load; this is the check
/// every instrumentation point performs before doing any work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off for the whole process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Global counter handle by name (created on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Global gauge handle by name (created on first use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Record one millisecond observation into a global histogram, but only
/// when metrics are enabled (convenience for one-shot call sites).
pub fn observe_ms(name: &str, ms: f64) {
    if enabled() {
        global().histogram(name).observe(ms);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Tests mutate process-global state (the registry and the enabled
    /// flag); serialize them so `cargo test`'s parallelism cannot
    /// interleave resets.
    pub fn lock() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_toggles() {
        let _guard = test_support::lock();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
    }

    #[test]
    fn global_registry_is_shared() {
        let _guard = test_support::lock();
        global().reset();
        counter("lib.shared").add(2);
        counter("lib.shared").add(3);
        assert_eq!(global().snapshot().counter("lib.shared"), Some(5));
        global().reset();
    }

    #[test]
    fn disabled_observe_ms_writes_nothing() {
        let _guard = test_support::lock();
        set_enabled(false);
        global().reset();
        observe_ms("lib.noop", 1.0);
        assert!(global().snapshot().histograms.is_empty());
    }
}
