//! Named metric cells: counters, gauges, fixed-bucket histograms, and
//! the registry that owns them.
//!
//! All cells are lock-free atomics; the registry's maps are guarded by
//! `RwLock`s that are only write-locked the first time a name appears.
//! Callers on hot paths should hold on to the `Arc` handle instead of
//! re-resolving the name per operation.

use crate::report::{HistogramReport, MetricsReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed metric (thread counts, queue depths, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by a (possibly negative) delta, atomically —
    /// for up/down quantities tracked from several threads at once,
    /// like a server's live connection count.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket upper bounds (milliseconds) used for every timing histogram:
/// a coarse log ladder from 100µs to 10s plus a +∞ overflow bucket.
pub const TIME_BUCKETS_MS: [f64; 16] = [
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0,
    5_000.0, 10_000.0,
];

/// A fixed-bucket histogram over `f64` observations with running count,
/// sum, min and max. Buckets are cumulative-style "≤ bound" counts plus
/// one overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One cell per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bit patterns updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

fn cas_f64(cell: &AtomicU64, update: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = update(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    /// Histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.sum_bits, |s| s + value);
        cas_f64(&self.min_bits, |m| m.min(value));
        cas_f64(&self.max_bits, |m| m.max(value));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn report(&self, name: &str) -> HistogramReport {
        let count = self.count();
        let sum = self.sum();
        HistogramReport {
            name: name.to_owned(),
            count,
            sum,
            mean: if count == 0 {
                f64::NAN
            } else {
                sum / count as f64
            },
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            buckets: self
                .bounds
                .iter()
                .copied()
                .chain(std::iter::once(f64::INFINITY))
                .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// Registry of named metrics. Usually accessed through
/// [`crate::global`]; separate instances exist only in tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T>(
    map: &RwLock<HashMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics lock").get(name) {
        return Arc::clone(found);
    }
    let mut writer = map.write().expect("metrics lock");
    Arc::clone(
        writer
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Counter handle by name (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::default)
    }

    /// Gauge handle by name (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::default)
    }

    /// Timing histogram by name (created on first use with the standard
    /// millisecond ladder [`TIME_BUCKETS_MS`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &TIME_BUCKETS_MS)
    }

    /// Histogram by name with explicit bucket bounds (bounds apply only
    /// on first creation).
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || Histogram::new(bounds))
    }

    /// Drop every metric (tests and between CLI invocations).
    pub fn reset(&self) {
        self.counters.write().expect("metrics lock").clear();
        self.gauges.write().expect("metrics lock").clear();
        self.histograms.write().expect("metrics lock").clear();
    }

    /// Consistent point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsReport {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<HistogramReport> = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| v.report(k))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsReport {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = MetricsRegistry::new();
        r.counter("a").add(3);
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 4);
    }

    #[test]
    fn gauge_overwrites() {
        let r = MetricsRegistry::new();
        r.gauge("g").set(7);
        r.gauge("g").set(-2);
        assert_eq!(r.gauge("g").get(), -2);
    }

    #[test]
    fn gauge_add_is_atomic_updown() {
        let r = MetricsRegistry::new();
        let g = r.gauge("active");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let g = Arc::clone(&g);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        g.add(1);
                        g.add(-1);
                    }
                    g.add(1);
                });
            }
        });
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 50.0] {
            h.observe(v);
        }
        let rep = h.report("h");
        assert_eq!(rep.count, 4);
        assert!((rep.sum - 56.2).abs() < 1e-12);
        assert_eq!(rep.min, 0.5);
        assert_eq!(rep.max, 50.0);
        // ≤1: {0.5, 0.7}; ≤10: {5.0}; overflow: {50.0}.
        let counts: Vec<u64> = rep.buckets.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![2, 1, 1]);
        assert!(rep.buckets.last().unwrap().0.is_infinite());
    }

    #[test]
    fn histogram_boundary_value_falls_in_lower_bucket() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(1.0);
        assert_eq!(h.report("h").buckets[0].1, 1);
    }

    #[test]
    fn empty_histogram_mean_is_nan() {
        let h = Histogram::new(&TIME_BUCKETS_MS);
        let rep = h.report("h");
        assert_eq!(rep.count, 0);
        assert!(rep.mean.is_nan());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn snapshot_sorted_and_reset_clears() {
        let r = MetricsRegistry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.histogram("t").observe(1.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.counters[1].0, "z");
        assert_eq!(snap.histograms.len(), 1);
        r.reset();
        let empty = r.snapshot();
        assert!(empty.counters.is_empty() && empty.histograms.is_empty());
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let r = Arc::new(MetricsRegistry::new());
        let handle = r.counter("shared");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = Arc::clone(&handle);
                let reg = Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.inc();
                        reg.histogram("hist").observe(1.0);
                    }
                });
            }
        });
        assert_eq!(handle.get(), 8000);
        assert_eq!(r.histogram("hist").count(), 8000);
    }
}
