//! Point-in-time metric snapshots and their JSON rendering.
//!
//! The JSON schema (documented in README.md's Observability section):
//!
//! ```json
//! {
//!   "counters":   {"store.rows_read": 1200},
//!   "gauges":     {"core.scoring.threads": 8},
//!   "stages":     {"ingest": {"calls": 1, "total_ms": 4.2,
//!                             "mean_ms": 4.2, "min_ms": 4.2, "max_ms": 4.2}},
//!   "histograms": {"core.scoring.thread_busy_ms": {
//!       "count": 8, "sum": 31.5, "mean": 3.9, "min": 2.1, "max": 6.0,
//!       "buckets": [{"le": 0.1, "count": 0}, …, {"le": null, "count": 0}]}}
//! }
//! ```
//!
//! Stage histograms (names starting `stage.`) are folded into the
//! `stages` object; every other histogram appears under `histograms`.
//! The writer is hand-rolled — the whole point of this crate is to add
//! observability without adding dependencies.

use crate::timer::STAGE_PREFIX;

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramReport {
    /// Registry name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation (NaN when empty).
    pub mean: f64,
    /// Smallest observation (+∞ when empty).
    pub min: f64,
    /// Largest observation (−∞ when empty).
    pub max: f64,
    /// `(upper_bound, count)` per bucket; the last bound is +∞.
    pub buckets: Vec<(f64, u64)>,
}

/// One pipeline stage's timing, derived from its `stage.<path>`
/// histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Hierarchical path, e.g. `scoring` or `scoring/explain`.
    pub path: String,
    /// Times the stage ran.
    pub calls: u64,
    /// Total wall time across calls, in milliseconds.
    pub total_ms: f64,
    /// Mean wall time per call, in milliseconds.
    pub mean_ms: f64,
    /// Fastest call, in milliseconds.
    pub min_ms: f64,
    /// Slowest call, in milliseconds.
    pub max_ms: f64,
}

/// Sorted snapshot of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms (including stage timings), sorted by name.
    pub histograms: Vec<HistogramReport>,
}

impl MetricsReport {
    /// A counter's value, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// A gauge's value, if it exists.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// A histogram snapshot, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramReport> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// Stage timings (histograms under the `stage.` prefix), in path
    /// order.
    pub fn stages(&self) -> Vec<StageReport> {
        self.histograms
            .iter()
            .filter_map(|h| {
                h.name.strip_prefix(STAGE_PREFIX).map(|path| StageReport {
                    path: path.to_owned(),
                    calls: h.count,
                    total_ms: h.sum,
                    mean_ms: h.mean,
                    min_ms: h.min,
                    max_ms: h.max,
                })
            })
            .collect()
    }

    /// One stage's timing by path.
    pub fn stage(&self, path: &str) -> Option<StageReport> {
        self.stages().into_iter().find(|s| s.path == path)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the snapshot as one compact JSON object (schema above).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_key(&mut out, "counters");
        push_object(&mut out, self.counters.iter(), |out, (name, v)| {
            push_key(out, name);
            out.push_str(&v.to_string());
        });
        out.push(',');
        push_key(&mut out, "gauges");
        push_object(&mut out, self.gauges.iter(), |out, (name, v)| {
            push_key(out, name);
            out.push_str(&v.to_string());
        });
        out.push(',');
        push_key(&mut out, "stages");
        push_object(&mut out, self.stages().iter(), |out, stage| {
            push_key(out, &stage.path);
            out.push('{');
            push_key(out, "calls");
            out.push_str(&stage.calls.to_string());
            out.push(',');
            push_key(out, "total_ms");
            push_f64(out, stage.total_ms);
            out.push(',');
            push_key(out, "mean_ms");
            push_f64(out, stage.mean_ms);
            out.push(',');
            push_key(out, "min_ms");
            push_f64(out, stage.min_ms);
            out.push(',');
            push_key(out, "max_ms");
            push_f64(out, stage.max_ms);
            out.push('}');
        });
        out.push(',');
        push_key(&mut out, "histograms");
        let plain: Vec<&HistogramReport> = self
            .histograms
            .iter()
            .filter(|h| !h.name.starts_with(STAGE_PREFIX))
            .collect();
        push_object(&mut out, plain.iter(), |out, h| {
            push_key(out, &h.name);
            out.push('{');
            push_key(out, "count");
            out.push_str(&h.count.to_string());
            out.push(',');
            push_key(out, "sum");
            push_f64(out, h.sum);
            out.push(',');
            push_key(out, "mean");
            push_f64(out, h.mean);
            out.push(',');
            push_key(out, "min");
            push_f64(out, h.min);
            out.push(',');
            push_key(out, "max");
            push_f64(out, h.max);
            out.push(',');
            push_key(out, "buckets");
            out.push('[');
            for (i, (le, count)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                push_key(out, "le");
                if le.is_finite() {
                    push_f64(out, *le);
                } else {
                    out.push_str("null");
                }
                out.push(',');
                push_key(out, "count");
                out.push_str(&count.to_string());
                out.push('}');
            }
            out.push(']');
            out.push('}');
        });
        out.push('}');
        out
    }
}

fn push_key(out: &mut String, key: &str) {
    push_json_string(out, key);
    out.push(':');
}

fn push_object<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    mut entry: impl FnMut(&mut String, T),
) {
    out.push('{');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        entry(out, item);
    }
    out.push('}');
}

/// Finite floats print plainly; NaN/±∞ (legal in empty-histogram
/// min/max/mean) become `null` since JSON has no spelling for them.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.6}"));
    } else {
        out.push_str("null");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample() -> MetricsReport {
        let r = MetricsRegistry::new();
        r.counter("store.rows_read").add(1200);
        r.gauge("core.scoring.threads").set(8);
        r.histogram("stage.ingest").observe(4.0);
        r.histogram("stage.ingest").observe(6.0);
        r.histogram_with("eval.auroc_ms", &[1.0, 10.0]).observe(0.5);
        r.snapshot()
    }

    #[test]
    fn accessors_find_metrics() {
        let rep = sample();
        assert_eq!(rep.counter("store.rows_read"), Some(1200));
        assert_eq!(rep.counter("missing"), None);
        assert_eq!(rep.gauge("core.scoring.threads"), Some(8));
        assert!(rep.histogram("eval.auroc_ms").is_some());
        assert!(!rep.is_empty());
        assert!(MetricsReport::default().is_empty());
    }

    #[test]
    fn stages_derived_from_prefixed_histograms() {
        let rep = sample();
        let stages = rep.stages();
        assert_eq!(stages.len(), 1);
        let ingest = rep.stage("ingest").unwrap();
        assert_eq!(ingest.calls, 2);
        assert!((ingest.total_ms - 10.0).abs() < 1e-9);
        assert!((ingest.mean_ms - 5.0).abs() < 1e-9);
        assert_eq!(ingest.min_ms, 4.0);
        assert_eq!(ingest.max_ms, 6.0);
        assert!(rep.stage("scoring").is_none());
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":{\"store.rows_read\":1200}"));
        assert!(json.contains("\"gauges\":{\"core.scoring.threads\":8}"));
        assert!(json.contains("\"stages\":{\"ingest\":{\"calls\":2"));
        // Stage histograms are folded into stages, not repeated.
        assert!(!json.contains("\"stage.ingest\""));
        assert!(json.contains("\"eval.auroc_ms\":{\"count\":1"));
        assert!(json.contains("{\"le\":null,"));
    }

    #[test]
    fn json_escapes_and_nonfinite() {
        let r = MetricsRegistry::new();
        r.counter("weird\"name\\with\nctrl").add(1);
        let json = r.snapshot().to_json();
        assert!(json.contains("weird\\\"name\\\\with\\nctrl"));
        // Empty histogram: min/max are ±∞ → null in JSON.
        let r2 = MetricsRegistry::new();
        let _ = r2.histogram("empty");
        let j2 = r2.snapshot().to_json();
        assert!(j2.contains("\"min\":null"));
        assert!(j2.contains("\"max\":null"));
    }

    #[test]
    fn empty_report_json() {
        assert_eq!(
            MetricsReport::default().to_json(),
            "{\"counters\":{},\"gauges\":{},\"stages\":{},\"histograms\":{}}"
        );
    }
}
