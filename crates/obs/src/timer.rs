//! RAII wall-time measurement.
//!
//! [`Stage`] measures one pipeline stage and records it under a
//! hierarchical path built from the stages currently open on this
//! thread (`scoring`, `scoring/explain`, …); stage timings live in the
//! registry as histograms named `stage.<path>`. [`ScopedTimer`] is the
//! flat variant for arbitrary histogram names, and [`ThreadTelemetry`]
//! accumulates per-worker-thread busy time + item counts that are
//! flushed to the registry once per thread.

use std::cell::RefCell;
use std::time::Instant;

/// Histogram-name prefix under which stage timings are recorded.
pub const STAGE_PREFIX: &str = "stage.";

thread_local! {
    /// Open stage names on this thread, outermost first.
    static STAGE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard timing one named pipeline stage.
///
/// When metrics are disabled, [`Stage::enter`] checks the single
/// enabled atomic and returns an inert guard without reading the clock
/// or touching the registry.
#[must_use = "a Stage records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Stage {
    /// `None` when metrics were disabled at entry.
    start: Option<Instant>,
    path: String,
}

impl Stage {
    /// Open a stage named `name`, nested under any stage already open
    /// on this thread.
    pub fn enter(name: &str) -> Stage {
        if !crate::enabled() {
            return Stage {
                start: None,
                path: String::new(),
            };
        }
        let path = STAGE_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_owned()
            } else {
                format!("{}/{name}", stack.last().expect("non-empty"))
            };
            stack.push(path.clone());
            path
        });
        Stage {
            start: Some(Instant::now()),
            path,
        }
    }

    /// True when this guard records nothing (metrics were off).
    pub fn is_noop(&self) -> bool {
        self.start.is_none()
    }

    /// The hierarchical path this stage records under (empty if no-op).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Stage {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ms = start.elapsed().as_secs_f64() * 1e3;
        STAGE_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::global()
            .histogram(&format!("{STAGE_PREFIX}{}", self.path))
            .observe(ms);
    }
}

/// RAII guard recording its lifetime into an arbitrary histogram name
/// (no hierarchy). Useful for sub-stage hot spots where the path
/// nesting of [`Stage`] is not wanted.
#[must_use = "a ScopedTimer records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct ScopedTimer {
    start: Option<Instant>,
    name: String,
}

impl ScopedTimer {
    /// Start timing into histogram `name`; inert when metrics are off.
    pub fn new(name: &str) -> ScopedTimer {
        if !crate::enabled() {
            return ScopedTimer {
                start: None,
                name: String::new(),
            };
        }
        ScopedTimer {
            start: Some(Instant::now()),
            name: name.to_owned(),
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ms = start.elapsed().as_secs_f64() * 1e3;
        crate::global().histogram(&self.name).observe(ms);
    }
}

/// Per-worker-thread scoring telemetry: busy wall time and items
/// processed, accumulated locally and flushed to the registry once at
/// the end of the thread's work (so hot loops never touch atomics).
#[derive(Debug)]
pub struct ThreadTelemetry {
    start: Option<Instant>,
    items: u64,
    prefix: &'static str,
}

impl ThreadTelemetry {
    /// Start telemetry for a worker; metrics recorded under
    /// `<prefix>.thread_busy_ms` and `<prefix>.items`. Inert when
    /// metrics are off.
    pub fn start(prefix: &'static str) -> ThreadTelemetry {
        ThreadTelemetry {
            start: crate::enabled().then(Instant::now),
            items: 0,
            prefix,
        }
    }

    /// Count items processed (no-op when metrics are off).
    #[inline]
    pub fn add_items(&mut self, n: u64) {
        if self.start.is_some() {
            self.items += n;
        }
    }

    /// Flush to the registry. Called automatically on drop.
    fn flush(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let busy_ms = start.elapsed().as_secs_f64() * 1e3;
        let registry = crate::global();
        registry
            .histogram(&format!("{}.thread_busy_ms", self.prefix))
            .observe(busy_ms);
        registry
            .counter(&format!("{}.items", self.prefix))
            .add(self.items);
    }
}

impl Drop for ThreadTelemetry {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn disabled_stage_is_noop_and_writes_nothing() {
        let _guard = test_support::lock();
        crate::set_enabled(false);
        crate::global().reset();
        {
            let stage = Stage::enter("ingest");
            assert!(stage.is_noop());
            assert_eq!(stage.path(), "");
            let _timer = ScopedTimer::new("eval.auroc_ms");
            let mut telemetry = ThreadTelemetry::start("core.scoring");
            telemetry.add_items(10);
        }
        let snap = crate::global().snapshot();
        assert!(snap.histograms.is_empty(), "disabled path wrote {snap:?}");
        assert!(snap.counters.is_empty());
    }

    #[test]
    fn stage_records_hierarchical_path() {
        let _guard = test_support::lock();
        crate::set_enabled(true);
        crate::global().reset();
        {
            let outer = Stage::enter("scoring");
            assert_eq!(outer.path(), "scoring");
            {
                let inner = Stage::enter("explain");
                assert_eq!(inner.path(), "scoring/explain");
            }
        }
        let snap = crate::global().snapshot();
        assert!(snap.stage("scoring").is_some());
        assert!(snap.stage("scoring/explain").is_some());
        // The stack unwound: a fresh stage is top-level again.
        {
            let again = Stage::enter("eval");
            assert_eq!(again.path(), "eval");
        }
        crate::set_enabled(false);
        crate::global().reset();
    }

    #[test]
    fn scoped_timer_and_telemetry_record() {
        let _guard = test_support::lock();
        crate::set_enabled(true);
        crate::global().reset();
        {
            let _timer = ScopedTimer::new("eval.auroc_ms");
            let mut telemetry = ThreadTelemetry::start("core.scoring");
            telemetry.add_items(7);
            telemetry.add_items(3);
        }
        let snap = crate::global().snapshot();
        assert_eq!(snap.counter("core.scoring.items"), Some(10));
        let busy = snap
            .histogram("core.scoring.thread_busy_ms")
            .expect("busy histogram");
        assert_eq!(busy.count, 1);
        assert!(snap.histogram("eval.auroc_ms").is_some());
        crate::set_enabled(false);
        crate::global().reset();
    }

    #[test]
    fn stage_timing_is_nonzero() {
        let _guard = test_support::lock();
        crate::set_enabled(true);
        crate::global().reset();
        {
            let _stage = Stage::enter("busy");
            // Spin a little so elapsed > 0 even at coarse clock resolution.
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            assert!(acc != 1);
        }
        let snap = crate::global().snapshot();
        let stage = snap.stage("busy").expect("stage recorded");
        assert!(stage.total_ms > 0.0, "elapsed {}", stage.total_ms);
        crate::set_enabled(false);
        crate::global().reset();
    }
}
