//! Epoch persistence: one small file beside the WAL.
//!
//! An epoch numbers a primary *generation*. Every node starts at 1;
//! promotion writes `own + 1` durably **before** the node starts
//! acting as a primary, and every shipped batch/snapshot carries its
//! sender's epoch. A receiver rejects anything stamped below its own
//! epoch — that is the whole fencing rule, and it is what makes a
//! resurrected old primary harmless: its stale shipments identify
//! themselves by their dead epoch.
//!
//! The file is plain ASCII `"<epoch> <start_lsn>"` + newline, written
//! with the same crash-atomic tmp → fsync → rename dance as a
//! checkpoint. `start_lsn` is the LSN at which this epoch began — the
//! promotion takeover point — which is what a rejoining deposed primary
//! needs to locate its divergent suffix. A missing file reads as epoch
//! 1 starting at LSN 0, and a legacy single-field file reads with
//! `start_lsn` 0, so existing WAL directories upgrade in place.

use attrition_serve::checkpoint::atomic_write_in;
use attrition_serve::Storage;
use std::path::Path;

/// File name inside a WAL directory.
pub const EPOCH_FILE: &str = "epoch";

/// The durable epoch record: which generation this node belongs to and
/// the LSN at which that generation began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMeta {
    /// The 1-based primary generation.
    pub epoch: u64,
    /// The LSN at which `epoch` started (the promotion takeover LSN;
    /// 0 for the original generation and for legacy files).
    pub start_lsn: u64,
}

/// Read the directory's epoch metadata; a missing file is epoch 1
/// starting at LSN 0.
pub fn read_epoch_meta_in(storage: &dyn Storage, dir: &Path) -> std::io::Result<EpochMeta> {
    let bytes = match storage.read(&dir.join(EPOCH_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(EpochMeta {
                epoch: 1,
                start_lsn: 0,
            })
        }
        Err(e) => return Err(e),
    };
    let corrupt = || {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("corrupt epoch file in {}", dir.display()),
        )
    };
    let text = std::str::from_utf8(&bytes).map_err(|_| corrupt())?;
    let fields: Vec<&str> = text.split_ascii_whitespace().collect();
    let (epoch_field, lsn_field) = match fields.as_slice() {
        [epoch] => (*epoch, "0"),
        [epoch, lsn] => (*epoch, *lsn),
        _ => return Err(corrupt()),
    };
    let epoch: u64 = epoch_field.parse().map_err(|_| corrupt())?;
    let start_lsn: u64 = lsn_field.parse().map_err(|_| corrupt())?;
    if epoch < 1 {
        return Err(corrupt());
    }
    Ok(EpochMeta { epoch, start_lsn })
}

/// Read the directory's epoch; a missing file is epoch 1.
pub fn read_epoch_in(storage: &dyn Storage, dir: &Path) -> std::io::Result<u64> {
    read_epoch_meta_in(storage, dir).map(|meta| meta.epoch)
}

/// Durably write the directory's epoch metadata (crash-atomic).
pub fn write_epoch_meta_in(
    storage: &dyn Storage,
    dir: &Path,
    epoch: u64,
    start_lsn: u64,
) -> std::io::Result<()> {
    assert!(epoch >= 1, "epochs are 1-based");
    atomic_write_in(
        storage,
        &dir.join(EPOCH_FILE),
        format!("{epoch} {start_lsn}\n").as_bytes(),
    )
}

/// Durably write the directory's epoch with a start LSN of 0.
pub fn write_epoch_in(storage: &dyn Storage, dir: &Path, epoch: u64) -> std::io::Result<()> {
    write_epoch_meta_in(storage, dir, epoch, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_serve::RealStorage;

    #[test]
    fn missing_file_is_epoch_one_and_writes_roundtrip() {
        let dir = std::env::temp_dir().join(format!("attrition_epoch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let storage = RealStorage::shared();
        assert_eq!(read_epoch_in(&*storage, &dir).unwrap(), 1);
        assert_eq!(
            read_epoch_meta_in(&*storage, &dir).unwrap(),
            EpochMeta {
                epoch: 1,
                start_lsn: 0
            }
        );
        write_epoch_in(&*storage, &dir, 7).unwrap();
        assert_eq!(read_epoch_in(&*storage, &dir).unwrap(), 7);
        write_epoch_meta_in(&*storage, &dir, 9, 4123).unwrap();
        assert_eq!(
            read_epoch_meta_in(&*storage, &dir).unwrap(),
            EpochMeta {
                epoch: 9,
                start_lsn: 4123
            }
        );
        std::fs::write(dir.join(EPOCH_FILE), "not a number").unwrap();
        assert!(read_epoch_in(&*storage, &dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_single_field_files_read_with_start_lsn_zero() {
        let dir = std::env::temp_dir().join(format!("attrition_epoch_v1_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let storage = RealStorage::shared();
        std::fs::write(dir.join(EPOCH_FILE), "5\n").unwrap();
        assert_eq!(
            read_epoch_meta_in(&*storage, &dir).unwrap(),
            EpochMeta {
                epoch: 5,
                start_lsn: 0
            }
        );
        for bad in ["0\n", "1 2 3\n", "1 x\n", ""] {
            std::fs::write(dir.join(EPOCH_FILE), bad).unwrap();
            assert!(
                read_epoch_meta_in(&*storage, &dir).is_err(),
                "accepted {bad:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
