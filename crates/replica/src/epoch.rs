//! Epoch persistence: one small file beside the WAL.
//!
//! An epoch numbers a primary *generation*. Every node starts at 1;
//! promotion writes `own + 1` durably **before** the node starts
//! acting as a primary, and every shipped batch/snapshot carries its
//! sender's epoch. A receiver rejects anything stamped below its own
//! epoch — that is the whole fencing rule, and it is what makes a
//! resurrected old primary harmless: its stale shipments identify
//! themselves by their dead epoch.
//!
//! The file is plain ASCII decimal + newline, written with the same
//! crash-atomic tmp → fsync → rename dance as a checkpoint. A missing
//! file reads as epoch 1, so existing WAL directories upgrade in place.

use attrition_serve::checkpoint::atomic_write_in;
use attrition_serve::Storage;
use std::path::Path;

/// File name inside a WAL directory.
pub const EPOCH_FILE: &str = "epoch";

/// Read the directory's epoch; a missing file is epoch 1.
pub fn read_epoch_in(storage: &dyn Storage, dir: &Path) -> std::io::Result<u64> {
    let bytes = match storage.read(&dir.join(EPOCH_FILE)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(1),
        Err(e) => return Err(e),
    };
    std::str::from_utf8(&bytes)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&epoch| epoch >= 1)
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("corrupt epoch file in {}", dir.display()),
            )
        })
}

/// Durably write the directory's epoch (crash-atomic).
pub fn write_epoch_in(storage: &dyn Storage, dir: &Path, epoch: u64) -> std::io::Result<()> {
    assert!(epoch >= 1, "epochs are 1-based");
    atomic_write_in(
        storage,
        &dir.join(EPOCH_FILE),
        format!("{epoch}\n").as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_serve::RealStorage;

    #[test]
    fn missing_file_is_epoch_one_and_writes_roundtrip() {
        let dir = std::env::temp_dir().join(format!("attrition_epoch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let storage = RealStorage::shared();
        assert_eq!(read_epoch_in(&*storage, &dir).unwrap(), 1);
        write_epoch_in(&*storage, &dir, 7).unwrap();
        assert_eq!(read_epoch_in(&*storage, &dir).unwrap(), 7);
        std::fs::write(dir.join(EPOCH_FILE), "not a number").unwrap();
        assert!(read_epoch_in(&*storage, &dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
