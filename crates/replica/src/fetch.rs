//! The replica's real-TCP fetch side: a tiny blocking client for the
//! `REPL` round trip, and the pull loop the `attrition replicate`
//! command runs on a background thread.
//!
//! The stock [`Client`](attrition_serve::Client) only knows how to read
//! `OK <n>` continuations; `RBATCH`/`RSNAP` responses announce their
//! own continuation counts (see [`FetchResponse::extra_lines`]), so the
//! fetcher reads frames itself. Any transport or protocol error drops
//! the connection and the next round reconnects — the pull loop is the
//! retry policy.

use crate::replica::ReplicaEngine;
use crate::wire::{FetchRequest, FetchResponse};
use attrition_serve::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking replication fetch client (one request in flight).
pub struct ReplClient {
    addr: String,
    read_timeout: Duration,
    stream: Option<BufReader<TcpStream>>,
}

impl ReplClient {
    /// A client for the primary at `addr`; connects lazily on the
    /// first fetch and reconnects after any error.
    pub fn new(addr: impl Into<String>, read_timeout: Duration) -> ReplClient {
        ReplClient {
            addr: addr.into(),
            read_timeout,
            stream: None,
        }
    }

    fn connected(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One fetch round trip. `ERR` answers and malformed responses are
    /// returned as errors; the connection is dropped on any failure so
    /// the next call starts clean.
    pub fn fetch(&mut self, req: &FetchRequest) -> std::io::Result<FetchResponse> {
        let result = self.fetch_inner(req);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn fetch_inner(&mut self, req: &FetchRequest) -> std::io::Result<FetchResponse> {
        let reader = self.connected()?;
        reader
            .get_mut()
            .write_all(format!("{}\n", req.to_line()).as_bytes())?;
        let header = read_line(reader)?;
        let extra = FetchResponse::extra_lines(&header)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut text = header;
        for _ in 0..extra {
            let line = read_line(reader)?;
            text.push('\n');
            text.push_str(&line);
        }
        if text.starts_with("ERR") {
            return Err(std::io::Error::other(text));
        }
        FetchResponse::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "primary closed the connection",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// How the pull loop paces itself.
#[derive(Debug, Clone)]
pub struct FetchLoopConfig {
    /// The primary's address.
    pub primary: String,
    /// Pause between fetches once caught up (a fetch that applied
    /// fresh records loops again immediately).
    pub interval: Duration,
    /// Records requested per batch.
    pub batch_max: u64,
    /// Read timeout on the replication connection.
    pub read_timeout: Duration,
}

/// Pull from the primary until the replica shuts down or is promoted.
/// Transport errors (primary down, mid-failover) are logged sparsely
/// and retried forever — a replica outliving its primary is the whole
/// point. Returns the number of successful fetch rounds.
pub fn run_fetch_loop(replica: &ReplicaEngine, config: &FetchLoopConfig) -> u64 {
    let mut client = ReplClient::new(config.primary.clone(), config.read_timeout);
    let mut rounds = 0u64;
    let mut consecutive_errors = 0u64;
    while !replica.shutdown_requested() && !replica.promoted() {
        let req = replica.fetch_request(config.batch_max);
        let outcome = client
            .fetch(&req)
            .map_err(|e| e.to_string())
            .and_then(|resp| replica.apply_response(&resp));
        match outcome {
            Ok(applied) => {
                rounds += 1;
                consecutive_errors = 0;
                if applied.fresh > 0 || applied.snapshot_installed {
                    continue; // behind: catch up without pausing
                }
            }
            Err(e) => {
                attrition_obs::counter("serve.repl.fetch_errors").inc();
                consecutive_errors += 1;
                // First error and every ~32nd after: enough to see an
                // outage in the log without flooding it.
                if consecutive_errors == 1 || consecutive_errors.is_multiple_of(32) {
                    eprintln!(
                        "replicate: fetch from {} failed ({consecutive_errors}x): {e}",
                        config.primary
                    );
                }
            }
        }
        std::thread::sleep(config.interval);
    }
    rounds
}
