//! The replica's real-TCP fetch side: a tiny blocking client for the
//! `REPL` and `REJOIN` round trips, and the pull loop the
//! `attrition replicate` command runs on a background thread.
//!
//! The stock [`Client`](attrition_serve::Client) only knows how to read
//! `OK <n>` continuations; `RBATCH`/`RSNAP` responses announce their
//! own continuation counts (see [`FetchResponse::extra_lines`]), so the
//! fetcher reads frames itself. Any transport or protocol error drops
//! the connection and the next round reconnects — the pull loop is the
//! retry policy: capped jittered exponential backoff on consecutive
//! errors (the serve client's [`RetryPolicy`] shape), the configured
//! interval once healthy.
//!
//! When a fetch comes back `ERR fenced` or `rejoin required`, the loop
//! runs the divergence handshake inline ([`rejoin_via`]) and, if the
//! upstream really is a newer generation, discards the divergent
//! suffix and resumes fetching under the new epoch — a deposed primary
//! heals itself without operator intervention.

use crate::replica::{RejoinOutcome, ReplicaEngine};
use crate::wire::{FetchRequest, FetchResponse, RejoinRequest, RejoinResponse};
use attrition_serve::{RetryPolicy, Service, SplitMix64};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking replication fetch client (one request in flight).
pub struct ReplClient {
    addr: String,
    read_timeout: Duration,
    stream: Option<BufReader<TcpStream>>,
}

impl ReplClient {
    /// A client for the primary at `addr`; connects lazily on the
    /// first fetch and reconnects after any error.
    pub fn new(addr: impl Into<String>, read_timeout: Duration) -> ReplClient {
        ReplClient {
            addr: addr.into(),
            read_timeout,
            stream: None,
        }
    }

    fn connected(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One fetch round trip. `ERR` answers and malformed responses are
    /// returned as errors; the connection is dropped on any failure so
    /// the next call starts clean.
    pub fn fetch(&mut self, req: &FetchRequest) -> std::io::Result<FetchResponse> {
        let result = self.fetch_inner(req);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn fetch_inner(&mut self, req: &FetchRequest) -> std::io::Result<FetchResponse> {
        let reader = self.connected()?;
        reader
            .get_mut()
            .write_all(format!("{}\n", req.to_line()).as_bytes())?;
        let header = read_line(reader)?;
        let extra = FetchResponse::extra_lines(&header)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut text = header;
        for _ in 0..extra {
            let line = read_line(reader)?;
            text.push('\n');
            text.push_str(&line);
        }
        if text.starts_with("ERR") {
            return Err(std::io::Error::other(text));
        }
        FetchResponse::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// One `REJOIN` handshake round trip (a single-line answer).
    pub fn rejoin(&mut self, req: &RejoinRequest) -> std::io::Result<RejoinResponse> {
        let result = self.rejoin_inner(req);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn rejoin_inner(&mut self, req: &RejoinRequest) -> std::io::Result<RejoinResponse> {
        let reader = self.connected()?;
        reader
            .get_mut()
            .write_all(format!("{}\n", req.to_line()).as_bytes())?;
        let line = read_line(reader)?;
        if line.starts_with("ERR") {
            return Err(std::io::Error::other(line));
        }
        RejoinResponse::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "primary closed the connection",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Run the divergence handshake against `client`'s upstream and apply
/// the discard rule locally. Shared by the fetch loop's auto-trigger
/// and the `attrition replicate --rejoin` startup path.
pub fn rejoin_via(
    client: &mut ReplClient,
    replica: &ReplicaEngine,
) -> std::io::Result<RejoinOutcome> {
    let req = RejoinRequest {
        epoch: replica.epoch(),
        durable: replica.durable_seq(),
    };
    let resp = client.rejoin(&req)?;
    replica.rejoin_to(resp.epoch, resp.promotion_lsn)
}

/// How the pull loop paces itself.
#[derive(Debug, Clone)]
pub struct FetchLoopConfig {
    /// The primary's address.
    pub primary: String,
    /// Pause between fetches once caught up (a fetch that applied
    /// fresh records loops again immediately).
    pub interval: Duration,
    /// Records requested per batch.
    pub batch_max: u64,
    /// Read timeout on the replication connection.
    pub read_timeout: Duration,
    /// Sleep shape on consecutive errors: exponential from
    /// `base_delay` up to `max_delay`, jittered (the `budget` field is
    /// ignored — the loop retries forever).
    pub backoff: RetryPolicy,
}

/// Pull from the primary until the replica shuts down or is promoted.
/// Transport errors (primary down, mid-failover) are logged sparsely
/// and retried forever under capped jittered exponential backoff — a
/// replica outliving its primary is the whole point. A fenced fetch
/// triggers the rejoin handshake inline. Returns the number of
/// successful fetch rounds.
pub fn run_fetch_loop(replica: &ReplicaEngine, config: &FetchLoopConfig) -> u64 {
    let mut client = ReplClient::new(config.primary.clone(), config.read_timeout);
    let mut jitter = SplitMix64::new(config.backoff.seed);
    let mut rounds = 0u64;
    let mut consecutive_errors = 0u64;
    while !replica.shutdown_requested() && !replica.promoted() {
        let req = replica.fetch_request(config.batch_max);
        let outcome = client
            .fetch(&req)
            .map_err(|e| e.to_string())
            .and_then(|resp| replica.apply_response(&resp));
        match outcome {
            Ok(applied) => {
                rounds += 1;
                consecutive_errors = 0;
                if applied.fresh > 0 || applied.snapshot_installed {
                    continue; // behind: catch up without pausing
                }
                interruptible_sleep(replica, config.interval);
            }
            Err(e) => {
                attrition_obs::counter("serve.repl.fetch_errors").inc();
                consecutive_errors += 1;
                // A fence in either direction means epochs moved: ask
                // the upstream where its generation started and apply
                // the discard rule. Harmless if the upstream turns out
                // not to be ahead (the handshake no-ops).
                if e.contains("fenced") || e.contains("rejoin required") {
                    match rejoin_via(&mut client, replica) {
                        Ok(outcome) if outcome.adopted => {
                            eprintln!(
                                "replicate: rejoined epoch {} ({})",
                                outcome.epoch,
                                if outcome.discarded {
                                    format!(
                                        "discarded {} divergent records, re-bootstrapping",
                                        outcome.divergent_records
                                    )
                                } else {
                                    "no divergent suffix".to_owned()
                                }
                            );
                            consecutive_errors = 0;
                            continue; // fetch again at once under the new epoch
                        }
                        Ok(_) => {} // upstream not ahead: plain backoff
                        Err(re) => {
                            if consecutive_errors == 1 || consecutive_errors.is_multiple_of(32) {
                                eprintln!(
                                    "replicate: rejoin handshake with {} failed: {re}",
                                    config.primary
                                );
                            }
                        }
                    }
                }
                // First error and every ~32nd after: enough to see an
                // outage in the log without flooding it.
                if consecutive_errors == 1 || consecutive_errors.is_multiple_of(32) {
                    eprintln!(
                        "replicate: fetch from {} failed ({consecutive_errors}x): {e}",
                        config.primary
                    );
                }
                let attempt = consecutive_errors.min(u32::MAX as u64) as u32;
                interruptible_sleep(replica, config.backoff.backoff(attempt, &mut jitter));
            }
        }
    }
    rounds
}

/// Sleep in short slices so shutdown or promotion interrupts a long
/// pause — a just-promoted node must not keep its fetcher (and any
/// joiner waiting on it) parked for the rest of a multi-second
/// interval or backoff.
fn interruptible_sleep(replica: &ReplicaEngine, total: Duration) {
    let slice = Duration::from_millis(50);
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if replica.shutdown_requested() || replica.promoted() {
            return;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining -= step;
    }
}
