//! # attrition-replica
//!
//! Primary→replica replication for the scoring server: the WAL that
//! already makes a single node durable *is* the replication stream, so
//! a replica is an ordinary durable [`Engine`] whose writes arrive as
//! shipped log records instead of client requests.
//!
//! The pieces, in data-flow order:
//!
//! - [`log`] — [`ReplicationLog`], a read-only tailer over the
//!   primary's WAL directory. Ships CRC-framed record batches capped at
//!   the engine's *durable* floor (never an unsynced record: a crashed
//!   primary could reassign those LSNs), and falls back to the newest
//!   checkpoint when the log has been truncated past the replica.
//! - [`wire`] — the `REPL`/`RBATCH`/`RSNAP`/`PROMOTE` and
//!   `REJOIN`/`RJOIN` line formats on top of the existing newline
//!   protocol, with per-record CRCs that are bit-identical to the WAL
//!   frame checksums.
//! - [`primary`] — [`PrimaryService`]: an [`Engine`] plus the
//!   replication verbs behind one [`Service`], pluggable into
//!   [`start_service`](attrition_serve::start_service).
//! - [`replica`] — [`ReplicaEngine`]: idempotent in-order apply
//!   (skip ≤ applied LSN, hard-error on gaps), epoch fencing,
//!   snapshot bootstrap through the ordinary recovery path, the
//!   `PROMOTE` state machine (fsync, durably bump epoch, accept
//!   writes), and [`ReplicaEngine::rejoin_to`] — the divergent-suffix
//!   discard rule a deposed primary runs to heal back into the
//!   cluster as a replica of the new generation.
//! - [`epoch`] — the durable generation counter behind the fence,
//!   now carrying each generation's start LSN.
//! - [`fetch`] — the real-TCP pull loop (`attrition replicate`), with
//!   jittered exponential backoff on transport errors and the
//!   auto-triggered rejoin handshake on `ERR fenced`.
//!
//! The protocol is verified *sim-first*: `attrition-sim` drives a
//! primary and a replica over an in-memory network with seeded drops,
//! dups, reorders, partitions and crashes, asserting after every fault
//! that (R1) a promoted replica never lands below the primary's
//! acked-durable LSN, (R2) primary and replica snapshots are
//! byte-equal at the same LSN, and (R3) a rejoined deposed primary is
//! byte-equal to the new primary at the same LSN with no divergent
//! record surviving anywhere. The TCP transport here ships the same
//! bytes the simulator ships. See DESIGN §13 and §15.
//!
//! [`Engine`]: attrition_serve::Engine
//! [`Service`]: attrition_serve::Service

pub mod epoch;
pub mod fetch;
pub mod log;
pub mod primary;
pub mod replica;
pub mod wire;

pub use epoch::{
    read_epoch_in, read_epoch_meta_in, write_epoch_in, write_epoch_meta_in, EpochMeta, EPOCH_FILE,
};
pub use fetch::{rejoin_via, run_fetch_loop, FetchLoopConfig, ReplClient};
pub use log::{ReplicationLog, Shipment};
pub use primary::{PrimaryService, MAX_BATCH_RECORDS};
pub use replica::{Applied, RejoinOutcome, ReplicaConfig, ReplicaEngine};
pub use wire::{FetchRequest, FetchResponse, RejoinRequest, RejoinResponse, WireError};
