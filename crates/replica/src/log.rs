//! The primary-side shipper: tail the WAL, serve record batches, fall
//! back to a checkpoint snapshot when the log has moved on.
//!
//! [`ReplicationLog`] is a *read-only* view over the same WAL directory
//! the engine appends to. It never holds the durability lock: the WAL's
//! CRC framing makes a concurrent read safe by construction — a frame
//! that has not fully landed fails its checksum and the scan stops at
//! the last valid boundary, exactly the torn-tail rule recovery relies
//! on. The caller additionally caps every fetch at the engine's durable
//! floor ([`Engine::wal_synced_seq`]), so a record is shipped only once
//! it would also survive a primary crash — shipping an unsynced record
//! and then crashing would let the primary reassign that LSN to a
//! *different* operation, silently diverging the replica.
//!
//! When `after + 1` is no longer in the log (a checkpoint truncated
//! it), the newest readable checkpoint is shipped instead; by the
//! checkpoint invariant (truncation only happens after a covering
//! checkpoint is durable) such a checkpoint always exists and always
//! covers the missing records.
//!
//! [`Engine::wal_synced_seq`]: attrition_serve::Engine::wal_synced_seq

use attrition_serve::checkpoint::{self, CheckpointFormat};
use attrition_serve::wal::{read_records_in, WalRecord, WAL_FILE};
use attrition_serve::Storage;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What one fetch ships back (transport-independent; see
/// [`wire`](crate::wire) for the line encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shipment {
    /// Contiguous records `after+1 ..`, ascending, possibly empty.
    Records(Vec<WalRecord>),
    /// `after+1` is gone from the log: bootstrap from this checkpoint.
    Snapshot {
        /// The LSN the snapshot covers.
        lsn: u64,
        /// On-disk framing of the body.
        format: CheckpointFormat,
        /// The raw checkpoint body.
        body: Vec<u8>,
    },
}

/// A read-only tailer over a primary's WAL directory.
#[derive(Clone)]
pub struct ReplicationLog {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
}

impl ReplicationLog {
    /// A tailer over `dir` (the directory holding `wal.log` and
    /// `checkpoint-*.ckpt`).
    pub fn new(storage: Arc<dyn Storage>, dir: &Path) -> ReplicationLog {
        ReplicationLog {
            storage,
            dir: dir.to_owned(),
        }
    }

    /// The directory being tailed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Ship records `after+1 ..= floor`, at most `max` of them; or the
    /// newest checkpoint when the log no longer holds `after+1`.
    ///
    /// `floor` must be the engine's durable floor; records above it are
    /// never served (see the module docs for why).
    pub fn fetch(&self, after: u64, max: usize, floor: u64) -> std::io::Result<Shipment> {
        if after >= floor {
            return Ok(Shipment::Records(Vec::new()));
        }
        let scan = read_records_in(&*self.storage, &self.dir.join(WAL_FILE))?;
        let shippable: Vec<WalRecord> = scan
            .records
            .into_iter()
            .skip_while(|r| r.seq <= after)
            .take_while(|r| r.seq <= floor)
            .take(max)
            .collect();
        match shippable.first() {
            Some(first) if first.seq == after + 1 => Ok(Shipment::Records(shippable)),
            // The record after `after` is not in the log (either the
            // log's oldest record is newer, or the log is empty): a
            // checkpoint truncated it, so ship the newest readable one.
            _ => self.newest_checkpoint(after),
        }
    }

    /// Ship the newest readable checkpoint.
    ///
    /// Keep-N pruning runs concurrently with shipping: between listing
    /// the directory and reading a file, a fresh checkpoint can land
    /// and demote the one we picked past the keep window, so the read
    /// comes back `NotFound`. That is not a failure — by the pruning
    /// invariant the re-listed directory always holds a *newer*
    /// checkpoint that still covers `after` — so the listing is
    /// re-resolved (bounded, to turn a livelock into an error) instead
    /// of failing the bootstrap. Corrupt files are skipped within a
    /// pass, exactly as recovery skips them.
    fn newest_checkpoint(&self, after: u64) -> std::io::Result<Shipment> {
        for _pass in 0..4 {
            let mut pruned_mid_ship = false;
            for (_lsn, path) in checkpoint::list_in(&*self.storage, &self.dir)? {
                match checkpoint::read_in(&*self.storage, &path) {
                    Ok(ckpt) => {
                        return Ok(Shipment::Snapshot {
                            lsn: ckpt.lsn,
                            format: ckpt.format,
                            body: ckpt.body,
                        })
                    }
                    Err(checkpoint::CheckpointError::Io(e))
                        if e.kind() == std::io::ErrorKind::NotFound =>
                    {
                        pruned_mid_ship = true;
                    }
                    Err(_) => continue, // corrupt: fall back, as recovery does
                }
            }
            if !pruned_mid_ship {
                break;
            }
            attrition_obs::counter("serve.repl.ship_reresolves").inc();
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "record {} is gone from the log and no readable checkpoint covers it",
                after + 1
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_serve::wal::{SyncPolicy, Wal};
    use attrition_serve::{FaultPlan, RealStorage};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("attrition_repllog_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_wal(dir: &Path, ops: &[&str]) {
        let mut wal = Wal::open(&dir.join(WAL_FILE), SyncPolicy::Always, 1).unwrap();
        for op in ops {
            wal.append(op).unwrap();
        }
    }

    #[test]
    fn fetch_serves_contiguous_batches_capped_at_the_floor() {
        let dir = temp_dir("floor");
        write_wal(
            &dir,
            &[
                "INGEST 1 2012-05-02",
                "INGEST 2 2012-05-02",
                "FLUSH 2012-06-01",
            ],
        );
        let log = ReplicationLog::new(RealStorage::shared(), &dir);

        // Caught up (after == floor): empty batch.
        assert_eq!(log.fetch(3, 100, 3).unwrap(), Shipment::Records(vec![]));
        // The floor hides records above it even though they are on disk.
        match log.fetch(0, 100, 2).unwrap() {
            Shipment::Records(records) => {
                assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<u64>>(), [1, 2]);
            }
            other => panic!("expected records, got {other:?}"),
        }
        // `max` caps the batch.
        match log.fetch(0, 1, 3).unwrap() {
            Shipment::Records(records) => assert_eq!(records.len(), 1),
            other => panic!("expected records, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_log_falls_back_to_the_newest_checkpoint() {
        let dir = temp_dir("snap");
        checkpoint::write_binary(&dir, 5, b"ATTRMON1-placeholder-body").unwrap();
        // Log continues after the checkpoint truncation: seqs 6, 7.
        let mut wal = Wal::open(&dir.join(WAL_FILE), SyncPolicy::Always, 6).unwrap();
        wal.append("INGEST 9 2012-07-02").unwrap();
        wal.append("INGEST 9 2012-07-03").unwrap();
        let log = ReplicationLog::new(RealStorage::shared(), &dir);

        // A replica at 2 cannot get record 3: snapshot instead.
        match log.fetch(2, 100, 7).unwrap() {
            Shipment::Snapshot { lsn, format, body } => {
                assert_eq!(lsn, 5);
                assert_eq!(format, CheckpointFormat::Binary);
                assert_eq!(body, b"ATTRMON1-placeholder-body");
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        // A replica at 5 (the checkpoint LSN) reads the tail normally.
        match log.fetch(5, 100, 7).unwrap() {
            Shipment::Records(records) => {
                assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<u64>>(), [6, 7]);
            }
            other => panic!("expected records, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_record_without_checkpoint_is_an_error_not_a_guess() {
        let dir = temp_dir("nockpt");
        let mut wal = Wal::open(&dir.join(WAL_FILE), SyncPolicy::Always, 10).unwrap();
        wal.append("INGEST 1 2012-05-02").unwrap();
        let log = ReplicationLog::new(RealStorage::shared(), &dir);
        assert!(log.fetch(3, 100, 10).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Storage that simulates keep-N pruning racing a snapshot ship:
    /// the first read of the staged checkpoint path removes the file
    /// (as a concurrent prune would), drops a newer checkpoint in its
    /// place, and reports `NotFound`.
    struct PruneRace {
        inner: Arc<dyn Storage>,
        victim: PathBuf,
        replacement_lsn: u64,
        fired: std::sync::Mutex<bool>,
    }

    impl Storage for PruneRace {
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            if path == self.victim {
                let mut fired = self.fired.lock().unwrap();
                if !*fired {
                    *fired = true;
                    self.inner.remove(&self.victim)?;
                    checkpoint::write_binary_in(
                        &*self.inner,
                        self.victim.parent().unwrap(),
                        self.replacement_lsn,
                        b"ATTRMON1-newer-body",
                    )?;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        "pruned mid-ship",
                    ));
                }
            }
            self.inner.read(path)
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            self.inner.write(path, bytes)
        }
        fn append(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
            self.inner.append(path, bytes)
        }
        fn sync(&self, path: &Path) -> std::io::Result<()> {
            self.inner.sync(path)
        }
        fn set_len(&self, path: &Path, len: u64) -> std::io::Result<u64> {
            self.inner.set_len(path, len)
        }
        fn len(&self, path: &Path) -> std::io::Result<u64> {
            self.inner.len(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            self.inner.rename(from, to)
        }
        fn remove(&self, path: &Path) -> std::io::Result<()> {
            self.inner.remove(path)
        }
        fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
            self.inner.sync_dir(dir)
        }
        fn list(&self, dir: &Path) -> std::io::Result<Vec<String>> {
            self.inner.list(dir)
        }
        fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
            self.inner.create_dir_all(dir)
        }
    }

    #[test]
    fn checkpoint_pruned_mid_ship_re_resolves_to_the_newer_one() {
        let dir = temp_dir("prunerace");
        let victim = checkpoint::write_binary(&dir, 5, b"ATTRMON1-placeholder-body").unwrap();
        // Log starts past the checkpoint, so a replica at 2 needs it.
        let mut wal = Wal::open(&dir.join(WAL_FILE), SyncPolicy::Always, 12).unwrap();
        wal.append("INGEST 9 2012-07-02").unwrap();
        let storage: Arc<dyn Storage> = Arc::new(PruneRace {
            inner: RealStorage::shared(),
            victim,
            replacement_lsn: 11,
            fired: std::sync::Mutex::new(false),
        });
        let log = ReplicationLog::new(storage, &dir);
        // The first read vaporizes checkpoint 5 and lands checkpoint 11
        // — the ship must re-list and serve the newer one, not error.
        match log.fetch(2, 100, 12).unwrap() {
            Shipment::Snapshot { lsn, body, .. } => {
                assert_eq!(lsn, 11);
                assert_eq!(body, b"ATTRMON1-newer-body");
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_never_served() {
        let dir = temp_dir("torn");
        // Crash fault: record 3 loses its trailing bytes.
        let mut wal = Wal::open_with_faults(
            &dir.join(WAL_FILE),
            SyncPolicy::Never,
            1,
            FaultPlan::crash_after_torn(3, 5),
        )
        .unwrap();
        for i in 1..=3u64 {
            let _ = wal.append(&format!("INGEST {i} 2012-05-02"));
        }
        let log = ReplicationLog::new(RealStorage::shared(), &dir);
        // Even with a floor above the torn record, only the valid
        // prefix ships: the scan stops at the first bad frame.
        match log.fetch(0, 100, 3).unwrap() {
            Shipment::Records(records) => {
                assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<u64>>(), [1, 2]);
            }
            other => panic!("expected records, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
