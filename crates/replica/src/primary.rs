//! The primary's front-end: the full serving [`Engine`] plus the
//! replication verbs, behind one [`Service`].
//!
//! [`PrimaryService`] intercepts `REPL` (answered from the
//! [`ReplicationLog`] capped at the engine's durable floor) and
//! `PROMOTE` (a primary is not promotable — `ERR`), and delegates every
//! ordinary protocol verb to the engine untouched. Plugging it into
//! [`start_service`](attrition_serve::start_service) turns an ordinary
//! durable server into a replication primary with no change to its
//! client-facing behavior.

use crate::epoch;
use crate::log::{ReplicationLog, Shipment};
use crate::wire::{FetchRequest, FetchResponse, RejoinRequest, RejoinResponse};
use attrition_serve::engine::ShutdownReport;
use attrition_serve::{Engine, Service, Storage};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hard cap on records per shipped batch, whatever the replica asks
/// for — bounds the response size and the time the fetch handler
/// spends re-reading the log.
pub use crate::wire::MAX_BATCH_RECORDS;

/// Answer one `REPL` line from `log`, stamped with `epoch`, capped at
/// `engine`'s durable floor. Shared by the primary and by a promoted
/// replica (which serves its own log the same way).
pub(crate) fn answer_repl(line: &str, epoch: u64, engine: &Engine, log: &ReplicationLog) -> String {
    let req = match FetchRequest::parse(line) {
        Ok(req) => req,
        Err(e) => return format!("ERR {e}"),
    };
    if req.epoch > epoch {
        // The requester has seen a newer primary generation than us —
        // we are the stale side. Never ship; the operator decides what
        // to do with this node.
        return format!(
            "ERR fenced: requester epoch {} is ahead of ours ({epoch})",
            req.epoch
        );
    }
    let floor = engine.wal_synced_seq();
    // How far the fetcher trails our durable log, as of this request —
    // the primary-side view of replication lag.
    attrition_obs::gauge("serve.repl.lag_records").set(floor.saturating_sub(req.after) as i64);
    let max = (req.max as usize).min(MAX_BATCH_RECORDS);
    match log.fetch(req.after, max, floor) {
        Ok(Shipment::Records(records)) => {
            let shipped = records
                .last()
                .map_or_else(|| req.after.min(floor), |r| r.seq);
            attrition_obs::gauge("serve.repl.shipped_seq").set(shipped as i64);
            attrition_obs::gauge("serve.repl.epoch").set(epoch as i64);
            FetchResponse::Batch {
                epoch,
                durable: floor,
                records,
            }
            .to_wire()
        }
        Ok(Shipment::Snapshot { lsn, format, body }) => {
            attrition_obs::gauge("serve.repl.shipped_seq").set(lsn as i64);
            attrition_obs::gauge("serve.repl.epoch").set(epoch as i64);
            FetchResponse::Snapshot {
                epoch,
                lsn,
                format,
                body,
            }
            .to_wire()
        }
        Err(e) => format!("ERR replication fetch failed: {e}"),
    }
}

/// Answer one `REJOIN` divergence handshake, reporting `epoch` and the
/// LSN it started at. Shared by the primary and by a promoted replica.
pub(crate) fn answer_rejoin(line: &str, epoch: u64, epoch_start: u64) -> String {
    let req = match RejoinRequest::parse(line) {
        Ok(req) => req,
        Err(e) => return format!("ERR {e}"),
    };
    if req.epoch > epoch {
        // Same fencing rule as REPL: if the requester has seen a newer
        // generation, we are the one who should be rejoining.
        return format!(
            "ERR fenced: requester epoch {} is ahead of ours ({epoch})",
            req.epoch
        );
    }
    attrition_obs::counter("serve.repl.rejoin_handshakes").inc();
    RejoinResponse {
        epoch,
        promotion_lsn: epoch_start,
    }
    .to_line()
}

/// A replication-serving wrapper around a primary [`Engine`].
pub struct PrimaryService {
    engine: Arc<Engine>,
    log: ReplicationLog,
    epoch: u64,
    epoch_start: u64,
    repl_requests: AtomicU64,
    repl_errors: AtomicU64,
}

impl PrimaryService {
    /// Wrap `engine`, serving replication from `wal_dir` (the engine's
    /// own WAL directory) over the real filesystem.
    pub fn open(engine: Arc<Engine>, wal_dir: &Path) -> std::io::Result<PrimaryService> {
        PrimaryService::open_in(engine, attrition_serve::RealStorage::shared(), wal_dir)
    }

    /// [`open`](PrimaryService::open) against any [`Storage`] (the
    /// simulator's entry point).
    pub fn open_in(
        engine: Arc<Engine>,
        storage: Arc<dyn Storage>,
        wal_dir: &Path,
    ) -> std::io::Result<PrimaryService> {
        let meta = epoch::read_epoch_meta_in(&*storage, wal_dir)?;
        // Persist the default on first boot so a later promotion
        // elsewhere always finds something to compare against.
        epoch::write_epoch_meta_in(&*storage, wal_dir, meta.epoch, meta.start_lsn)?;
        attrition_obs::gauge("serve.repl.epoch").set(meta.epoch as i64);
        let log = ReplicationLog::new(storage, wal_dir);
        Ok(PrimaryService {
            engine,
            log,
            epoch: meta.epoch,
            epoch_start: meta.start_lsn,
            repl_requests: AtomicU64::new(0),
            repl_errors: AtomicU64::new(0),
        })
    }

    /// This primary's generation number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The LSN at which this primary's generation started.
    pub fn epoch_start_lsn(&self) -> u64 {
        self.epoch_start
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    fn intercepted(&self, verb: &'static str, response: String) -> (&'static str, String) {
        self.repl_requests.fetch_add(1, Ordering::Relaxed);
        if response.starts_with("ERR") {
            self.repl_errors.fetch_add(1, Ordering::Relaxed);
        }
        (verb, response)
    }
}

impl Service for PrimaryService {
    fn respond(&self, line: &str) -> (&'static str, String) {
        match line.split_ascii_whitespace().next() {
            Some("REPL") => self.intercepted(
                "repl",
                answer_repl(line, self.epoch, &self.engine, &self.log),
            ),
            Some("REJOIN") => {
                self.intercepted("rejoin", answer_rejoin(line, self.epoch, self.epoch_start))
            }
            Some("PROMOTE") => self.intercepted("promote", "ERR not a replica".to_owned()),
            _ => self.engine.respond(line),
        }
    }

    fn request_shutdown(&self) {
        self.engine.request_shutdown();
    }

    fn shutdown_requested(&self) -> bool {
        self.engine.shutdown_requested()
    }

    fn requests(&self) -> u64 {
        self.engine.requests() + self.repl_requests.load(Ordering::Relaxed)
    }

    fn errors(&self) -> u64 {
        self.engine.errors() + self.repl_errors.load(Ordering::Relaxed)
    }

    fn num_customers(&self) -> usize {
        self.engine.num_customers()
    }

    fn shutdown_flush(&self) -> ShutdownReport {
        self.engine.shutdown_flush()
    }
}
