//! The replica: an ordinary durable [`Engine`] fed by shipped records
//! instead of client writes, plus the promotion state machine.
//!
//! ## How replay stays bit-identical
//!
//! A shipped record is applied by running its op line through the
//! *same* `Engine::respond` path the primary ran — the replica's own
//! WAL assigns the same sequence number (batches are contiguous and
//! applied in order), the same out-of-order ingests are rejected, and
//! the same checkpoints fire. After every record the replica asserts
//! its log landed exactly at the record's sequence number; a mismatch
//! is a hard error, never papered over.
//!
//! ## Idempotency and fencing
//!
//! Records at or below the applied LSN are skipped (dup and reordered
//! deliveries are harmless), and a batch that does not continue at
//! `applied + 1` is rejected (the replica re-fetches). Every shipment
//! carries its sender's epoch: anything stamped below the replica's own
//! epoch is *fenced* — after a promotion bumps the epoch, a resurrected
//! old primary's in-flight shipments reject themselves.
//!
//! ## Promotion
//!
//! `PROMOTE` fsyncs the replica's WAL, durably writes `epoch + 1` and
//! its takeover LSN, and only then starts accepting writes. The
//! takeover LSN is the replica's durable last sequence number — the
//! simulator asserts it is never below the primary's acked-durable LSN
//! (invariant R1).
//!
//! ## Rejoin
//!
//! A deposed primary's durable log may hold a *divergent suffix*:
//! records it logged above the promotion LSN that never shipped, and
//! that the new generation's timeline replaced with different records
//! at the same sequence numbers. Adopting a newer epoch in place would
//! silently graft the new timeline onto that suffix, so [`fence`] only
//! auto-adopts on an *empty* node; everyone else gets a "rejoin
//! required" error, and [`ReplicaEngine::rejoin_to`] applies the
//! discard rule from the `REJOIN`/`RJOIN` handshake: keep local state
//! only when it provably contains no divergent record (the responder
//! is exactly one epoch ahead and our applied LSN is at or below its
//! promotion LSN); otherwise discard WAL + checkpoints durably and
//! re-bootstrap through the ordinary snapshot/recovery path. The epoch
//! adoption is written *last* — a crash mid-discard leaves the node at
//! its old epoch, and the next handshake simply re-runs.

use crate::epoch;
use crate::log::ReplicationLog;
use crate::primary::{answer_rejoin, answer_repl};
use crate::wire::FetchRequest;
use crate::wire::FetchResponse;
use attrition_serve::checkpoint::{self, CheckpointFormat};
use attrition_serve::engine::ShutdownReport;
use attrition_serve::recovery::{recover_in, Fallback, RecoveryError, RecoveryStats};
use attrition_serve::wal::WAL_FILE;
use attrition_serve::{
    Clock, DurabilityConfig, Engine, RealClock, RealStorage, Service, ShardedMonitor, Storage,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Everything a replica needs to open.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The replica's *own* WAL directory (never the primary's).
    pub wal_dir: PathBuf,
    /// Monitor shards, as on a primary.
    pub n_shards: usize,
    /// The replica's own WAL + checkpoint cadence (`wal_dir` here must
    /// match the field above).
    pub durability: DurabilityConfig,
    /// Grid used when the replica boots with no local state yet.
    pub fallback: Fallback,
    /// **Fault-injection only** (the simulator's planted bug): skip the
    /// epoch fence and apply stale-generation shipments. Never set in
    /// production — the replication sweep exists to prove this exact
    /// flag breaks the byte-equality invariant.
    pub accept_stale_epoch: bool,
    /// **Fault-injection only** (the simulator's planted bug): adopt
    /// the new epoch on rejoin but keep the divergent local suffix
    /// instead of discarding it. Never set in production — the rejoin
    /// sweep exists to prove this exact flag breaks invariant R3.
    pub keep_divergent_suffix: bool,
}

impl ReplicaConfig {
    /// Defaults: 8 shards, the [`DurabilityConfig`] defaults, fencing on.
    pub fn new(wal_dir: impl Into<PathBuf>, fallback: Fallback) -> ReplicaConfig {
        let wal_dir = wal_dir.into();
        ReplicaConfig {
            durability: DurabilityConfig::new(&wal_dir),
            wal_dir,
            n_shards: 8,
            fallback,
            accept_stale_epoch: false,
            keep_divergent_suffix: false,
        }
    }
}

/// What [`ReplicaEngine::rejoin_to`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RejoinOutcome {
    /// The node's epoch after the call.
    pub epoch: u64,
    /// Whether the epoch moved forward (a rejoin actually happened).
    pub adopted: bool,
    /// Whether local state was discarded and rebuilt from scratch.
    pub discarded: bool,
    /// Local records above the divergence floor (discarded, unless the
    /// planted `keep_divergent_suffix` bug kept them).
    pub divergent_records: u64,
}

/// What applying one [`FetchResponse`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Applied {
    /// The replica's applied LSN after this shipment.
    pub applied_seq: u64,
    /// Records newly applied.
    pub fresh: u64,
    /// Records skipped as already applied (dups/reorders).
    pub skipped: u64,
    /// Whether a bootstrap snapshot was installed.
    pub snapshot_installed: bool,
    /// Primary durable floor minus applied LSN, per the batch header.
    pub lag: u64,
}

/// The replica engine; implements [`Service`] so
/// [`start_service`](attrition_serve::start_service) can serve it.
pub struct ReplicaEngine {
    inner: RwLock<Arc<Engine>>,
    log: ReplicationLog,
    storage: Arc<dyn Storage>,
    clock: Arc<dyn Clock>,
    config: ReplicaConfig,
    epoch: AtomicU64,
    epoch_start: AtomicU64,
    promoted: AtomicBool,
    shutdown: AtomicBool,
    // Counters for intercepted verbs plus requests accumulated in
    // engines swapped out by a snapshot install.
    base_requests: AtomicU64,
    base_errors: AtomicU64,
}

impl ReplicaEngine {
    /// Open (recovering local state) over the real filesystem and clock.
    pub fn open(config: ReplicaConfig) -> Result<(ReplicaEngine, RecoveryStats), RecoveryError> {
        ReplicaEngine::open_in(config, RealStorage::shared(), Arc::new(RealClock))
    }

    /// [`open`](ReplicaEngine::open) against explicit environment seams
    /// — the simulator's entry point.
    pub fn open_in(
        config: ReplicaConfig,
        storage: Arc<dyn Storage>,
        clock: Arc<dyn Clock>,
    ) -> Result<(ReplicaEngine, RecoveryStats), RecoveryError> {
        storage.create_dir_all(&config.wal_dir)?;
        let meta = epoch::read_epoch_meta_in(&*storage, &config.wal_dir)?;
        let (engine, stats) = recovered_engine(&config, &storage, &clock)?;
        let log = ReplicationLog::new(Arc::clone(&storage), &config.wal_dir);
        attrition_obs::gauge("serve.repl.epoch").set(meta.epoch as i64);
        Ok((
            ReplicaEngine {
                inner: RwLock::new(engine),
                log,
                storage,
                clock,
                config,
                epoch: AtomicU64::new(meta.epoch),
                epoch_start: AtomicU64::new(meta.start_lsn),
                promoted: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
                base_requests: AtomicU64::new(0),
                base_errors: AtomicU64::new(0),
            },
            stats,
        ))
    }

    /// The current inner engine (swapped atomically by a snapshot
    /// install; callers hold a consistent engine for their operation).
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(
            &self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        )
    }

    /// Highest sequence number applied locally.
    pub fn applied_seq(&self) -> u64 {
        self.engine().wal_last_seq()
    }

    /// Highest locally *durable* sequence number — what promotion takes
    /// over at, and what acks report back to the primary.
    pub fn durable_seq(&self) -> u64 {
        self.engine().wal_synced_seq()
    }

    /// The replica's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The LSN at which this node's current epoch started.
    pub fn epoch_start_lsn(&self) -> u64 {
        self.epoch_start.load(Ordering::SeqCst)
    }

    /// Whether this node has been promoted (accepts writes).
    pub fn promoted(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }

    /// The next fetch to send upstream.
    pub fn fetch_request(&self, max: u64) -> FetchRequest {
        FetchRequest {
            epoch: self.epoch(),
            after: self.applied_seq(),
            max,
        }
    }

    /// Apply one shipment. `Err` means nothing further was applied
    /// (fenced epoch, batch gap, log misalignment, failed install) —
    /// the fetch loop logs it and retries from the current state.
    pub fn apply_response(&self, resp: &FetchResponse) -> Result<Applied, String> {
        match resp {
            FetchResponse::Batch {
                epoch,
                durable,
                records,
            } => {
                self.fence(*epoch)?;
                let inner = self.engine();
                let mut applied = inner.wal_last_seq();
                let (mut fresh, mut skipped) = (0u64, 0u64);
                for r in records {
                    if r.seq <= applied {
                        skipped += 1; // dup/reordered delivery: idempotent skip
                        continue;
                    }
                    if r.seq != applied + 1 {
                        return Err(format!(
                            "batch gap: record {} cannot follow applied LSN {applied}",
                            r.seq
                        ));
                    }
                    let (_verb, _response) = inner.respond(&r.op);
                    let now = inner.wal_last_seq();
                    if now != r.seq {
                        // The op did not log exactly one record — a
                        // non-mutating verb in the stream or a local WAL
                        // failure. Divergence, not something to skip.
                        return Err(format!(
                            "replica log misaligned: record {} left the log at {now}",
                            r.seq
                        ));
                    }
                    applied = now;
                    fresh += 1;
                }
                let lag = durable.saturating_sub(applied);
                attrition_obs::gauge("serve.repl.applied_seq").set(applied as i64);
                attrition_obs::gauge("serve.repl.lag_records").set(lag as i64);
                Ok(Applied {
                    applied_seq: applied,
                    fresh,
                    skipped,
                    snapshot_installed: false,
                    lag,
                })
            }
            FetchResponse::Snapshot {
                epoch,
                lsn,
                format,
                body,
            } => {
                self.fence(*epoch)?;
                let applied = self.applied_seq();
                if *lsn <= applied {
                    // A duplicate or reordered bootstrap we already
                    // passed: ignore, never move backwards.
                    return Ok(Applied {
                        applied_seq: applied,
                        ..Applied::default()
                    });
                }
                self.install_snapshot(*lsn, *format, body)
                    .map_err(|e| format!("snapshot install failed: {e}"))?;
                let applied = self.applied_seq();
                attrition_obs::gauge("serve.repl.applied_seq").set(applied as i64);
                Ok(Applied {
                    applied_seq: applied,
                    snapshot_installed: true,
                    ..Applied::default()
                })
            }
        }
    }

    /// The epoch fence: reject stale generations, adopt newer ones
    /// (durably) before applying anything they shipped.
    fn fence(&self, sender_epoch: u64) -> Result<(), String> {
        let own = self.epoch();
        if sender_epoch < own {
            if self.config.accept_stale_epoch {
                // Planted bug (fault injection): apply it anyway. The
                // replication sweep proves this diverges.
                attrition_obs::counter("serve.repl.stale_epoch_accepted").inc();
                return Ok(());
            }
            attrition_obs::counter("serve.repl.fenced").inc();
            return Err(format!(
                "fenced: shipment epoch {sender_epoch} below replica epoch {own}"
            ));
        }
        if sender_epoch > own {
            // A newer generation exists. Only an *empty* node may adopt
            // it in place: anything with local history may hold a
            // divergent suffix above the promotion LSN, and grafting
            // the new timeline onto it would be silent divergence. The
            // caller must run the REJOIN handshake (`rejoin_to`), which
            // knows where the new generation started.
            if self.applied_seq() > 0 {
                attrition_obs::counter("serve.repl.rejoin_required").inc();
                return Err(format!(
                    "rejoin required: shipment epoch {sender_epoch} is ahead of epoch {own} \
                     and this node has local history (possible divergent suffix)"
                ));
            }
            epoch::write_epoch_meta_in(&*self.storage, &self.config.wal_dir, sender_epoch, 0)
                .map_err(|e| format!("cannot adopt epoch {sender_epoch}: {e}"))?;
            self.epoch.store(sender_epoch, Ordering::SeqCst);
            self.epoch_start.store(0, Ordering::SeqCst);
            attrition_obs::gauge("serve.repl.epoch").set(sender_epoch as i64);
        }
        Ok(())
    }

    /// Rejoin the generation a `RJOIN <new_epoch> <promotion_lsn>`
    /// handshake reported, discarding any divergent local suffix.
    ///
    /// The discard rule: local state survives only when it provably
    /// contains no record off the surviving timeline — the responder is
    /// exactly one epoch ahead (so `promotion_lsn` *is* the boundary
    /// where our timeline ended) and our applied LSN is at or below it.
    /// Across more than one promotion the responder only knows its
    /// latest takeover point, which may lie above older divergence, so
    /// the floor drops to 0 and everything local is rebuilt.
    ///
    /// A no-op when `new_epoch` is not ahead of ours. Errors if this
    /// node was promoted (a primary does not rejoin anything).
    pub fn rejoin_to(&self, new_epoch: u64, promotion_lsn: u64) -> std::io::Result<RejoinOutcome> {
        if self.promoted() {
            return Err(std::io::Error::other("a promoted node cannot rejoin"));
        }
        let mut guard = self
            .inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        let own = self.epoch();
        if new_epoch <= own {
            return Ok(RejoinOutcome {
                epoch: own,
                ..RejoinOutcome::default()
            });
        }
        let applied = guard.wal_last_seq();
        let divergence_floor = if new_epoch == own + 1 {
            promotion_lsn
        } else {
            0
        };
        let divergent = applied.saturating_sub(divergence_floor);
        let mut discarded = false;
        if divergent > 0 {
            if self.config.keep_divergent_suffix {
                // Planted bug (fault injection): adopt the epoch but
                // keep the suffix. The rejoin sweep proves this breaks
                // the R3 byte-equality invariant.
                attrition_obs::counter("serve.repl.divergent_suffix_kept").inc();
            } else {
                self.discard_local_state()?;
                let (engine, _stats) = recovered_engine(&self.config, &self.storage, &self.clock)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                self.base_requests
                    .fetch_add(guard.requests(), Ordering::Relaxed);
                self.base_errors
                    .fetch_add(guard.errors(), Ordering::Relaxed);
                *guard = engine;
                discarded = true;
                attrition_obs::counter("serve.repl.divergent_records_discarded").add(divergent);
                attrition_obs::gauge("serve.repl.applied_seq").set(0);
            }
        }
        // The epoch adoption lands last, after every discard above is
        // durable: a crash anywhere earlier leaves the node at its old
        // epoch and the handshake re-runs; adopting first could leave a
        // new-epoch node still holding its divergent log.
        epoch::write_epoch_meta_in(
            &*self.storage,
            &self.config.wal_dir,
            new_epoch,
            promotion_lsn,
        )?;
        self.epoch.store(new_epoch, Ordering::SeqCst);
        self.epoch_start.store(promotion_lsn, Ordering::SeqCst);
        attrition_obs::counter("serve.repl.rejoins").inc();
        attrition_obs::gauge("serve.repl.epoch").set(new_epoch as i64);
        Ok(RejoinOutcome {
            epoch: new_epoch,
            adopted: true,
            discarded,
            divergent_records: divergent,
        })
    }

    /// Durably erase WAL and checkpoints (the divergent timeline) so
    /// recovery sees a pristine directory.
    fn discard_local_state(&self) -> std::io::Result<()> {
        let wal_path = self.config.wal_dir.join(WAL_FILE);
        match self.storage.set_len(&wal_path, 0) {
            Ok(_) => self.storage.sync(&wal_path)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        for (_lsn, path) in checkpoint::list_in(&*self.storage, &self.config.wal_dir)? {
            self.storage.remove(&path)?;
        }
        for (_lsn, path) in checkpoint::list_tmp_in(&*self.storage, &self.config.wal_dir)? {
            self.storage.remove(&path)?;
        }
        // Removals must survive a crash before the epoch write lands,
        // or a half-discarded node could recover divergent state under
        // the new epoch.
        self.storage.sync_dir(&self.config.wal_dir)
    }

    /// Install a bootstrap checkpoint: truncate the local WAL (its
    /// records are all below the snapshot), write the checkpoint file,
    /// and rebuild the inner engine through the ordinary recovery path.
    fn install_snapshot(
        &self,
        lsn: u64,
        format: CheckpointFormat,
        body: &[u8],
    ) -> std::io::Result<()> {
        let mut guard = self
            .inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        let wal_path = self.config.wal_dir.join(WAL_FILE);
        self.storage.set_len(&wal_path, 0)?;
        self.storage.sync(&wal_path)?;
        match format {
            CheckpointFormat::Text => {
                let text = std::str::from_utf8(body).map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "text checkpoint body is not UTF-8",
                    )
                })?;
                checkpoint::write_in(&*self.storage, &self.config.wal_dir, lsn, text)?;
            }
            CheckpointFormat::Binary => {
                checkpoint::write_binary_in(&*self.storage, &self.config.wal_dir, lsn, body)?;
            }
        }
        let (engine, _stats) = recovered_engine(&self.config, &self.storage, &self.clock)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        self.base_requests
            .fetch_add(guard.requests(), Ordering::Relaxed);
        self.base_errors
            .fetch_add(guard.errors(), Ordering::Relaxed);
        *guard = engine;
        Ok(())
    }

    /// Take over as primary: fsync the local WAL, durably bump the
    /// epoch, start accepting writes. Returns `(epoch, takeover_lsn)`;
    /// idempotent — a second call reports the existing promotion.
    pub fn promote(&self) -> std::io::Result<(u64, u64)> {
        if self.promoted() {
            return Ok((self.epoch(), self.engine().wal_last_seq()));
        }
        let inner = self.engine();
        inner.sync_wal()?;
        let lsn = inner.wal_last_seq();
        let new_epoch = self.epoch() + 1;
        // Epoch first, durably, with its takeover LSN: once we accept a
        // write, any shipment from the old generation must already be
        // fenceable, and a rejoining deposed primary will ask where
        // this generation started.
        epoch::write_epoch_meta_in(&*self.storage, &self.config.wal_dir, new_epoch, lsn)?;
        self.epoch.store(new_epoch, Ordering::SeqCst);
        self.epoch_start.store(lsn, Ordering::SeqCst);
        self.promoted.store(true, Ordering::SeqCst);
        attrition_obs::gauge("serve.repl.epoch").set(new_epoch as i64);
        Ok((new_epoch, lsn))
    }

    fn intercepted(&self, verb: &'static str, response: String) -> (&'static str, String) {
        self.base_requests.fetch_add(1, Ordering::Relaxed);
        if response.starts_with("ERR") {
            self.base_errors.fetch_add(1, Ordering::Relaxed);
        }
        (verb, response)
    }
}

fn recovered_engine(
    config: &ReplicaConfig,
    storage: &Arc<dyn Storage>,
    clock: &Arc<dyn Clock>,
) -> Result<(Arc<Engine>, RecoveryStats), RecoveryError> {
    let (monitor, stats) = recover_in(&**storage, &config.wal_dir, Some(&config.fallback))?;
    let sharded = ShardedMonitor::from_monitor(monitor, config.n_shards);
    let engine = Engine::open_in(
        sharded,
        None,
        Some(&config.durability),
        stats.next_seq,
        Arc::clone(storage),
        Arc::clone(clock),
    )?;
    Ok((Arc::new(engine), stats))
}

impl Service for ReplicaEngine {
    fn respond(&self, line: &str) -> (&'static str, String) {
        match line.split_ascii_whitespace().next() {
            // A replica serves its own log too — that is what lets a
            // promoted node immediately act as the next primary (and
            // supports chained replicas).
            Some("REPL") => self.intercepted(
                "repl",
                answer_repl(line, self.epoch(), &self.engine(), &self.log),
            ),
            // A promoted node is the new primary: it answers the
            // divergence handshake with its takeover point so deposed
            // nodes can find and discard their divergent suffixes.
            Some("REJOIN") => self.intercepted(
                "rejoin",
                answer_rejoin(line, self.epoch(), self.epoch_start_lsn()),
            ),
            Some("PROMOTE") => {
                let response = match self.promote() {
                    Ok((epoch, lsn)) => format!("OK promoted {epoch} {lsn}"),
                    Err(e) => format!("ERR promote failed: {e}"),
                };
                self.intercepted("promote", response)
            }
            Some("INGEST" | "FLUSH") if !self.promoted() => self.intercepted(
                "readonly",
                "ERR read-only replica (PROMOTE to accept writes)".to_owned(),
            ),
            Some("SHUTDOWN") => {
                self.request_shutdown();
                self.intercepted("shutdown", "OK draining".to_owned())
            }
            _ => self.engine().respond(line),
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.engine().request_shutdown();
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || self.engine().shutdown_requested()
    }

    fn requests(&self) -> u64 {
        self.base_requests.load(Ordering::Relaxed) + self.engine().requests()
    }

    fn errors(&self) -> u64 {
        self.base_errors.load(Ordering::Relaxed) + self.engine().errors()
    }

    fn num_customers(&self) -> usize {
        self.engine().num_customers()
    }

    fn shutdown_flush(&self) -> ShutdownReport {
        self.engine().shutdown_flush()
    }
}
