//! The replication wire format: three line shapes on top of the
//! existing newline protocol.
//!
//! A replica pulls; the primary never initiates. One fetch round trip:
//!
//! ```text
//! → REPL <epoch> <after> <max>
//! ← RBATCH <epoch> <durable> <n>        (records available)
//!   R <seq> <crc> <op...>               (× n)
//! ← RSNAP <epoch> <lsn> <format> <len> <crc>   (log truncated past
//!   <hex body>                           `after`: bootstrap snapshot)
//! ← ERR <reason>
//! ```
//!
//! and the failover verbs:
//!
//! ```text
//! → PROMOTE
//! ← OK promoted <epoch> <lsn>
//!
//! → REJOIN <epoch> <durable>             (deposed node asking where
//! ← RJOIN <epoch> <promotion_lsn>         the new generation started)
//! ```
//!
//! `REJOIN`/`RJOIN` is the divergence handshake: a node that discovers
//! a newer generation reports its own epoch and durable LSN, and the
//! current primary answers with its epoch and that epoch's start LSN.
//! The requester then knows exactly which suffix of its local log never
//! made it onto the surviving timeline and must be discarded before it
//! can fetch again (see `ReplicaEngine::rejoin_to`).
//!
//! `<crc>` on an `R` line is CRC-32 over `seq: u64 LE ++ op` — the
//! *identical* bytes the WAL frame checksums, so a record's integrity
//! check is the same computation on both sides of the wire. The `RSNAP`
//! `<crc>`/`<len>` cover the raw checkpoint body (hex-decoded); the
//! body itself re-verifies once more when the checkpoint file is read
//! back after installation.
//!
//! Everything here is pure encode/decode — no sockets, no engines — so
//! the deterministic simulator and the real TCP transport ship
//! byte-identical lines.

use attrition_serve::checkpoint::CheckpointFormat;
use attrition_serve::wal::WalRecord;
use attrition_util::crc::crc32;

/// Most records the primary will ship in one batch; also the wire
/// parser's sanity bound on the record count an `RBATCH` header may
/// promise (anything larger is rejected before buffers are sized).
pub const MAX_BATCH_RECORDS: usize = 4096;

/// A malformed replication line (answered/reported as `ERR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

/// CRC-32 over `seq LE ++ op` — the WAL frame's payload checksum,
/// recomputed for the wire.
pub fn record_crc(seq: u64, op: &str) -> u32 {
    let mut payload = Vec::with_capacity(8 + op.len());
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(op.as_bytes());
    crc32(&payload)
}

/// One replication fetch: "send me records after `after`, at most
/// `max`, and here is my epoch so you can fence me if I am stale-dated".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRequest {
    /// The requesting replica's current epoch.
    pub epoch: u64,
    /// Highest sequence number the replica has applied.
    pub after: u64,
    /// Most records the replica will accept in one batch.
    pub max: u64,
}

impl FetchRequest {
    /// Render the `REPL` request line.
    pub fn to_line(&self) -> String {
        format!("REPL {} {} {}", self.epoch, self.after, self.max)
    }

    /// Parse a `REPL` request line.
    pub fn parse(line: &str) -> Result<FetchRequest, WireError> {
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        if fields.len() != 4 || fields[0] != "REPL" {
            return Err(WireError(format!(
                "bad REPL request {line:?} (expected REPL <epoch> <after> <max>)"
            )));
        }
        let num = |i: usize| -> Result<u64, WireError> {
            fields[i]
                .parse()
                .map_err(|_| WireError(format!("bad number {:?} in {line:?}", fields[i])))
        };
        let req = FetchRequest {
            epoch: num(1)?,
            after: num(2)?,
            max: num(3)?,
        };
        if req.max == 0 {
            // A zero-record fetch is never what a replica means, and
            // letting it through would turn a caught-up request into a
            // pointless full-snapshot shipment once the log truncates.
            return Err(WireError(format!(
                "bad REPL request {line:?} (max must be >= 1)"
            )));
        }
        Ok(req)
    }
}

/// The divergence handshake request: "here is my epoch and my durable
/// LSN — tell me where your generation started so I can find my
/// divergent suffix".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinRequest {
    /// The requesting node's current epoch.
    pub epoch: u64,
    /// The requesting node's durable LSN.
    pub durable: u64,
}

impl RejoinRequest {
    /// Render the `REJOIN` request line.
    pub fn to_line(&self) -> String {
        format!("REJOIN {} {}", self.epoch, self.durable)
    }

    /// Parse a `REJOIN` request line.
    pub fn parse(line: &str) -> Result<RejoinRequest, WireError> {
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        if fields.len() != 3 || fields[0] != "REJOIN" {
            return Err(WireError(format!(
                "bad REJOIN request {line:?} (expected REJOIN <epoch> <durable>)"
            )));
        }
        let num = |i: usize| -> Result<u64, WireError> {
            fields[i]
                .parse()
                .map_err(|_| WireError(format!("bad number {:?} in {line:?}", fields[i])))
        };
        Ok(RejoinRequest {
            epoch: num(1)?,
            durable: num(2)?,
        })
    }
}

/// The divergence handshake answer: the responder's epoch and the LSN
/// at which that epoch began (the promotion takeover point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinResponse {
    /// The responding primary's epoch.
    pub epoch: u64,
    /// The LSN at which the responder's epoch started. Records above
    /// this LSN on an older epoch's timeline are divergent.
    pub promotion_lsn: u64,
}

impl RejoinResponse {
    /// Render the `RJOIN` response line.
    pub fn to_line(&self) -> String {
        format!("RJOIN {} {}", self.epoch, self.promotion_lsn)
    }

    /// Parse an `RJOIN` response line.
    pub fn parse(line: &str) -> Result<RejoinResponse, WireError> {
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        if fields.len() != 3 || fields[0] != "RJOIN" {
            return Err(WireError(format!(
                "bad RJOIN response {line:?} (expected RJOIN <epoch> <promotion_lsn>)"
            )));
        }
        let num = |i: usize| -> Result<u64, WireError> {
            fields[i]
                .parse()
                .map_err(|_| WireError(format!("bad number {:?} in {line:?}", fields[i])))
        };
        let resp = RejoinResponse {
            epoch: num(1)?,
            promotion_lsn: num(2)?,
        };
        if resp.epoch == 0 {
            return Err(WireError(format!(
                "bad RJOIN response {line:?} (epochs are 1-based)"
            )));
        }
        Ok(resp)
    }
}

/// What a fetch brought back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchResponse {
    /// Records `after+1 ..` (possibly empty: the replica is caught up).
    Batch {
        /// The sender's epoch.
        epoch: u64,
        /// The sender's durable floor at response time — what the
        /// replica's lag gauge measures against.
        durable: u64,
        /// Contiguous records, ascending sequence numbers.
        records: Vec<WalRecord>,
    },
    /// The log no longer holds `after+1` (a checkpoint truncated it):
    /// bootstrap from this snapshot, then fetch the tail.
    Snapshot {
        /// The sender's epoch.
        epoch: u64,
        /// The LSN the snapshot covers.
        lsn: u64,
        /// On-disk framing of the shipped checkpoint body.
        format: CheckpointFormat,
        /// The raw checkpoint body (text or binary per `format`).
        body: Vec<u8>,
    },
}

impl FetchResponse {
    /// The sender's epoch, whatever the variant.
    pub fn epoch(&self) -> u64 {
        match self {
            FetchResponse::Batch { epoch, .. } => *epoch,
            FetchResponse::Snapshot { epoch, .. } => *epoch,
        }
    }

    /// Render the full (multi-line, no trailing newline) response.
    pub fn to_wire(&self) -> String {
        match self {
            FetchResponse::Batch {
                epoch,
                durable,
                records,
            } => {
                let mut out = format!("RBATCH {epoch} {durable} {}", records.len());
                for r in records {
                    out.push('\n');
                    out.push_str(&format!(
                        "R {} {} {}",
                        r.seq,
                        record_crc(r.seq, &r.op),
                        r.op
                    ));
                }
                out
            }
            FetchResponse::Snapshot {
                epoch,
                lsn,
                format,
                body,
            } => {
                format!(
                    "RSNAP {epoch} {lsn} {format} {} {}\n{}",
                    body.len(),
                    crc32(body),
                    hex_encode(body)
                )
            }
        }
    }

    /// How many lines follow a response header line (`RBATCH` → its
    /// record count, `RSNAP` → the body line, anything else → 0). The
    /// TCP fetcher uses this to know when a response is complete.
    pub fn extra_lines(header: &str) -> Result<usize, WireError> {
        let fields: Vec<&str> = header.split_ascii_whitespace().collect();
        match fields.first() {
            Some(&"RBATCH") if fields.len() == 4 => fields[3]
                .parse()
                .ok()
                .filter(|&n: &usize| n <= MAX_BATCH_RECORDS)
                .ok_or_else(|| WireError(format!("bad record count in {header:?}"))),
            Some(&"RSNAP") => Ok(1),
            _ => Ok(0),
        }
    }

    /// Parse a full response (header + continuation lines), verifying
    /// every per-record and body checksum.
    pub fn parse(text: &str) -> Result<FetchResponse, WireError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| WireError("empty replication response".into()))?;
        let fields: Vec<&str> = header.split_ascii_whitespace().collect();
        let num = |f: &str| -> Result<u64, WireError> {
            f.parse()
                .map_err(|_| WireError(format!("bad number {f:?} in {header:?}")))
        };
        match fields.first() {
            Some(&"RBATCH") if fields.len() == 4 => {
                let epoch = num(fields[1])?;
                let durable = num(fields[2])?;
                let n = num(fields[3])? as usize;
                if n > MAX_BATCH_RECORDS {
                    return Err(WireError(format!(
                        "RBATCH promises {n} records (cap is {MAX_BATCH_RECORDS})"
                    )));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let line = lines.next().ok_or_else(|| {
                        WireError(format!(
                            "RBATCH promised {n} records, got {}",
                            records.len()
                        ))
                    })?;
                    records.push(parse_record_line(line)?);
                }
                Ok(FetchResponse::Batch {
                    epoch,
                    durable,
                    records,
                })
            }
            Some(&"RSNAP") if fields.len() == 6 => {
                let epoch = num(fields[1])?;
                let lsn = num(fields[2])?;
                let format: CheckpointFormat = fields[3].parse().map_err(WireError)?;
                let len = num(fields[4])? as usize;
                let crc = num(fields[5])? as u32;
                let body_hex = lines
                    .next()
                    .ok_or_else(|| WireError("RSNAP missing its body line".into()))?;
                let body = hex_decode(body_hex)?;
                if body.len() != len {
                    return Err(WireError(format!(
                        "RSNAP body length {} ≠ announced {len}",
                        body.len()
                    )));
                }
                if crc32(&body) != crc {
                    return Err(WireError("RSNAP body failed its checksum".into()));
                }
                Ok(FetchResponse::Snapshot {
                    epoch,
                    lsn,
                    format,
                    body,
                })
            }
            _ => Err(WireError(format!("bad replication response {header:?}"))),
        }
    }
}

fn parse_record_line(line: &str) -> Result<WalRecord, WireError> {
    let mut fields = line.splitn(4, ' ');
    let tag = fields.next().unwrap_or("");
    let (Some(seq), Some(crc)) = (fields.next(), fields.next()) else {
        return Err(WireError(format!("bad record line {line:?}")));
    };
    if tag != "R" {
        return Err(WireError(format!("bad record line {line:?}")));
    }
    let seq: u64 = seq
        .parse()
        .map_err(|_| WireError(format!("bad seq in {line:?}")))?;
    let crc: u32 = crc
        .parse()
        .map_err(|_| WireError(format!("bad crc in {line:?}")))?;
    let op = fields.next().unwrap_or("").to_owned();
    if record_crc(seq, &op) != crc {
        return Err(WireError(format!("record {seq} failed its checksum")));
    }
    Ok(WalRecord { seq, op })
}

/// Lowercase hex, two digits per byte (the snapshot body's line-safe
/// encoding — checkpoint bodies may contain newlines and arbitrary
/// bytes).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`hex_encode`].
pub fn hex_decode(text: &str) -> Result<Vec<u8>, WireError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(WireError("odd-length hex body".into()));
    }
    let nibble = |c: u8| -> Result<u8, WireError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(WireError(format!("bad hex digit {:?}", c as char))),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                seq: 4,
                op: "INGEST 7 2012-05-02 1 2 3".into(),
            },
            WalRecord {
                seq: 5,
                op: "FLUSH 2012-06-01".into(),
            },
        ]
    }

    #[test]
    fn fetch_request_roundtrips() {
        let req = FetchRequest {
            epoch: 3,
            after: 41,
            max: 256,
        };
        assert_eq!(req.to_line(), "REPL 3 41 256");
        assert_eq!(FetchRequest::parse(&req.to_line()).unwrap(), req);
        for bad in [
            "REPL",
            "REPL 1 2",
            "REPL 1 2 3 4 5",
            "REPL x 2 3",
            "NOPE 1 2 3",
            // the malformed-frame corpus: non-numeric, overflowing,
            // negative, and zero-max requests all ERR at parse time
            "REPL 1 2 0",
            "REPL 18446744073709551616 2 3",
            "REPL 1 18446744073709551616 3",
            "REPL 1 2 18446744073709551616",
            "REPL -1 2 3",
            "REPL 1.5 2 3",
            "REPL \u{221e} 2 3",
        ] {
            assert!(FetchRequest::parse(bad).is_err(), "accepted {bad:?}");
        }
        // max above the batch cap parses — the primary clamps it.
        assert!(FetchRequest::parse("REPL 1 2 999999").is_ok());
    }

    #[test]
    fn rejoin_handshake_roundtrips_and_rejects_malformed_lines() {
        let req = RejoinRequest {
            epoch: 1,
            durable: 93,
        };
        assert_eq!(req.to_line(), "REJOIN 1 93");
        assert_eq!(RejoinRequest::parse(&req.to_line()).unwrap(), req);
        for bad in [
            "REJOIN",
            "REJOIN 1",
            "REJOIN 1 2 3",
            "REJOIN x 2",
            "REJOIN 1 18446744073709551616",
            "RJOIN 1 2",
        ] {
            assert!(RejoinRequest::parse(bad).is_err(), "accepted {bad:?}");
        }

        let resp = RejoinResponse {
            epoch: 2,
            promotion_lsn: 87,
        };
        assert_eq!(resp.to_line(), "RJOIN 2 87");
        assert_eq!(RejoinResponse::parse(&resp.to_line()).unwrap(), resp);
        // RJOIN is header-only: the fetcher reads no continuation lines.
        assert_eq!(FetchResponse::extra_lines(&resp.to_line()).unwrap(), 0);
        for bad in [
            "RJOIN",
            "RJOIN 2",
            "RJOIN 2 3 4",
            "RJOIN 0 3",
            "RJOIN x 3",
            "REJOIN 2 3",
        ] {
            assert!(RejoinResponse::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn truncated_or_oversized_responses_are_rejected() {
        // RBATCH promising more records than it carries.
        let wire = FetchResponse::Batch {
            epoch: 2,
            durable: 9,
            records: records(),
        }
        .to_wire();
        let truncated: String = wire.lines().take(2).collect::<Vec<_>>().join("\n");
        let err = FetchResponse::parse(&truncated).unwrap_err();
        assert!(err.0.contains("promised"), "unexpected error: {err}");

        // A record count above the batch cap is rejected before any
        // buffer is sized to it, in both the line counter and the parser.
        let oversize = format!("RBATCH 1 1 {}", MAX_BATCH_RECORDS + 1);
        assert!(FetchResponse::extra_lines(&oversize).is_err());
        assert!(FetchResponse::parse(&oversize).is_err());
        let absurd = "RBATCH 1 1 99999999999999999999";
        assert!(FetchResponse::extra_lines(absurd).is_err());
        assert!(FetchResponse::parse(absurd).is_err());

        // RSNAP with no body line, and with a short body.
        assert!(FetchResponse::parse("RSNAP 1 5 text 11 123").is_err());
        let snap = FetchResponse::Snapshot {
            epoch: 1,
            lsn: 7,
            format: CheckpointFormat::Text,
            body: b"hello,world".to_vec(),
        }
        .to_wire();
        let mut lines = snap.lines();
        let header = lines.next().unwrap();
        let body = lines.next().unwrap();
        let short = format!("{header}\n{}", &body[..body.len() - 2]);
        assert!(FetchResponse::parse(&short).is_err());
    }

    #[test]
    fn batch_roundtrips_and_counts_extra_lines() {
        let resp = FetchResponse::Batch {
            epoch: 2,
            durable: 9,
            records: records(),
        };
        let wire = resp.to_wire();
        let header = wire.lines().next().unwrap();
        assert_eq!(FetchResponse::extra_lines(header).unwrap(), 2);
        assert_eq!(FetchResponse::parse(&wire).unwrap(), resp);

        let empty = FetchResponse::Batch {
            epoch: 1,
            durable: 0,
            records: vec![],
        };
        assert_eq!(empty.to_wire(), "RBATCH 1 0 0");
        assert_eq!(FetchResponse::parse(&empty.to_wire()).unwrap(), empty);
    }

    #[test]
    fn snapshot_roundtrips_including_binary_bodies() {
        let body: Vec<u8> = (0u16..512).map(|b| (b % 256) as u8).collect();
        let resp = FetchResponse::Snapshot {
            epoch: 5,
            lsn: 100,
            format: CheckpointFormat::Binary,
            body,
        };
        let wire = resp.to_wire();
        assert_eq!(
            FetchResponse::extra_lines(wire.lines().next().unwrap()).unwrap(),
            1
        );
        assert_eq!(FetchResponse::parse(&wire).unwrap(), resp);
    }

    #[test]
    fn corrupted_record_or_body_is_rejected() {
        let wire = FetchResponse::Batch {
            epoch: 2,
            durable: 9,
            records: records(),
        }
        .to_wire();
        // Flip one character of an op: the per-record CRC catches it.
        let corrupted = wire.replace("2012-05-02", "2012-05-03");
        assert!(FetchResponse::parse(&corrupted).is_err());

        let snap = FetchResponse::Snapshot {
            epoch: 1,
            lsn: 7,
            format: CheckpointFormat::Text,
            body: b"hello,world".to_vec(),
        }
        .to_wire();
        let corrupted = snap.replacen("68", "69", 1); // first body byte
        assert!(FetchResponse::parse(&corrupted).is_err());
    }

    #[test]
    fn hex_roundtrips() {
        for body in [&b""[..], &b"\x00\xff\n\r arbitrary"[..]] {
            assert_eq!(hex_decode(&hex_encode(body)).unwrap(), body);
        }
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
