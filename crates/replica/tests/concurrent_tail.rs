//! The shipper against a torn, truncating tail — concurrently.
//!
//! The primary's WAL is appended, torn (a crash mid-frame), scanned and
//! `truncate_to_valid`'d in a loop while a second thread keeps fetching
//! from the same directory through [`ReplicationLog`]. The shipper
//! holds no lock against the writer; its safety rests entirely on the
//! CRC framing and the durable-floor cap, so this test demands:
//!
//! 1. every record ever served carries exactly the op text that was
//!    validly appended at that sequence number — garbage bytes past the
//!    truncation point are never decoded into a record, and
//! 2. no served record exceeds the floor the caller passed.

use attrition_replica::{ReplicationLog, Shipment};
use attrition_serve::wal::{read_records, truncate_to_valid, SyncPolicy, Wal, WAL_FILE};
use attrition_serve::RealStorage;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("attrition_repl_tail_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The op validly appended at sequence `seq` — deterministic, so the
/// reader can verify any served record without coordination.
fn op_for(seq: u64) -> String {
    format!("INGEST {seq} 2012-05-02 7 {}", seq * 31)
}

#[test]
fn concurrent_truncate_to_valid_never_leaks_torn_bytes_to_the_shipper() {
    let dir = temp_dir("concurrent");
    let wal_path = dir.join(WAL_FILE);
    // Create an empty log so the reader never races file creation.
    drop(Wal::open(&wal_path, SyncPolicy::Always, 1).unwrap());

    // `floor` publishes the highest fully-appended, fsynced sequence
    // number — the same durable floor the real primary caps fetches at.
    let floor = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));

    let reader = {
        let (dir, floor, done, served) = (
            dir.clone(),
            Arc::clone(&floor),
            Arc::clone(&done),
            Arc::clone(&served),
        );
        std::thread::spawn(move || {
            let log = ReplicationLog::new(RealStorage::shared(), &dir);
            let mut after = 0u64;
            while !done.load(Ordering::SeqCst) {
                let cap = floor.load(Ordering::SeqCst);
                match log.fetch(after, 16, cap) {
                    Ok(Shipment::Records(records)) => {
                        let mut expect = after + 1;
                        for r in &records {
                            assert_eq!(r.seq, expect, "batches are contiguous");
                            assert!(r.seq <= cap, "served past the floor: {} > {cap}", r.seq);
                            assert_eq!(
                                r.op,
                                op_for(r.seq),
                                "seq {} served bytes that were never validly appended",
                                r.seq
                            );
                            expect += 1;
                        }
                        served.fetch_add(records.len() as u64, Ordering::SeqCst);
                        after = expect - 1;
                        // Rewind sometimes so torn regions are re-read
                        // long after they were truncated away.
                        if after.is_multiple_of(7) {
                            after = after.saturating_sub(5);
                        }
                    }
                    // No checkpoints are ever written here, so a
                    // snapshot fallback would mean the reader decoded a
                    // hole that cannot exist.
                    Ok(Shipment::Snapshot { lsn, .. }) => {
                        panic!("impossible snapshot fallback at lsn {lsn}")
                    }
                    // Transient: the writer truncated mid-read. The
                    // next round re-fetches.
                    Err(_) => {}
                }
            }
        })
    };

    // Writer: cycles of append → torn tail (raw garbage) → scan →
    // truncate_to_valid, exactly the crash/recovery sequence, while the
    // reader runs unsynchronized.
    let mut next_seq = 1u64;
    for cycle in 0..60u64 {
        let mut wal = Wal::open(&wal_path, SyncPolicy::Always, next_seq).unwrap();
        for _ in 0..3 {
            let seq = wal.append(&op_for(next_seq)).unwrap();
            assert_eq!(seq, next_seq);
            floor.store(next_seq, Ordering::SeqCst);
            next_seq += 1;
        }
        drop(wal);

        // Tear the tail: a partial frame whose header promises more
        // payload than follows, plus bytes that must never decode.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .unwrap();
        let torn_len = 9 + (cycle % 7) as usize;
        let mut garbage = Vec::with_capacity(8 + torn_len);
        garbage.extend_from_slice(&(200u32 + cycle as u32).to_le_bytes()); // length
        garbage.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // wrong CRC
        garbage.resize(garbage.len() + torn_len, 0xA5);
        file.write_all(&garbage).unwrap();
        file.sync_all().unwrap();
        drop(file);

        // Recovery's contract: scan stops at the last valid frame and
        // the torn suffix is chopped before the next generation appends.
        let scan = read_records(&wal_path).unwrap();
        assert_eq!(scan.torn_bytes, garbage.len() as u64, "cycle {cycle}");
        assert_eq!(scan.records.last().unwrap().seq, next_seq - 1);
        truncate_to_valid(&wal_path, scan.valid_len).unwrap();
    }

    done.store(true, Ordering::SeqCst);
    reader.join().expect("the tail reader must never panic");

    // The reader actually raced the writer through real data.
    assert_eq!(next_seq - 1, 180);
    assert!(
        served.load(Ordering::SeqCst) >= 180,
        "the shipper must have served the stream at least once: {}",
        served.load(Ordering::SeqCst)
    );
}
