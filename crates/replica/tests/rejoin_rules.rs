//! The rejoin discard rule, exercised end to end in memory (no TCP):
//! a primary and a replica over temp directories, a real failover, a
//! real divergent suffix on the deposed node, and the `REJOIN`/`RJOIN`
//! handshake driven through the same `Service::respond` strings the
//! wire carries.

use attrition_core::StabilityParams;
use attrition_replica::{
    FetchResponse, PrimaryService, RejoinResponse, ReplicaConfig, ReplicaEngine,
};
use attrition_serve::checkpoint::CheckpointFormat;
use attrition_serve::recovery::Fallback;
use attrition_serve::{DurabilityConfig, Engine, Service, ShardedMonitor, SyncPolicy};
use attrition_store::WindowSpec;
use attrition_types::Date;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("attrition_rejoin_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fallback() -> Fallback {
    Fallback {
        spec: WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1),
        params: StabilityParams::PAPER,
        max_explanations: 5,
    }
}

fn primary_in(dir: &Path, checkpoint_every: u64) -> PrimaryService {
    let dcfg = DurabilityConfig {
        wal_dir: dir.to_owned(),
        sync_policy: SyncPolicy::Always,
        checkpoint_every_requests: checkpoint_every,
        checkpoint_every: None,
        keep_checkpoints: 2,
        checkpoint_format: CheckpointFormat::Binary,
        fault_plan: None,
    };
    let monitor = ShardedMonitor::new(2, fallback().spec, StabilityParams::PAPER, 5);
    let engine = Arc::new(Engine::open(monitor, None, Some(&dcfg), 1).unwrap());
    PrimaryService::open(engine, dir).unwrap()
}

fn replica_in(dir: &Path) -> ReplicaEngine {
    let rcfg = ReplicaConfig {
        n_shards: 2,
        ..ReplicaConfig::new(dir, fallback())
    };
    ReplicaEngine::open(rcfg).unwrap().0
}

fn ingest(node: &dyn Service, customer: u32, day: u32, item: u32) {
    let (_verb, resp) = node.respond(&format!("INGEST {customer} 2012-05-{day:02} {item}"));
    assert!(resp.starts_with("OK"), "{resp}");
}

/// Catch `fetcher` up from `upstream` through respond() strings,
/// returning the number of fresh records applied.
fn catch_up(fetcher: &ReplicaEngine, upstream: &dyn Service) -> u64 {
    let mut fresh = 0;
    loop {
        let (_verb, text) = upstream.respond(&fetcher.fetch_request(8).to_line());
        let resp = FetchResponse::parse(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
        let applied = fetcher.apply_response(&resp).unwrap();
        fresh += applied.fresh;
        if applied.fresh == 0 && !applied.snapshot_installed {
            return fresh;
        }
    }
}

/// Run the handshake against `upstream` and apply the discard rule.
fn handshake(node: &ReplicaEngine, upstream: &dyn Service) -> attrition_replica::RejoinOutcome {
    let req = attrition_replica::RejoinRequest {
        epoch: node.epoch(),
        durable: node.durable_seq(),
    };
    let (_verb, text) = upstream.respond(&req.to_line());
    let resp = RejoinResponse::parse(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
    node.rejoin_to(resp.epoch, resp.promotion_lsn).unwrap()
}

#[test]
fn deposed_primary_discards_its_divergent_suffix_and_reconverges() {
    let pdir = temp_dir("divergent_p");
    let rdir = temp_dir("divergent_r");
    let primary = primary_in(&pdir, 4);
    for day in 2..=9 {
        ingest(&primary, 1 + day % 3, day, 100 + day);
    }
    let replica = replica_in(&rdir);
    catch_up(&replica, &primary);
    assert_eq!(replica.applied_seq(), primary.engine().wal_synced_seq());
    let takeover = replica.applied_seq();

    // The primary keeps writing records the replica never sees — the
    // divergent suffix — then "dies" (we just stop talking to it).
    for day in 10..=14 {
        ingest(&primary, 2, day, 200 + day);
    }
    let deposed_durable = primary.engine().wal_synced_seq();
    let divergent = deposed_durable - takeover;
    assert!(divergent >= 5);
    drop(primary);

    // Failover: the replica takes over and its timeline moves on with
    // *different* records at the same sequence numbers.
    let (_verb, promoted) = replica.respond("PROMOTE");
    assert_eq!(promoted, format!("OK promoted 2 {takeover}"));
    for day in 10..=16 {
        ingest(&replica, 3, day, 300 + day);
    }

    // The deposed primary restarts as a replica over its own directory.
    let rejoiner = replica_in(&pdir);
    assert_eq!(rejoiner.epoch(), 1);
    assert_eq!(rejoiner.applied_seq(), deposed_durable);

    // Fetching from the new primary without the handshake must refuse:
    // this node has local history above the promotion LSN.
    let (_verb, text) = replica.respond(&rejoiner.fetch_request(8).to_line());
    let resp = FetchResponse::parse(&text).unwrap();
    let err = rejoiner.apply_response(&resp).unwrap_err();
    assert!(err.contains("rejoin required"), "{err}");

    // The handshake detects and discards exactly the divergent suffix.
    let outcome = handshake(&rejoiner, &replica);
    assert!(outcome.adopted && outcome.discarded);
    assert_eq!(outcome.epoch, 2);
    assert_eq!(outcome.divergent_records, divergent);
    assert_eq!(rejoiner.epoch(), 2);
    assert_eq!(rejoiner.epoch_start_lsn(), takeover);

    // After catch-up the rejoined node byte-equals the new primary at
    // the same LSN — invariant R3, directly.
    catch_up(&rejoiner, &replica);
    assert_eq!(rejoiner.applied_seq(), replica.durable_seq());
    assert_eq!(
        rejoiner.engine().monitor().snapshot(),
        replica.engine().monitor().snapshot()
    );
    assert_eq!(
        rejoiner.engine().monitor().snapshot_bytes(),
        replica.engine().monitor().snapshot_bytes()
    );

    // Idempotent: a second handshake at the same epoch is a no-op.
    let again = handshake(&rejoiner, &replica);
    assert!(!again.adopted && !again.discarded);

    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn clean_suffix_rejoins_in_place_without_discarding() {
    let pdir = temp_dir("clean_p");
    let rdir = temp_dir("clean_r");
    let primary = primary_in(&pdir, 0);
    for day in 2..=7 {
        ingest(&primary, 1, day, 100 + day);
    }
    let replica = replica_in(&rdir);
    catch_up(&replica, &primary);
    let takeover = replica.applied_seq();
    drop(primary);
    let (_verb, promoted) = replica.respond("PROMOTE");
    assert!(promoted.starts_with("OK promoted 2 "), "{promoted}");
    for day in 8..=10 {
        ingest(&replica, 2, day, 200 + day);
    }

    // The deposed primary's durable log ends exactly at the promotion
    // LSN: nothing diverged, so local state survives the rejoin and
    // fetching resumes from where it stood.
    let rejoiner = replica_in(&pdir);
    assert_eq!(rejoiner.applied_seq(), takeover);
    let outcome = handshake(&rejoiner, &replica);
    assert!(outcome.adopted);
    assert!(!outcome.discarded, "no divergence: nothing to discard");
    assert_eq!(outcome.divergent_records, 0);
    catch_up(&rejoiner, &replica);
    assert_eq!(
        rejoiner.engine().monitor().snapshot(),
        replica.engine().monitor().snapshot()
    );
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn a_multi_epoch_jump_discards_everything_even_without_local_divergence() {
    let dir = temp_dir("chain");
    let node = replica_in(&dir);
    // Seed some local state under epoch 1 via a shipped batch from a
    // fake epoch-1 upstream: simplest is to promote a sibling... here
    // we only need *applied > 0*, so ship one record by hand.
    let record = attrition_serve::wal::WalRecord {
        seq: 1,
        op: "INGEST 1 2012-05-02 10".to_owned(),
    };
    let batch = FetchResponse::Batch {
        epoch: 1,
        durable: 1,
        records: vec![record],
    };
    assert_eq!(node.apply_response(&batch).unwrap().fresh, 1);

    // The upstream reports epoch 3 whose promotion LSN (10) is above
    // our applied LSN (1) — under a single promotion that would prove
    // no divergence, but across a *chain* of promotions the responder
    // only knows its latest takeover point: older divergence could
    // hide below it. The only safe floor is 0: discard everything.
    let outcome = node.rejoin_to(3, 10).unwrap();
    assert!(outcome.adopted && outcome.discarded);
    assert_eq!(outcome.divergent_records, 1);
    assert_eq!(node.applied_seq(), 0);
    assert_eq!(node.epoch(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn promoted_nodes_refuse_to_rejoin_and_empty_nodes_adopt_via_the_fence() {
    let dir = temp_dir("refuse");
    let node = replica_in(&dir);

    // An empty node adopts a newer epoch straight through the fence —
    // that is the ordinary fresh-replica bootstrap.
    let batch = FetchResponse::Batch {
        epoch: 4,
        durable: 0,
        records: vec![],
    };
    node.apply_response(&batch).unwrap();
    assert_eq!(node.epoch(), 4);

    let (_verb, promoted) = node.respond("PROMOTE");
    assert!(promoted.starts_with("OK promoted 5 "), "{promoted}");
    let err = node.rejoin_to(9, 0).unwrap_err();
    assert!(err.to_string().contains("promoted"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
