//! The TCP transport ships the same bytes the simulator ships: every
//! `REPL` response read off a real socket must equal, byte for byte,
//! the string `PrimaryService::respond` returns in memory — which is
//! exactly what `attrition-sim` puts on its in-memory network. The
//! replication sweep's guarantees transfer to the wire only because of
//! this equality.

use attrition_core::StabilityParams;
use attrition_replica::{FetchRequest, FetchResponse, PrimaryService};
use attrition_serve::checkpoint::CheckpointFormat;
use attrition_serve::{
    DurabilityConfig, Engine, ServerConfig, Service, ShardedMonitor, SyncPolicy,
};
use attrition_store::WindowSpec;
use attrition_types::Date;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "attrition_repl_transport_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Send one line and read the full framed response (header plus its
/// self-announced continuation lines), newline-joined, as the raw text.
fn roundtrip(reader: &mut BufReader<TcpStream>, line: &str) -> String {
    reader
        .get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .unwrap();
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    let header = header.trim_end_matches(['\n', '\r']).to_owned();
    let extra = FetchResponse::extra_lines(&header).unwrap_or(0);
    let mut text = header;
    for _ in 0..extra {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        text.push('\n');
        text.push_str(line.trim_end_matches(['\n', '\r']));
    }
    text
}

#[test]
fn tcp_responses_are_bit_identical_to_in_memory_responses() {
    let dir = temp_dir("bitident");
    let origin = Date::from_ymd(2012, 5, 1).unwrap();
    let spec = WindowSpec::months(origin, 1);
    let params = StabilityParams::PAPER;
    let dcfg = DurabilityConfig {
        wal_dir: dir.clone(),
        sync_policy: SyncPolicy::Always,
        // A tight count trigger so checkpoints truncate the WAL and a
        // from-zero fetch must answer with a bootstrap snapshot.
        checkpoint_every_requests: 8,
        checkpoint_every: None,
        keep_checkpoints: 2,
        checkpoint_format: CheckpointFormat::Binary,
        fault_plan: None,
    };
    let monitor = ShardedMonitor::new(4, spec, params, 5);
    let engine = Arc::new(Engine::open(monitor, None, Some(&dcfg), 1).unwrap());
    let primary = Arc::new(PrimaryService::open(Arc::clone(&engine), &dir).unwrap());
    for day in 1..=20 {
        let (_verb, resp) = primary.respond(&format!(
            "INGEST {} 2012-05-{:02} 10 {}",
            1 + day % 3,
            1 + day % 28,
            100 + day
        ));
        assert!(resp.starts_with("OK"), "{resp}");
    }

    let mut config = ServerConfig::new("127.0.0.1:0", spec, params);
    config.workers = 2;
    let handle =
        attrition_serve::start_service(config, Arc::clone(&primary) as Arc<dyn Service>).unwrap();
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);

    // From-zero (snapshot bootstrap), mid-log (record batch), caught-up
    // (empty batch), and a fenced request — each answered over TCP with
    // exactly the bytes the in-memory transport carries.
    let floor = engine.wal_synced_seq();
    assert!(floor > 16, "the log must have a durable tail: {floor}");
    let requests = [
        FetchRequest {
            epoch: 1,
            after: 0,
            max: 4,
        },
        FetchRequest {
            epoch: 1,
            after: floor - 3,
            max: 2,
        },
        FetchRequest {
            epoch: 1,
            after: floor,
            max: 8,
        },
        FetchRequest {
            epoch: 99,
            after: 0,
            max: 1,
        },
    ];
    let mut saw_snapshot = false;
    let mut saw_records = false;
    for req in &requests {
        let line = req.to_line();
        let (_verb, in_memory) = primary.respond(&line);
        let over_tcp = roundtrip(&mut reader, &line);
        assert_eq!(
            in_memory, over_tcp,
            "transport changed the bytes for {line:?}"
        );
        match FetchResponse::parse(&in_memory) {
            Ok(FetchResponse::Snapshot { .. }) => saw_snapshot = true,
            Ok(FetchResponse::Batch { records, .. }) if !records.is_empty() => saw_records = true,
            Ok(FetchResponse::Batch { .. }) => {}
            Err(_) => assert!(in_memory.starts_with("ERR fenced"), "{in_memory}"),
        }
    }
    assert!(saw_snapshot, "the from-zero fetch must ship a snapshot");
    assert!(saw_records, "the mid-log fetch must ship records");

    handle.request_shutdown();
    drop(reader);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_replication_frames_err_gracefully_on_a_surviving_connection() {
    let dir = temp_dir("corpus");
    let origin = Date::from_ymd(2012, 5, 1).unwrap();
    let spec = WindowSpec::months(origin, 1);
    let params = StabilityParams::PAPER;
    let dcfg = DurabilityConfig {
        wal_dir: dir.clone(),
        sync_policy: SyncPolicy::Always,
        checkpoint_every_requests: 1024,
        checkpoint_every: None,
        keep_checkpoints: 2,
        checkpoint_format: CheckpointFormat::Binary,
        fault_plan: None,
    };
    let monitor = ShardedMonitor::new(2, spec, params, 5);
    let engine = Arc::new(Engine::open(monitor, None, Some(&dcfg), 1).unwrap());
    let primary = Arc::new(PrimaryService::open(Arc::clone(&engine), &dir).unwrap());
    let (_verb, resp) = primary.respond("INGEST 1 2012-05-02 10 11");
    assert!(resp.starts_with("OK"), "{resp}");

    let mut config = ServerConfig::new("127.0.0.1:0", spec, params);
    config.workers = 2;
    let handle =
        attrition_serve::start_service(config, Arc::clone(&primary) as Arc<dyn Service>).unwrap();
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);

    // Every malformed or fenced frame must answer `ERR` — and the very
    // same connection must keep serving afterwards (checked by a PING
    // after each case). A parse error is a client bug, never a reason
    // to burn the replication channel.
    let corpus = [
        // REPL: non-numeric, overflowing, wrong-arity, zero-max.
        "REPL",
        "REPL 1 2",
        "REPL 1 2 3 4",
        "REPL x 0 64",
        "REPL 1 y 64",
        "REPL 1 0 z",
        "REPL 18446744073709551616 0 64",
        "REPL 1 18446744073709551616 64",
        "REPL 1 0 18446744073709551616",
        "REPL 1 0 0",
        // Stale-epoch fetch: the requester claims a future generation.
        "REPL 99 0 64",
        // REJOIN: same classes of malformation, plus a future epoch.
        "REJOIN",
        "REJOIN 1",
        "REJOIN 1 2 3",
        "REJOIN x 2",
        "REJOIN 1 18446744073709551616",
        "REJOIN 99 0",
    ];
    for line in corpus {
        let response = roundtrip(&mut reader, line);
        assert!(
            response.starts_with("ERR"),
            "expected ERR for {line:?}, got {response:?}"
        );
        let pong = roundtrip(&mut reader, "PING");
        assert_eq!(pong, "PONG", "connection died after {line:?}");
    }

    // `max` above the batch cap is clamped, not rejected: the fetch
    // succeeds and ships at most the cap.
    let response = roundtrip(&mut reader, "REPL 1 0 999999");
    match FetchResponse::parse(&response).unwrap() {
        FetchResponse::Batch { records, .. } => {
            assert!(records.len() <= attrition_replica::MAX_BATCH_RECORDS);
            assert!(!records.is_empty());
        }
        other => panic!("expected a batch, got {other:?}"),
    }

    // A well-formed handshake on the same connection still works.
    let response = roundtrip(&mut reader, "REJOIN 1 0");
    assert_eq!(response, "RJOIN 1 0");

    handle.request_shutdown();
    drop(reader);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
