//! Extended behavioral features beyond R/F/M.
//!
//! The paper restricts the Buckinx & Van den Poel (2005) methodology "to
//! predictors associated to the recency, frequency and monetary
//! variables". The original study used a broader behavioral set; this
//! module implements a representative superset so the
//! `ablation_rfm_features` experiment can measure what the restriction
//! costs:
//!
//! * the three R/F/M features (delegated to [`crate::features`]),
//! * inter-purchase time regularity (mean and coefficient of variation of
//!   per-window trip counts over the history),
//! * frequency and monetary *trend* (recent half vs earlier half of the
//!   trailing horizon) — partial defection is a downward trend before it
//!   is a low level.

use crate::features::{extract_at_window, RfmFeatures};
use attrition_store::CustomerWindows;
use attrition_types::WindowIndex;

/// R/F/M plus regularity and trend features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedFeatures {
    /// The plain R/F/M block.
    pub rfm: RfmFeatures,
    /// Mean trips per window over the full history up to `k`.
    pub mean_trips: f64,
    /// Coefficient of variation of trips per window (0 when degenerate).
    pub trips_cv: f64,
    /// Trips in the recent half of the history divided by trips in the
    /// earlier half (1 = steady; < 1 = slowing down). Capped at 4.
    pub frequency_trend: f64,
    /// Spend in the recent half divided by spend in the earlier half,
    /// capped at 4.
    pub monetary_trend: f64,
}

impl ExtendedFeatures {
    /// Feature vector in a fixed order (R, F, M, mean, cv, f-trend,
    /// m-trend).
    pub fn as_vec(&self) -> Vec<f64> {
        vec![
            self.rfm.recency_days,
            self.rfm.frequency,
            self.rfm.monetary,
            self.mean_trips,
            self.trips_cv,
            self.frequency_trend,
            self.monetary_trend,
        ]
    }

    /// Number of features.
    pub const WIDTH: usize = 7;
}

fn capped_ratio(recent: f64, earlier: f64) -> f64 {
    if earlier <= 0.0 {
        if recent > 0.0 {
            4.0
        } else {
            1.0
        }
    } else {
        (recent / earlier).min(4.0)
    }
}

/// Extract extended features at window `k` (history = windows `0..=k`).
///
/// Returns `None` when the customer's view does not reach `k`.
pub fn extract_extended(
    windows: &CustomerWindows,
    k: WindowIndex,
    horizon_windows: usize,
) -> Option<ExtendedFeatures> {
    let rfm = extract_at_window(windows, k, horizon_windows)?;
    let idx = k.index();
    let trips: Vec<f64> = windows.trips[..=idx].iter().map(|&t| t as f64).collect();
    let spend: Vec<f64> = windows.spend[..=idx]
        .iter()
        .map(|c| c.as_units_f64())
        .collect();
    let n = trips.len();
    let mean_trips = trips.iter().sum::<f64>() / n as f64;
    let var = trips
        .iter()
        .map(|t| (t - mean_trips) * (t - mean_trips))
        .sum::<f64>()
        / n as f64;
    let trips_cv = if mean_trips > 0.0 {
        var.sqrt() / mean_trips
    } else {
        0.0
    };
    let half = n / 2;
    let (early_t, recent_t) = trips.split_at(half);
    let (early_s, recent_s) = spend.split_at(half);
    let frequency_trend = capped_ratio(
        recent_t.iter().sum::<f64>() / recent_t.len().max(1) as f64,
        early_t.iter().sum::<f64>() / early_t.len().max(1) as f64,
    );
    let monetary_trend = capped_ratio(
        recent_s.iter().sum::<f64>() / recent_s.len().max(1) as f64,
        early_s.iter().sum::<f64>() / early_s.len().max(1) as f64,
    );
    Some(ExtendedFeatures {
        rfm,
        mean_trips,
        trips_cv,
        frequency_trend,
        monetary_trend,
    })
}

/// Leak-free out-of-fold scores for the extended feature set (mirror of
/// [`crate::model::out_of_fold_scores`]).
pub fn out_of_fold_scores_extended(
    features: &[ExtendedFeatures],
    labels: &[bool],
    k_folds: usize,
    seed: u64,
) -> Vec<f64> {
    use crate::logistic::LogisticRegression;
    use crate::standardize::Standardizer;
    assert_eq!(features.len(), labels.len(), "features/labels mismatch");
    let folds = crate::model::stratified_folds(labels, k_folds, seed);
    let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_vec()).collect();
    let mut scores = vec![f64::NAN; features.len()];
    for (train, test) in &folds {
        let train_rows: Vec<Vec<f64>> = train.iter().map(|&i| rows[i].clone()).collect();
        let train_labels: Vec<bool> = train.iter().map(|&i| labels[i]).collect();
        let scaler = Standardizer::fit(&train_rows);
        let scaled = scaler.transform(&train_rows);
        let mut lr = LogisticRegression::new(ExtendedFeatures::WIDTH);
        lr.fit(&scaled, &train_labels);
        for &i in test {
            let mut row = rows[i].clone();
            scaler.transform_row(&mut row);
            scores[i] = lr.predict_proba(&row);
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_store::WindowSpec;
    use attrition_types::{Basket, Cents, CustomerId, Date};

    fn windows_with(trips: &[u32], spend_units: &[i64]) -> CustomerWindows {
        let n = trips.len();
        CustomerWindows {
            customer: CustomerId::new(1),
            baskets: vec![Basket::from_raw(&[1]); n],
            trips: trips.to_vec(),
            spend: spend_units.iter().map(|&u| Cents(u * 100)).collect(),
            last_purchase: vec![Some(Date::from_ymd(2012, 5, 10).unwrap()); n],
            spec: WindowSpec::months(Date::from_ymd(2012, 5, 1).unwrap(), 1),
        }
    }

    #[test]
    fn steady_customer_trends_near_one() {
        let w = windows_with(&[4, 4, 4, 4], &[100, 100, 100, 100]);
        let f = extract_extended(&w, WindowIndex::new(3), 1).unwrap();
        assert_eq!(f.mean_trips, 4.0);
        assert_eq!(f.trips_cv, 0.0);
        assert_eq!(f.frequency_trend, 1.0);
        assert_eq!(f.monetary_trend, 1.0);
    }

    #[test]
    fn declining_customer_trends_below_one() {
        let w = windows_with(&[6, 6, 2, 0], &[200, 200, 50, 0]);
        let f = extract_extended(&w, WindowIndex::new(3), 1).unwrap();
        assert!(f.frequency_trend < 0.5, "{}", f.frequency_trend);
        assert!(f.monetary_trend < 0.5, "{}", f.monetary_trend);
        assert!(f.trips_cv > 0.5, "{}", f.trips_cv);
    }

    #[test]
    fn growing_customer_capped() {
        let w = windows_with(&[0, 0, 8, 8], &[0, 0, 100, 100]);
        let f = extract_extended(&w, WindowIndex::new(3), 1).unwrap();
        assert_eq!(f.frequency_trend, 4.0);
        assert_eq!(f.monetary_trend, 4.0);
    }

    #[test]
    fn all_zero_history_degenerate() {
        let mut w = windows_with(&[0, 0], &[0, 0]);
        w.last_purchase = vec![None; 2];
        let f = extract_extended(&w, WindowIndex::new(1), 1).unwrap();
        assert_eq!(f.mean_trips, 0.0);
        assert_eq!(f.trips_cv, 0.0);
        assert_eq!(f.frequency_trend, 1.0);
    }

    #[test]
    fn out_of_horizon_none() {
        let w = windows_with(&[1], &[1]);
        assert!(extract_extended(&w, WindowIndex::new(1), 1).is_none());
    }

    #[test]
    fn as_vec_width() {
        let w = windows_with(&[1, 2], &[1, 2]);
        let f = extract_extended(&w, WindowIndex::new(1), 1).unwrap();
        assert_eq!(f.as_vec().len(), ExtendedFeatures::WIDTH);
    }

    #[test]
    fn oof_extended_separates_synthetic_cohorts() {
        // Build loyal (steady) vs defector (declining) feature rows.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut rng = attrition_util::Rng::seed_from_u64(4);
        for i in 0..120 {
            let defector = i % 2 == 0;
            let base = rng.f64_in(3.0, 6.0);
            let trips: Vec<u32> = (0..8)
                .map(|w| {
                    let decay = if defector && w >= 4 { 0.4 } else { 1.0 };
                    (base * decay + rng.normal_with(0.0, 0.4)).max(0.0) as u32
                })
                .collect();
            let spend: Vec<i64> = trips.iter().map(|&t| t as i64 * 30).collect();
            let w = windows_with(&trips, &spend);
            features.push(extract_extended(&w, WindowIndex::new(7), 2).unwrap());
            labels.push(defector);
        }
        let scores = out_of_fold_scores_extended(&features, &labels, 5, 9);
        assert!(scores.iter().all(|s| s.is_finite()));
        let mean_pos: f64 = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l)
            .map(|(s, _)| *s)
            .sum::<f64>()
            / 60.0;
        let mean_neg: f64 = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| !l)
            .map(|(s, _)| *s)
            .sum::<f64>()
            / 60.0;
        assert!(mean_pos > mean_neg + 0.3, "pos {mean_pos} neg {mean_neg}");
    }
}
