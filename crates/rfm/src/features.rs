//! Recency / frequency / monetary feature extraction.
//!
//! At evaluation window `k` (knowing everything up to the end of `k`):
//!
//! * **recency** — days from the customer's last shopping trip to the end
//!   of window `k`; customers who never purchased get the full span since
//!   the grid origin (maximally stale);
//! * **frequency** — number of trips within the trailing
//!   `horizon_windows` windows ending at `k`;
//! * **monetary** — spend over the same trailing horizon, in currency
//!   units.

use attrition_store::CustomerWindows;
use attrition_types::WindowIndex;

/// The three RFM predictors for one customer at one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfmFeatures {
    /// Days since the last trip at the end of the window.
    pub recency_days: f64,
    /// Trips within the trailing horizon.
    pub frequency: f64,
    /// Spend within the trailing horizon (currency units).
    pub monetary: f64,
}

impl RfmFeatures {
    /// As a fixed-size array (the order the regression uses).
    #[inline]
    pub fn as_array(&self) -> [f64; 3] {
        [self.recency_days, self.frequency, self.monetary]
    }
}

/// Extract the RFM features of one customer at window `k`, looking back
/// over `horizon_windows` windows (including `k` itself).
///
/// Returns `None` when the customer's windowed view does not extend to
/// `k` (possible under per-customer alignment).
pub fn extract_at_window(
    windows: &CustomerWindows,
    k: WindowIndex,
    horizon_windows: usize,
) -> Option<RfmFeatures> {
    assert!(horizon_windows >= 1, "horizon must cover at least window k");
    let idx = k.index();
    if idx >= windows.num_windows() {
        return None;
    }
    let window_end = windows.spec.window_end(k.raw()); // exclusive
    let last_day_in_window = window_end + -1;
    let recency_days = match windows.last_purchase[idx] {
        Some(last) => (last_day_in_window - last).max(0) as f64,
        None => (last_day_in_window - windows.spec.origin).max(0) as f64,
    };
    let lo = idx.saturating_sub(horizon_windows - 1);
    let frequency: u32 = windows.trips[lo..=idx].iter().sum();
    let monetary: f64 = windows.spend[lo..=idx]
        .iter()
        .map(|c| c.as_units_f64())
        .sum();
    Some(RfmFeatures {
        recency_days,
        frequency: frequency as f64,
        monetary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_store::WindowSpec;
    use attrition_types::{Basket, Cents, CustomerId, Date};

    fn d(y: i32, m: u32, day: u32) -> Date {
        Date::from_ymd(y, m, day).unwrap()
    }

    /// Three monthly windows: trips (2, 0, 1), spend (10.00, 0, 4.00),
    /// last purchases (May 20, May 20, Jul 4).
    fn sample() -> CustomerWindows {
        CustomerWindows {
            customer: CustomerId::new(1),
            baskets: vec![
                Basket::from_raw(&[1, 2]),
                Basket::empty(),
                Basket::from_raw(&[1]),
            ],
            trips: vec![2, 0, 1],
            spend: vec![Cents(1000), Cents::ZERO, Cents(400)],
            last_purchase: vec![
                Some(d(2012, 5, 20)),
                Some(d(2012, 5, 20)),
                Some(d(2012, 7, 4)),
            ],
            spec: WindowSpec::months(d(2012, 5, 1), 1),
        }
    }

    #[test]
    fn recency_measures_to_window_end() {
        let w = sample();
        // Window 0 ends May 31; last trip May 20 → 11 days.
        let f0 = extract_at_window(&w, WindowIndex::new(0), 1).unwrap();
        assert_eq!(f0.recency_days, 11.0);
        // Window 1 ends Jun 30; last trip still May 20 → 41 days.
        let f1 = extract_at_window(&w, WindowIndex::new(1), 1).unwrap();
        assert_eq!(f1.recency_days, 41.0);
        // Window 2 ends Jul 31; last trip Jul 4 → 27 days.
        let f2 = extract_at_window(&w, WindowIndex::new(2), 1).unwrap();
        assert_eq!(f2.recency_days, 27.0);
    }

    #[test]
    fn frequency_and_monetary_over_horizon() {
        let w = sample();
        let f = extract_at_window(&w, WindowIndex::new(2), 1).unwrap();
        assert_eq!(f.frequency, 1.0);
        assert!((f.monetary - 4.0).abs() < 1e-12);
        let f3 = extract_at_window(&w, WindowIndex::new(2), 3).unwrap();
        assert_eq!(f3.frequency, 3.0);
        assert!((f3.monetary - 14.0).abs() < 1e-12);
        // Horizon longer than the history clamps at window 0.
        let f9 = extract_at_window(&w, WindowIndex::new(2), 9).unwrap();
        assert_eq!(f9.frequency, 3.0);
    }

    #[test]
    fn never_purchased_customer_max_recency() {
        let w = CustomerWindows {
            customer: CustomerId::new(2),
            baskets: vec![Basket::empty(), Basket::empty()],
            trips: vec![0, 0],
            spend: vec![Cents::ZERO; 2],
            last_purchase: vec![None, None],
            spec: WindowSpec::months(d(2012, 5, 1), 1),
        };
        let f = extract_at_window(&w, WindowIndex::new(1), 2).unwrap();
        // Jun 30 − May 1 = 60 days.
        assert_eq!(f.recency_days, 60.0);
        assert_eq!(f.frequency, 0.0);
        assert_eq!(f.monetary, 0.0);
    }

    #[test]
    fn out_of_horizon_window_none() {
        let w = sample();
        assert!(extract_at_window(&w, WindowIndex::new(3), 1).is_none());
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        extract_at_window(&sample(), WindowIndex::new(0), 0);
    }

    #[test]
    fn as_array_order() {
        let f = RfmFeatures {
            recency_days: 1.0,
            frequency: 2.0,
            monetary: 3.0,
        };
        assert_eq!(f.as_array(), [1.0, 2.0, 3.0]);
    }
}
