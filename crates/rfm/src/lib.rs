//! # attrition-rfm
//!
//! The comparison baseline of the paper's Figure 1: "the standard RFM
//! model, that uses recency, frequency and monetary variables to identify
//! defecting customers. This RFM model is built using a logistic
//! regression on these three types of variables" (methodology of Buckinx
//! & Van den Poel 2005, restricted to the R/F/M predictors).
//!
//! * [`features`] — per-customer, per-window recency / frequency /
//!   monetary extraction from a windowed database.
//! * [`standardize`] — z-score feature scaling.
//! * [`logistic`] — from-scratch logistic regression, fit by iteratively
//!   reweighted least squares (IRLS/Newton) with L2 regularization; no ML
//!   dependency exists in the allowed crate set, and for 3 predictors
//!   IRLS converges in a handful of iterations with no learning-rate
//!   tuning.
//! * [`model`] — the assembled baseline: extract → standardize → fit →
//!   score, mirroring the stability model's per-window evaluation.

pub mod extended;
pub mod features;
pub mod logistic;
pub mod model;
pub mod standardize;

pub use extended::{extract_extended, out_of_fold_scores_extended, ExtendedFeatures};
pub use features::{extract_at_window, RfmFeatures};
pub use logistic::{FitReport, LogisticRegression};
pub use model::{out_of_fold_scores, RfmModel};
pub use standardize::Standardizer;
