//! Logistic regression, from scratch.
//!
//! Fit by iteratively reweighted least squares (IRLS / Newton–Raphson)
//! with L2 regularization on the weights (not the intercept). With three
//! standardized predictors the Hessian is 4×4; each Newton step solves it
//! by Gaussian elimination with partial pivoting. Converges in a handful
//! of iterations with no learning-rate tuning, and the ridge term keeps
//! the system nonsingular even under perfect separation.

/// Convergence report of a fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Whether the step-size tolerance was reached within `max_iter`.
    pub converged: bool,
    /// Newton iterations performed.
    pub iterations: usize,
    /// Final penalized negative log-likelihood (mean per observation).
    pub loss: f64,
}

/// A fitted (or to-be-fitted) logistic regression.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    /// `weights[0]` is the intercept; `weights[1..]` the coefficients.
    pub weights: Vec<f64>,
    /// L2 penalty strength on the non-intercept weights.
    pub l2: f64,
    /// Newton iteration cap.
    pub max_iter: usize,
    /// Convergence tolerance on the max absolute weight update.
    pub tol: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Untrained model for `n_features` predictors with default
    /// regularization (`l2 = 1e-4`).
    pub fn new(n_features: usize) -> LogisticRegression {
        LogisticRegression {
            weights: vec![0.0; n_features + 1],
            l2: 1e-4,
            max_iter: 50,
            tol: 1e-8,
        }
    }

    /// Override the ridge strength.
    pub fn with_l2(mut self, l2: f64) -> LogisticRegression {
        assert!(l2 >= 0.0, "l2 must be non-negative");
        self.l2 = l2;
        self
    }

    /// Number of predictors (excluding the intercept).
    pub fn n_features(&self) -> usize {
        self.weights.len() - 1
    }

    /// Linear score `w·x + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features(), "feature width mismatch");
        self.weights[0]
            + self.weights[1..]
                .iter()
                .zip(x)
                .map(|(w, v)| w * v)
                .sum::<f64>()
    }

    /// `P(y = 1 | x)`.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision(x))
    }

    /// Fit on rows `x` (each of width `n_features`) with binary labels.
    ///
    /// Panics on empty input or width mismatches; returns the
    /// convergence report. Weights are reset before fitting.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) -> FitReport {
        assert!(!x.is_empty(), "cannot fit on an empty set");
        assert_eq!(x.len(), y.len(), "rows/labels length mismatch");
        let d = self.n_features();
        for row in x {
            assert_eq!(row.len(), d, "feature width mismatch");
        }
        let p = d + 1; // parameters including intercept
        self.weights = vec![0.0; p];
        // Effective ridge: never exactly zero, so the Newton system stays
        // solvable under perfect separation.
        let ridge = self.l2.max(1e-10);

        let mut iterations = 0;
        let mut converged = false;
        let mut hessian = vec![0.0f64; p * p];
        let mut gradient = vec![0.0f64; p];
        while iterations < self.max_iter {
            iterations += 1;
            hessian.iter_mut().for_each(|v| *v = 0.0);
            gradient.iter_mut().for_each(|v| *v = 0.0);
            for (row, &label) in x.iter().zip(y) {
                let prob = sigmoid(self.decision(row));
                let target = if label { 1.0 } else { 0.0 };
                let resid = target - prob;
                let weight = (prob * (1.0 - prob)).max(1e-10);
                // Augmented row: (1, x_1, …, x_d).
                let xi = |j: usize| if j == 0 { 1.0 } else { row[j - 1] };
                for j in 0..p {
                    gradient[j] += resid * xi(j);
                    for l in j..p {
                        hessian[j * p + l] += weight * xi(j) * xi(l);
                    }
                }
            }
            // Mirror the upper triangle, add the ridge (skip intercept),
            // and include the penalty gradient −λw.
            for j in 0..p {
                for l in 0..j {
                    hessian[j * p + l] = hessian[l * p + j];
                }
            }
            for j in 1..p {
                hessian[j * p + j] += ridge;
                gradient[j] -= ridge * self.weights[j];
            }
            let Some(step) = solve_dense(&mut hessian.clone(), &gradient) else {
                break; // singular despite ridge: stop with current weights
            };
            let mut max_step = 0.0f64;
            for (w, s) in self.weights.iter_mut().zip(&step) {
                *w += s;
                max_step = max_step.max(s.abs());
            }
            if max_step < self.tol {
                converged = true;
                break;
            }
        }
        FitReport {
            converged,
            iterations,
            loss: self.mean_loss(x, y),
        }
    }

    /// Mean penalized negative log-likelihood on a dataset.
    pub fn mean_loss(&self, x: &[Vec<f64>], y: &[bool]) -> f64 {
        let n = x.len() as f64;
        let mut loss = 0.0;
        for (row, &label) in x.iter().zip(y) {
            let p = self.predict_proba(row).clamp(1e-12, 1.0 - 1e-12);
            loss -= if label { p.ln() } else { (1.0 - p).ln() };
        }
        let penalty: f64 = self.weights[1..].iter().map(|w| w * w).sum::<f64>() * self.l2 / 2.0;
        (loss + penalty) / n
    }
}

/// Solve `A x = b` for small dense `A` (row-major, overwritten) by
/// Gaussian elimination with partial pivoting. `None` if singular.
fn solve_dense(a: &mut [f64], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert_eq!(a.len(), n * n);
    let mut x = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..n {
                a.swap(col * n + j, pivot * n + j);
            }
            x.swap(col, pivot);
        }
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row * n + col] / a[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            x[row] -= factor * x[col];
        }
    }
    // Back-substitute.
    for col in (0..n).rev() {
        for j in col + 1..n {
            let v = x[j];
            x[col] -= a[col * n + j] * v;
        }
        x[col] /= a[col * n + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attrition_util::Rng;

    #[test]
    fn sigmoid_properties() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
        // No overflow at extremes.
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert_eq!(sigmoid(1000.0), 1.0);
    }

    #[test]
    fn solve_dense_known_system() {
        // [2 1; 1 3] x = [5; 10] → x = (1, 3)
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let x = solve_dense(&mut a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_needs_pivoting() {
        // Leading zero forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(&mut a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_singular_none() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(&mut a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn fits_1d_separation() {
        // y = 1 iff x > 0 with a margin: weights should point positive.
        let x: Vec<Vec<f64>> = vec![
            vec![-2.0],
            vec![-1.5],
            vec![-1.0],
            vec![1.0],
            vec![1.5],
            vec![2.0],
        ];
        let y = vec![false, false, false, true, true, true];
        let mut lr = LogisticRegression::new(1).with_l2(0.01);
        let report = lr.fit(&x, &y);
        assert!(report.converged, "did not converge: {report:?}");
        assert!(lr.weights[1] > 0.5, "slope {}", lr.weights[1]);
        assert!(lr.predict_proba(&[2.0]) > 0.9);
        assert!(lr.predict_proba(&[-2.0]) < 0.1);
        assert!((lr.predict_proba(&[0.0]) - 0.5).abs() < 0.1);
    }

    #[test]
    fn recovers_known_coefficients() {
        // Simulate from a known model and check recovery.
        let mut rng = Rng::seed_from_u64(5);
        let (w0, w1, w2) = (-0.5, 1.5, -2.0);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..20_000 {
            let a = rng.normal();
            let b = rng.normal();
            let p = sigmoid(w0 + w1 * a + w2 * b);
            x.push(vec![a, b]);
            y.push(rng.bernoulli(p));
        }
        let mut lr = LogisticRegression::new(2).with_l2(1e-6);
        let report = lr.fit(&x, &y);
        assert!(report.converged);
        assert!((lr.weights[0] - w0).abs() < 0.1, "b {}", lr.weights[0]);
        assert!((lr.weights[1] - w1).abs() < 0.1, "w1 {}", lr.weights[1]);
        assert!((lr.weights[2] - w2).abs() < 0.1, "w2 {}", lr.weights[2]);
    }

    #[test]
    fn perfect_separation_stays_finite() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 - 4.5]).collect();
        let y: Vec<bool> = (0..10).map(|i| i >= 5).collect();
        let mut lr = LogisticRegression::new(1).with_l2(0.1);
        lr.fit(&x, &y);
        assert!(lr.weights.iter().all(|w| w.is_finite()));
        assert!(lr.predict_proba(&[5.0]) > 0.8);
    }

    #[test]
    fn balanced_noise_gives_half_probability() {
        let mut rng = Rng::seed_from_u64(8);
        let x: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.normal()]).collect();
        let y: Vec<bool> = (0..2000).map(|_| rng.bernoulli(0.5)).collect();
        let mut lr = LogisticRegression::new(1);
        lr.fit(&x, &y);
        let p = lr.predict_proba(&[0.0]);
        assert!((p - 0.5).abs() < 0.05, "p {p}");
    }

    #[test]
    fn intercept_matches_base_rate() {
        // No signal in x, 80% positive rate: P(y|x) ≈ 0.8 everywhere.
        let x: Vec<Vec<f64>> = (0..1000).map(|i| vec![(i % 7) as f64]).collect();
        let y: Vec<bool> = (0..1000).map(|i| i % 5 != 0).collect();
        let mut lr = LogisticRegression::new(1);
        lr.fit(&x, &y);
        let p = lr.predict_proba(&[3.0]);
        assert!((p - 0.8).abs() < 0.05, "p {p}");
    }

    #[test]
    fn loss_decreases_from_null() {
        let x: Vec<Vec<f64>> = vec![vec![-1.0], vec![1.0], vec![-2.0], vec![2.0]];
        let y = vec![false, true, false, true];
        let null = LogisticRegression::new(1);
        let null_loss = null.mean_loss(&x, &y);
        let mut lr = LogisticRegression::new(1);
        let report = lr.fit(&x, &y);
        assert!(
            report.loss < null_loss,
            "fit loss {} vs null {null_loss}",
            report.loss
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        LogisticRegression::new(1).fit(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn label_mismatch_panics() {
        LogisticRegression::new(1).fit(&[vec![1.0]], &[true, false]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn decision_width_mismatch_panics() {
        LogisticRegression::new(2).decision(&[1.0]);
    }
}
