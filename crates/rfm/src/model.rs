//! The assembled RFM baseline.
//!
//! Mirrors the paper's per-window evaluation: at each window `k`, extract
//! RFM features from every customer's history up to the end of `k`,
//! standardize, fit a logistic regression against the cohort labels, and
//! score. [`out_of_fold_scores`] produces leak-free scores via k-fold
//! cross-fitting (train on k−1 folds, score the held-out fold), which is
//! what the Figure 1 experiment feeds to the AUROC.

use crate::features::{extract_at_window, RfmFeatures};
use crate::logistic::{FitReport, LogisticRegression};
use crate::standardize::Standardizer;
use attrition_store::WindowedDatabase;
use attrition_types::{CustomerId, WindowIndex};

/// RFM feature extraction + scaling + logistic regression.
#[derive(Debug, Clone)]
pub struct RfmModel {
    /// Trailing windows used for frequency/monetary accumulation.
    pub horizon_windows: usize,
    standardizer: Option<Standardizer>,
    regression: LogisticRegression,
}

impl RfmModel {
    /// New untrained model with the given trailing horizon.
    pub fn new(horizon_windows: usize) -> RfmModel {
        assert!(horizon_windows >= 1, "horizon must be at least 1 window");
        RfmModel {
            horizon_windows,
            standardizer: None,
            regression: LogisticRegression::new(3),
        }
    }

    /// Extract `(customer, features)` pairs at window `k` for every
    /// customer whose horizon reaches `k`.
    pub fn features_at(
        &self,
        db: &WindowedDatabase,
        k: WindowIndex,
    ) -> Vec<(CustomerId, RfmFeatures)> {
        let _timer = attrition_obs::ScopedTimer::new("rfm.features_ms");
        db.customers()
            .iter()
            .filter_map(|w| extract_at_window(w, k, self.horizon_windows).map(|f| (w.customer, f)))
            .collect()
    }

    /// Fit on features/labels (standardizer fit on the same set).
    pub fn fit(&mut self, features: &[RfmFeatures], labels: &[bool]) -> FitReport {
        let _timer = attrition_obs::ScopedTimer::new("rfm.fit_ms");
        assert_eq!(features.len(), labels.len(), "features/labels mismatch");
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.as_array().to_vec()).collect();
        let scaler = Standardizer::fit(&rows);
        let scaled = scaler.transform(&rows);
        self.standardizer = Some(scaler);
        self.regression.fit(&scaled, labels)
    }

    /// `P(defector)` for one feature vector. Panics if not fitted.
    pub fn score(&self, features: &RfmFeatures) -> f64 {
        let scaler = self
            .standardizer
            .as_ref()
            .expect("RfmModel::score called before fit");
        let mut row = features.as_array();
        scaler.transform_row(&mut row);
        self.regression.predict_proba(&row)
    }

    /// Scores for many feature vectors.
    pub fn scores(&self, features: &[RfmFeatures]) -> Vec<f64> {
        features.iter().map(|f| self.score(f)).collect()
    }

    /// Fitted coefficients `(intercept, recency, frequency, monetary)` on
    /// the standardized scale. Panics if not fitted.
    pub fn coefficients(&self) -> [f64; 4] {
        assert!(
            self.standardizer.is_some(),
            "RfmModel::coefficients called before fit"
        );
        [
            self.regression.weights[0],
            self.regression.weights[1],
            self.regression.weights[2],
            self.regression.weights[3],
        ]
    }

    /// Serialize the fitted model (scaler + coefficients) to a compact
    /// CSV checkpoint. Panics if not fitted.
    pub fn save(&self) -> String {
        let scaler = self
            .standardizer
            .as_ref()
            .expect("RfmModel::save called before fit");
        use attrition_util::csv::CsvWriter;
        let mut w = CsvWriter::new();
        w.record(&["#rfm_model", &self.horizon_windows.to_string()]);
        let fmt = |xs: &[f64]| -> Vec<String> { xs.iter().map(|v| format!("{v:e}")).collect() };
        w.record_owned(&{
            let mut row = vec!["means".to_owned()];
            row.extend(fmt(&scaler.means));
            row
        });
        w.record_owned(&{
            let mut row = vec!["stds".to_owned()];
            row.extend(fmt(&scaler.stds));
            row
        });
        w.record_owned(&{
            let mut row = vec!["weights".to_owned()];
            row.extend(fmt(&self.regression.weights));
            row
        });
        w.finish()
    }

    /// Restore a model saved with [`save`](RfmModel::save). The restored
    /// model scores identically (exact float round-trip via scientific
    /// notation).
    pub fn load(text: &str) -> Result<RfmModel, String> {
        use attrition_util::csv::parse_document;
        let rows: Vec<Vec<String>> = parse_document(text)
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed checkpoint")?;
        if rows.len() != 4 || rows[0].first().map(String::as_str) != Some("#rfm_model") {
            return Err("not an RFM model checkpoint".into());
        }
        let horizon: usize = rows[0]
            .get(1)
            .and_then(|v| v.parse().ok())
            .ok_or("bad horizon")?;
        let parse_row = |row: &[String], tag: &str| -> Result<Vec<f64>, String> {
            if row.first().map(String::as_str) != Some(tag) {
                return Err(format!("expected {tag} row"));
            }
            row[1..]
                .iter()
                .map(|v| v.parse().map_err(|_| format!("bad float in {tag}")))
                .collect()
        };
        let means = parse_row(&rows[1], "means")?;
        let stds = parse_row(&rows[2], "stds")?;
        let weights = parse_row(&rows[3], "weights")?;
        if means.len() != 3 || stds.len() != 3 || weights.len() != 4 {
            return Err("wrong checkpoint dimensions".into());
        }
        let mut model = RfmModel::new(horizon);
        model.standardizer = Some(Standardizer { means, stds });
        model.regression.weights = weights;
        Ok(model)
    }
}

/// Leak-free per-observation scores by k-fold cross-fitting: for each
/// fold, a fresh [`RfmModel`] is trained on the other folds and scores
/// the held-out observations. Returns one score per input index.
pub fn out_of_fold_scores(
    features: &[RfmFeatures],
    labels: &[bool],
    horizon_windows: usize,
    k_folds: usize,
    seed: u64,
) -> Vec<f64> {
    assert_eq!(features.len(), labels.len(), "features/labels mismatch");
    let folds = stratified_folds(labels, k_folds, seed);
    let mut scores = vec![f64::NAN; features.len()];
    for fold in &folds {
        let train_x: Vec<RfmFeatures> = fold.0.iter().map(|&i| features[i]).collect();
        let train_y: Vec<bool> = fold.0.iter().map(|&i| labels[i]).collect();
        let mut model = RfmModel::new(horizon_windows);
        model.fit(&train_x, &train_y);
        for &i in &fold.1 {
            scores[i] = model.score(&features[i]);
        }
    }
    scores
}

/// Stratified folds as `(train, test)` index lists.
///
/// Local reimplementation (rather than depending on `attrition-eval`) to
/// keep the crate DAG acyclic: eval is a leaf, and the bench crate
/// cross-checks both implementations agree.
pub(crate) fn stratified_folds(
    labels: &[bool],
    k: usize,
    seed: u64,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut rng = attrition_util::Rng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    assert!(
        pos.len() >= k && neg.len() >= k,
        "each class needs at least k members"
    );
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (n, &i) in pos.iter().chain(neg.iter()).enumerate() {
        groups[n % k].push(i);
    }
    (0..k)
        .map(|t| {
            let mut train = Vec::new();
            for (g, group) in groups.iter().enumerate() {
                if g != t {
                    train.extend_from_slice(group);
                }
            }
            (train, groups[t].clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(recency: f64, freq: f64, money: f64) -> RfmFeatures {
        RfmFeatures {
            recency_days: recency,
            frequency: freq,
            monetary: money,
        }
    }

    /// Loyal: fresh, frequent, big spender. Defector: stale, rare, small.
    fn synthetic_cohorts(n_per: usize) -> (Vec<RfmFeatures>, Vec<bool>) {
        let mut rng = attrition_util::Rng::seed_from_u64(3);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n_per {
            features.push(feats(
                rng.f64_in(0.0, 10.0),
                rng.f64_in(6.0, 12.0),
                rng.f64_in(150.0, 400.0),
            ));
            labels.push(false);
            features.push(feats(
                rng.f64_in(20.0, 60.0),
                rng.f64_in(0.0, 4.0),
                rng.f64_in(0.0, 120.0),
            ));
            labels.push(true);
        }
        (features, labels)
    }

    #[test]
    fn separates_obvious_cohorts() {
        let (features, labels) = synthetic_cohorts(100);
        let mut model = RfmModel::new(1);
        let report = model.fit(&features, &labels);
        assert!(report.converged);
        // Defectors score high, loyals low.
        let d = model.score(&feats(45.0, 1.0, 30.0));
        let l = model.score(&feats(3.0, 9.0, 300.0));
        assert!(d > 0.9, "defector score {d}");
        assert!(l < 0.1, "loyal score {l}");
    }

    #[test]
    fn coefficient_signs_match_intuition() {
        let (features, labels) = synthetic_cohorts(200);
        let mut model = RfmModel::new(1);
        model.fit(&features, &labels);
        let [_, recency, frequency, monetary] = model.coefficients();
        assert!(recency > 0.0, "staleness should predict defection");
        assert!(frequency < 0.0, "frequency should predict loyalty");
        assert!(monetary < 0.0, "spend should predict loyalty");
    }

    #[test]
    fn out_of_fold_scores_cover_everyone() {
        let (features, labels) = synthetic_cohorts(50);
        let scores = out_of_fold_scores(&features, &labels, 1, 5, 7);
        assert_eq!(scores.len(), features.len());
        assert!(scores.iter().all(|s| s.is_finite()));
        // Ranking quality: defectors above loyals on average.
        let mean_pos: f64 = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l)
            .map(|(s, _)| *s)
            .sum::<f64>()
            / 50.0;
        let mean_neg: f64 = scores
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| !l)
            .map(|(s, _)| *s)
            .sum::<f64>()
            / 50.0;
        assert!(mean_pos > mean_neg + 0.5, "pos {mean_pos} neg {mean_neg}");
    }

    #[test]
    fn oof_deterministic() {
        let (features, labels) = synthetic_cohorts(30);
        let a = out_of_fold_scores(&features, &labels, 1, 5, 1);
        let b = out_of_fold_scores(&features, &labels, 1, 5, 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        RfmModel::new(1).score(&feats(1.0, 1.0, 1.0));
    }

    #[test]
    fn save_load_roundtrip_scores_identically() {
        let (features, labels) = synthetic_cohorts(80);
        let mut model = RfmModel::new(3);
        model.fit(&features, &labels);
        let checkpoint = model.save();
        let restored = RfmModel::load(&checkpoint).expect("loads");
        assert_eq!(restored.horizon_windows, 3);
        for f in features.iter().take(20) {
            assert_eq!(
                model.score(f),
                restored.score(f),
                "score diverged for {f:?}"
            );
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(RfmModel::load("").is_err());
        assert!(RfmModel::load("#rfm_model,1\n").is_err());
        assert!(RfmModel::load("#other,1\nmeans,1,2,3\nstds,1,2,3\nweights,1,2,3,4\n").is_err());
        assert!(RfmModel::load("#rfm_model,1\nmeans,1,2\nstds,1,2,3\nweights,1,2,3,4\n").is_err());
        assert!(
            RfmModel::load("#rfm_model,1\nmeans,1,2,x\nstds,1,2,3\nweights,1,2,3,4\n").is_err()
        );
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn save_before_fit_panics() {
        RfmModel::new(1).save();
    }

    #[test]
    #[should_panic(expected = "at least 1 window")]
    fn zero_horizon_panics() {
        RfmModel::new(0);
    }

    #[test]
    fn features_at_windowed_db() {
        use attrition_store::{ReceiptStoreBuilder, WindowAlignment, WindowSpec, WindowedDatabase};
        use attrition_types::{Basket, Cents, Date, Receipt};
        let d0 = Date::from_ymd(2012, 5, 1).unwrap();
        let mut b = ReceiptStoreBuilder::new();
        for c in 0..4u64 {
            b.push(Receipt::new(
                CustomerId::new(c),
                d0 + 3,
                Basket::from_raw(&[1]),
                Cents(500),
            ));
        }
        let db = WindowedDatabase::from_store(
            &b.build(),
            WindowSpec::months(d0, 1),
            2,
            WindowAlignment::Global,
        );
        let model = RfmModel::new(2);
        let rows = model.features_at(&db, WindowIndex::new(1));
        assert_eq!(rows.len(), 4);
        for (_, f) in rows {
            assert_eq!(f.frequency, 1.0);
            assert!((f.monetary - 5.0).abs() < 1e-12);
            // Last trip May 4; window 1 ends Jun 30 → 57 days.
            assert_eq!(f.recency_days, 57.0);
        }
    }
}
