//! Z-score standardization.
//!
//! Logistic regression on raw RFM columns is badly conditioned (recency
//! in days vs. monetary in hundreds of currency units); the standardizer
//! is fit on the training fold only and applied to both folds, keeping
//! cross-validation leak-free.

/// Per-column mean/std scaler.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    /// Column means.
    pub means: Vec<f64>,
    /// Column standard deviations (population, clamped away from zero).
    pub stds: Vec<f64>,
}

impl Standardizer {
    /// Fit to rows of equal width. Panics on an empty set or ragged rows.
    pub fn fit(rows: &[Vec<f64>]) -> Standardizer {
        assert!(!rows.is_empty(), "cannot standardize an empty set");
        let width = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; width];
        for row in rows {
            assert_eq!(row.len(), width, "ragged feature rows");
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; width];
        for row in rows {
            for ((s, &v), &m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: leave it centered only
            }
        }
        Standardizer { means, stds }
    }

    /// Transform one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Transform a copy of the rows.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut row = r.clone();
                self.transform_row(&mut row);
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_transform() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Standardizer::fit(&rows);
        assert_eq!(s.means, vec![3.0, 10.0]);
        // Population std of column 0: sqrt(8/3).
        assert!((s.stds[0] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // Constant column: std clamped to 1.
        assert_eq!(s.stds[1], 1.0);
        let t = s.transform(&rows);
        assert!((t[0][0] + t[2][0]).abs() < 1e-12); // symmetric around 0
        assert_eq!(t[1][0], 0.0);
        assert_eq!(t[0][1], 0.0); // centered constant column
    }

    #[test]
    fn transformed_columns_standardized() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 3.0 + 7.0]).collect();
        let s = Standardizer::fit(&rows);
        let t = s.transform(&rows);
        let mean: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 100.0;
        let var: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / 100.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        Standardizer::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_panics() {
        Standardizer::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let s = Standardizer::fit(&[vec![1.0]]);
        s.transform_row(&mut [1.0, 2.0]);
    }
}
