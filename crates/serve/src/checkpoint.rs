//! Atomic, versioned, checksummed checkpoints of the monitor state.
//!
//! Two on-disk framings share the `checkpoint-<lsn>.ckpt` naming and
//! are told apart by their leading bytes.
//!
//! **Text** (`v1`): a one-line header followed by the monitor snapshot
//! body (the exact [`StabilityMonitor::snapshot`] text):
//!
//! ```text
//! #checkpoint,v1,<lsn>,<body_len>,<body_crc32>
//! #monitor,15461,m1,2,5
//! c,1,3,4
//! ...
//! ```
//!
//! **Binary** (`ATTRCKP2`): a fixed little-endian header followed by
//! the binary monitor snapshot
//! ([`StabilityMonitor::snapshot_bytes`]):
//!
//! ```text
//! [0..8)   magic b"ATTRCKP2"
//! u64      lsn
//! u64      body_len
//! u32      body_crc32
//! [..]     body
//! ```
//!
//! Either header carries the WAL sequence number the snapshot covers
//! (all records with `seq ≤ lsn` are folded in), the body length in
//! bytes, and a CRC-32 over the body — a reader can prove the file is
//! complete and uncorrupted before trusting a single row of it.
//! [`read_in`] accepts both framings; which one [`write_in`] /
//! [`write_binary_in`] produces is the server's
//! [`CheckpointFormat`] choice, and the two are fully interoperable
//! (a server can restart from either regardless of its own setting).
//!
//! Writes are crash-atomic: the file is written to `<path>.tmp`,
//! `sync_all`ed, then renamed over `<path>` (and the directory synced),
//! so a reader only ever observes the old complete checkpoint or the
//! new complete checkpoint, never a torn mixture. Checkpoints are named
//! `checkpoint-<lsn>.ckpt` inside the WAL directory and rotated;
//! recovery walks them newest-first and falls back past corrupt ones.
//!
//! [`StabilityMonitor::snapshot`]: attrition_core::StabilityMonitor::snapshot
//! [`StabilityMonitor::snapshot_bytes`]: attrition_core::StabilityMonitor::snapshot_bytes

use crate::env::{RealStorage, Storage};
use attrition_store::{ByteReader, ByteWriter};
use attrition_util::crc::crc32;
use std::path::{Path, PathBuf};

/// Text format version written into (and required in) the text header.
pub const VERSION: &str = "v1";

/// Binary checkpoint magic: "ATTRCKP" + format version 2 (the text
/// format is version 1).
pub const BINARY_MAGIC: [u8; 8] = *b"ATTRCKP2";

/// File extension of checkpoint files.
pub const EXTENSION: &str = "ckpt";

/// Which on-disk framing (and snapshot encoding) a server writes its
/// checkpoints in. Reading auto-detects; this only selects the writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// CSV snapshot behind the `#checkpoint,v1` header. Grep-able and
    /// diff-able; several times larger and slower to restore.
    Text,
    /// Binary snapshot behind the `ATTRCKP2` header. The default: at a
    /// million customers the checkpoint is a fraction of the text size
    /// and restores without any per-row parsing.
    Binary,
}

impl std::fmt::Display for CheckpointFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CheckpointFormat::Text => "text",
            CheckpointFormat::Binary => "binary",
        })
    }
}

impl std::str::FromStr for CheckpointFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<CheckpointFormat, String> {
        match s {
            "text" => Ok(CheckpointFormat::Text),
            "binary" => Ok(CheckpointFormat::Binary),
            other => Err(format!("unknown checkpoint format {other:?} (text|binary)")),
        }
    }
}

/// A successfully read and verified checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The WAL LSN this snapshot covers (replay records above it only).
    pub lsn: u64,
    /// The framing the file was written in.
    pub format: CheckpointFormat,
    /// The monitor snapshot (text or binary per `format`), ready for
    /// `StabilityMonitor::restore_any`.
    pub body: Vec<u8>,
}

/// Why a checkpoint file was rejected.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// The file was read but failed verification; recovery skips it.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "cannot read checkpoint: {e}"),
            CheckpointError::Corrupt(reason) => write!(f, "corrupt checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// The staging name [`atomic_write`] uses: `<file>.tmp` next to `path`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `bytes` to `path` crash-atomically: `<path>.tmp` → fsync →
/// rename → directory sync. On any error the previous `path` content
/// (if any) is still intact.
///
/// The directory sync failure is *propagated*, not swallowed: callers
/// (the server's checkpoint trigger) truncate the WAL right after a
/// checkpoint lands, and truncating against a rename that is not yet
/// durable would lose acknowledged data if power failed. `Storage`
/// implementations that genuinely cannot sync a directory report
/// success instead (see [`RealStorage`]).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    atomic_write_in(&*RealStorage::shared(), path, bytes)
}

/// [`atomic_write`] against an explicit [`Storage`].
pub fn atomic_write_in(storage: &dyn Storage, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    storage.write(&tmp, bytes)?;
    storage.sync(&tmp)?;
    storage.rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        storage.sync_dir(dir)?;
    }
    Ok(())
}

/// The canonical path of the checkpoint covering `lsn` inside `dir`.
/// Zero-padded so lexicographic and numeric order agree.
pub fn path_for(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("checkpoint-{lsn:020}.{EXTENSION}"))
}

/// Atomically write a text checkpoint of `body` covering `lsn` into
/// `dir`.
pub fn write(dir: &Path, lsn: u64, body: &str) -> std::io::Result<PathBuf> {
    write_in(&*RealStorage::shared(), dir, lsn, body)
}

/// [`write`] against an explicit [`Storage`].
pub fn write_in(
    storage: &dyn Storage,
    dir: &Path,
    lsn: u64,
    body: &str,
) -> std::io::Result<PathBuf> {
    let path = path_for(dir, lsn);
    let header = format!(
        "#checkpoint,{VERSION},{lsn},{},{}\n",
        body.len(),
        crc32(body.as_bytes())
    );
    let mut bytes = Vec::with_capacity(header.len() + body.len());
    bytes.extend_from_slice(header.as_bytes());
    bytes.extend_from_slice(body.as_bytes());
    atomic_write_in(storage, &path, &bytes)?;
    Ok(path)
}

/// Atomically write a binary checkpoint of `body` (a binary monitor
/// snapshot) covering `lsn` into `dir`.
pub fn write_binary(dir: &Path, lsn: u64, body: &[u8]) -> std::io::Result<PathBuf> {
    write_binary_in(&*RealStorage::shared(), dir, lsn, body)
}

/// [`write_binary`] against an explicit [`Storage`].
pub fn write_binary_in(
    storage: &dyn Storage,
    dir: &Path,
    lsn: u64,
    body: &[u8],
) -> std::io::Result<PathBuf> {
    let path = path_for(dir, lsn);
    let mut w = ByteWriter::with_capacity(28 + body.len());
    w.bytes(&BINARY_MAGIC);
    w.u64(lsn);
    w.u64(body.len() as u64);
    w.u32(crc32(body));
    w.bytes(body);
    atomic_write_in(storage, &path, &w.into_bytes())?;
    Ok(path)
}

/// Read and verify the checkpoint at `path` (either framing).
pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
    read_in(&*RealStorage::shared(), path)
}

/// [`read`] against an explicit [`Storage`].
pub fn read_in(storage: &dyn Storage, path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = storage.read(path)?;
    if bytes.starts_with(b"ATTRCKP") {
        return read_binary(&bytes);
    }
    // Corruption can flip bytes out of UTF-8 entirely; that is a
    // verification failure (skip this checkpoint), not an I/O error.
    let text = String::from_utf8(bytes)
        .map_err(|_| CheckpointError::Corrupt("body is not valid UTF-8".into()))?;
    let text = text.as_str();
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| CheckpointError::Corrupt("no header line".into()))?;
    let fields: Vec<&str> = header.split(',').collect();
    if fields.len() != 5 || fields[0] != "#checkpoint" {
        return Err(CheckpointError::Corrupt(format!(
            "bad header {header:?} (expected 5 `#checkpoint` fields)"
        )));
    }
    if fields[1] != VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported version {:?} (expected {VERSION})",
            fields[1]
        )));
    }
    let lsn: u64 = fields[2]
        .parse()
        .map_err(|_| CheckpointError::Corrupt(format!("bad lsn {:?}", fields[2])))?;
    let len: usize = fields[3]
        .parse()
        .map_err(|_| CheckpointError::Corrupt(format!("bad length {:?}", fields[3])))?;
    let crc: u32 = fields[4]
        .parse()
        .map_err(|_| CheckpointError::Corrupt(format!("bad checksum {:?}", fields[4])))?;
    if body.len() != len {
        return Err(CheckpointError::Corrupt(format!(
            "body is {} bytes, header promises {len} (truncated write?)",
            body.len()
        )));
    }
    if crc32(body.as_bytes()) != crc {
        return Err(CheckpointError::Corrupt("body checksum mismatch".into()));
    }
    Ok(Checkpoint {
        lsn,
        format: CheckpointFormat::Text,
        body: body.as_bytes().to_vec(),
    })
}

/// Verify the `ATTRCKP2` framing. The caller established the
/// `b"ATTRCKP"` prefix.
fn read_binary(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let bad = |e: attrition_store::ByteError| CheckpointError::Corrupt(e.to_string());
    let mut r = ByteReader::new(bytes);
    let magic = r.take(8).map_err(bad)?;
    if magic != BINARY_MAGIC {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported binary checkpoint version {:?} (expected {:?})",
            magic[7] as char, BINARY_MAGIC[7] as char
        )));
    }
    let lsn = r.u64().map_err(bad)?;
    let len = r.u64().map_err(bad)?;
    let crc = r.u32().map_err(bad)?;
    if len != r.remaining() as u64 {
        return Err(CheckpointError::Corrupt(format!(
            "body is {} bytes, header promises {len} (truncated write?)",
            r.remaining()
        )));
    }
    let body = r.take(len as usize).map_err(bad)?;
    if crc32(body) != crc {
        return Err(CheckpointError::Corrupt("body checksum mismatch".into()));
    }
    Ok(Checkpoint {
        lsn,
        format: CheckpointFormat::Binary,
        body: body.to_vec(),
    })
}

/// Parse a checkpoint file name (`checkpoint-<lsn>.ckpt`, or the
/// `.tmp`-suffixed staging form when `staging`) into its LSN.
fn parse_name(name: &str, staging: bool) -> Option<u64> {
    let rest = name.strip_prefix("checkpoint-")?;
    let digits = if staging {
        rest.strip_suffix(&format!(".{EXTENSION}.tmp"))?
    } else {
        rest.strip_suffix(&format!(".{EXTENSION}"))?
    };
    digits.parse::<u64>().ok()
}

/// Checkpoint files in `dir`, newest (highest LSN) first. Files whose
/// names do not parse are ignored. A missing directory lists as empty.
pub fn list(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    list_in(&*RealStorage::shared(), dir)
}

/// [`list`] against an explicit [`Storage`].
pub fn list_in(storage: &dyn Storage, dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for name in storage.list(dir)? {
        if let Some(lsn) = parse_name(&name, false) {
            found.push((lsn, dir.join(name)));
        }
    }
    found.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
    Ok(found)
}

/// Leftover `checkpoint-*.ckpt.tmp` staging files in `dir`, newest
/// first. A crash between the staging write and the rename (or a
/// power-lost rename the directory never made durable) strands one of
/// these; recovery salvages a fully verified tmp as a last-resort
/// candidate after every final checkpoint has been tried.
pub fn list_tmp(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    list_tmp_in(&*RealStorage::shared(), dir)
}

/// [`list_tmp`] against an explicit [`Storage`].
pub fn list_tmp_in(storage: &dyn Storage, dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for name in storage.list(dir)? {
        if let Some(lsn) = parse_name(&name, true) {
            found.push((lsn, dir.join(name)));
        }
    }
    found.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
    Ok(found)
}

/// Delete all but the newest `keep` checkpoints; returns how many were
/// removed. Stale staging files (tmp LSN ≤ the newest final checkpoint)
/// are swept too — they are fully superseded and never worth salvaging.
/// Deletion failures are ignored (an undeleted old checkpoint is
/// harmless — recovery prefers newer ones).
pub fn prune(dir: &Path, keep: usize) -> std::io::Result<usize> {
    prune_in(&*RealStorage::shared(), dir, keep)
}

/// [`prune`] against an explicit [`Storage`].
pub fn prune_in(storage: &dyn Storage, dir: &Path, keep: usize) -> std::io::Result<usize> {
    let mut removed = 0;
    let finals = list_in(storage, dir)?;
    let newest = finals.first().map(|&(lsn, _)| lsn);
    for (_, path) in finals.into_iter().skip(keep) {
        if storage.remove(&path).is_ok() {
            removed += 1;
        }
    }
    if let Some(newest) = newest {
        for (lsn, path) in list_tmp_in(storage, dir)? {
            if lsn <= newest && storage.remove(&path).is_ok() {
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("attrition_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const BODY: &str = "#monitor,15461,m1,2,5\nc,1,3,4\ni,1,10,2\n";

    #[test]
    fn write_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        let path = write(&dir, 42, BODY).unwrap();
        let ckpt = read(&path).unwrap();
        assert_eq!(ckpt.lsn, 42);
        assert_eq!(ckpt.format, CheckpointFormat::Text);
        assert_eq!(ckpt.body, BODY.as_bytes());
        // No leftover temp file.
        assert_eq!(list(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_write_read_roundtrip() {
        let dir = temp_dir("bin_roundtrip");
        let body = [0u8, 1, 2, 0xFF, 0x7E, 42];
        let path = write_binary(&dir, 99, &body).unwrap();
        let ckpt = read(&path).unwrap();
        assert_eq!(ckpt.lsn, 99);
        assert_eq!(ckpt.format, CheckpointFormat::Binary);
        assert_eq!(ckpt.body, body);
        // Same naming as text checkpoints, so listing sees it.
        assert_eq!(list(&dir).unwrap(), vec![(99, path)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_corruption_is_detected_not_loaded() {
        let dir = temp_dir("bin_corrupt");
        let body = vec![7u8; 100];
        let path = write_binary(&dir, 7, &body).unwrap();
        let clean = fs::read(&path).unwrap();
        // Flip one byte in the body → checksum mismatch.
        for pos in [28usize, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x01;
            fs::write(&path, &bad).unwrap();
            assert!(matches!(read(&path), Err(CheckpointError::Corrupt(_))));
        }
        // Truncation anywhere → header or length failure.
        for cut in [3usize, 8, 20, clean.len() - 1] {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                matches!(read(&path), Err(CheckpointError::Corrupt(_))),
                "cut {cut}"
            );
        }
        // Wrong version byte → named unsupported-version error.
        let mut bad = clean.clone();
        bad[7] = b'3';
        fs::write(&path, &bad).unwrap();
        match read(&path) {
            Err(CheckpointError::Corrupt(reason)) => {
                assert!(reason.contains("unsupported"), "{reason}")
            }
            other => panic!("wrong version must be Corrupt, got {other:?}"),
        }
        // The intact file still reads.
        fs::write(&path, &clean).unwrap();
        assert_eq!(read(&path).unwrap().body, body);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_parse_display_roundtrip() {
        for format in [CheckpointFormat::Text, CheckpointFormat::Binary] {
            assert_eq!(format.to_string().parse::<CheckpointFormat>(), Ok(format));
        }
        assert!("csv".parse::<CheckpointFormat>().is_err());
    }

    #[test]
    fn corruption_is_detected_not_loaded() {
        let dir = temp_dir("corrupt");
        let path = write(&dir, 7, BODY).unwrap();
        let clean = fs::read(&path).unwrap();
        // Flip one byte anywhere in the body → checksum mismatch.
        for pos in [clean.len() - 1, clean.len() / 2] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x20;
            fs::write(&path, &bad).unwrap();
            assert!(matches!(read(&path), Err(CheckpointError::Corrupt(_))));
        }
        // Truncation → length mismatch.
        fs::write(&path, &clean[..clean.len() - 3]).unwrap();
        assert!(matches!(read(&path), Err(CheckpointError::Corrupt(_))));
        // Garbage header.
        fs::write(&path, b"not a checkpoint\nat all\n").unwrap();
        assert!(matches!(read(&path), Err(CheckpointError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_orders_newest_first_and_prune_keeps_n() {
        let dir = temp_dir("rotate");
        for lsn in [5u64, 900, 17] {
            write(&dir, lsn, BODY).unwrap();
        }
        // A stray non-checkpoint file is ignored.
        fs::write(dir.join("wal.log"), b"").unwrap();
        let listed = list(&dir).unwrap();
        let lsns: Vec<u64> = listed.iter().map(|(lsn, _)| *lsn).collect();
        assert_eq!(lsns, vec![900, 17, 5]);
        assert_eq!(prune(&dir, 2).unwrap(), 1);
        let lsns: Vec<u64> = list(&dir).unwrap().iter().map(|(lsn, _)| *lsn).collect();
        assert_eq!(lsns, vec![900, 17]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stranded_tmp_is_listed_and_pruned_when_superseded() {
        let dir = temp_dir("tmp");
        write(&dir, 5, BODY).unwrap();
        // Strand staging files as a crash between write and rename would.
        fs::write(dir.join("checkpoint-00000000000000000003.ckpt.tmp"), b"x").unwrap();
        fs::write(dir.join("checkpoint-00000000000000000009.ckpt.tmp"), b"y").unwrap();
        let tmps: Vec<u64> = list_tmp(&dir).unwrap().iter().map(|t| t.0).collect();
        assert_eq!(tmps, vec![9, 3]);
        // Tmps never appear in the final listing.
        assert_eq!(list(&dir).unwrap().len(), 1);
        // Prune sweeps the superseded tmp (3 ≤ 5) but keeps the newer one.
        assert_eq!(prune(&dir, 4).unwrap(), 1);
        let tmps: Vec<u64> = list_tmp(&dir).unwrap().iter().map(|t| t.0).collect();
        assert_eq!(tmps, vec![9]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = temp_dir("atomic");
        let path = dir.join("state.ckpt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer content");
        let _ = fs::remove_dir_all(&dir);
    }
}
