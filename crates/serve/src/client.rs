//! A small blocking client for the line protocol — what the load
//! generator, the CI smoke test and the integration tests speak through.
//! Any `nc`/telnet session works just as well; this only adds typed
//! parsing of the replies.
//!
//! ## Resilience
//!
//! [`Client::connect`] sets both read **and write** timeouts, so a
//! stalled server cannot wedge a caller in `write_all`. On top of the
//! plain one-shot calls, [`Client::connect_retrying`] and
//! [`Client::send_retrying`] add jittered exponential backoff with a
//! bounded retry budget ([`RetryPolicy`]) for the two transient
//! failures a well-behaved caller should absorb:
//!
//! - `ERR busy` — the server rejected the *connection* before reading a
//!   byte (see the pool's backpressure contract), so retrying on a
//!   fresh connection can never double-apply a request;
//! - transient I/O (refused / reset / aborted / broken pipe / timeout) —
//!   for **connects** always safe; for **sends** the retry reconnects
//!   and resends, which is safe for idempotent requests (`SCORE`,
//!   `PING`, `STATS`, `FLUSH`) and for `INGEST` only when the failure
//!   happened before the server logged the record. Callers that cannot
//!   tolerate a rare duplicate ingest under ambiguity should use plain
//!   [`Client::send`]; the WAL's per-record sequence numbers make
//!   *recovery* replay exactly-once either way.

use crate::env::{Clock, RealClock, RngCore, SplitMix64, Transport};
use crate::protocol::{parse_score_line, ParsedScore};
use attrition_types::Date;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `PONG`.
    Pong,
    /// `OK <n>` plus its `CLOSED` lines (ingest/flush).
    Closed(Vec<ParsedScore>),
    /// `SCORE …`.
    Score(ParsedScore),
    /// `STATS <json>` — the raw JSON text.
    Stats(String),
    /// Any other `OK …` acknowledgement (snapshot, shutdown).
    Ok(String),
    /// `ERR …`.
    Err(String),
}

/// How aggressively [`Client::connect_retrying`] / [`send_retrying`]
/// retry transient failures: exponential backoff (doubling from
/// [`base_delay`] up to [`max_delay`]) with deterministic jitter, at
/// most [`budget`] retries.
///
/// [`send_retrying`]: Client::send_retrying
/// [`base_delay`]: RetryPolicy::base_delay
/// [`max_delay`]: RetryPolicy::max_delay
/// [`budget`]: RetryPolicy::budget
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries attempted after the first failure (0 = no retries).
    pub budget: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the jitter PRNG — fixed per client so load tests are
    /// reproducible; vary it per worker to decorrelate their retries.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 5 retries, 10 ms → 1 s backoff: rides out a saturated pool or a
    /// server restart measured in hundreds of milliseconds.
    fn default() -> RetryPolicy {
        RetryPolicy {
            budget: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The (jittered) sleep before retry number `attempt` (1-based).
    /// Jitter draws uniformly from `[delay/2, delay]` so synchronized
    /// clients spread out instead of re-stampeding the server. Public
    /// so other retry loops (the replication fetcher) reuse the shape.
    pub fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20));
        let delay = exp.min(self.max_delay);
        let half = delay / 2;
        Duration::from_nanos(half.as_nanos() as u64 + rng.next_u64() % (half.as_nanos() as u64 + 1))
    }
}

/// How a [`Client::send_retrying`] call resolved — separate counters so
/// a load generator can report backpressure (`busy_rejections`) apart
/// from total retry work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retries performed (0 = the first attempt's reply was returned).
    pub retries: u32,
    /// `ERR busy` rejections received, including one returned as the
    /// final reply when the budget ran out.
    pub busy_rejections: u32,
}

/// Is this I/O failure plausibly transient (worth a backoff + retry)?
fn is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        e.kind(),
        ConnectionRefused
            | ConnectionReset
            | ConnectionAborted
            | BrokenPipe
            | TimedOut
            | WouldBlock
            | UnexpectedEof
            | Interrupted
    )
}

/// One blocking connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Remembered so a retrying send can reconnect after a reset.
    addr: std::net::SocketAddr,
    timeout: Duration,
}

impl Client {
    /// Connect; requests will block at most `timeout` waiting to write a
    /// request or read a reply line (read *and* write timeouts are set —
    /// a wedged server surfaces as `TimedOut`, never a hang).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            addr: stream.peer_addr()?,
            timeout,
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// [`connect`](Client::connect) with retries on transient failures
    /// (refused while the server finishes binding, resets, timeouts).
    pub fn connect_retrying(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        policy: &RetryPolicy,
    ) -> std::io::Result<Client> {
        Client::connect_retrying_with(addr, timeout, policy, &RealClock)
    }

    /// [`connect_retrying`](Client::connect_retrying) sleeping through an
    /// explicit [`Clock`] (logical under simulation, real otherwise).
    pub fn connect_retrying_with(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> std::io::Result<Client> {
        let mut jitter = SplitMix64::new(policy.seed);
        let mut attempt = 0u32;
        loop {
            match Client::connect(&addr, timeout) {
                Ok(client) => return Ok(client),
                Err(e) if attempt < policy.budget && is_transient(&e) => {
                    attempt += 1;
                    clock.sleep(policy.backoff(attempt, &mut jitter));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Tear down the current stream and dial the same server again.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        *self = Client::connect(self.addr, self.timeout)?;
        Ok(())
    }

    /// Send one raw request line and parse the reply.
    pub fn send(&mut self, line: &str) -> std::io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let first = self.read_line()?;
        self.read_reply(first)
    }

    /// Parse one member/request reply whose first line is `first`,
    /// reading any follow-up `CLOSED` lines it announces.
    fn read_reply(&mut self, first: String) -> std::io::Result<Reply> {
        if let Some(rest) = first.strip_prefix("OK ") {
            // `OK <n>` (a bare count) announces n CLOSED lines; any
            // other OK payload is a plain acknowledgement.
            if let Ok(n) = rest.trim().parse::<usize>() {
                let mut closed = Vec::with_capacity(n);
                for _ in 0..n {
                    let line = self.read_line()?;
                    closed.push(parse_score_line(&line).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?);
                }
                return Ok(Reply::Closed(closed));
            }
            return Ok(Reply::Ok(rest.to_owned()));
        }
        if first == "PONG" {
            return Ok(Reply::Pong);
        }
        if first.starts_with("SCORE ") {
            let score = parse_score_line(&first)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            return Ok(Reply::Score(score));
        }
        if let Some(json) = first.strip_prefix("STATS ") {
            return Ok(Reply::Stats(json.to_owned()));
        }
        if let Some(message) = first.strip_prefix("ERR ") {
            return Ok(Reply::Err(message.to_owned()));
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unparseable reply: {first:?}"),
        ))
    }

    /// [`send`](Client::send), absorbing `ERR busy` and transient I/O
    /// failures with jittered backoff + reconnect. Returns the final
    /// reply and the [`RetryStats`] it took; when the budget runs out
    /// the last reply/error is returned as-is, so a persistent
    /// `ERR busy` is still visible to the caller.
    pub fn send_retrying(
        &mut self,
        line: &str,
        policy: &RetryPolicy,
    ) -> std::io::Result<(Reply, RetryStats)> {
        self.send_retrying_with(line, policy, &RealClock)
    }

    /// [`send_retrying`](Client::send_retrying) sleeping through an
    /// explicit [`Clock`].
    pub fn send_retrying_with(
        &mut self,
        line: &str,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> std::io::Result<(Reply, RetryStats)> {
        let mut jitter = SplitMix64::new(policy.seed);
        let mut stats = RetryStats::default();
        loop {
            let outcome = self.send(line);
            let busy = matches!(&outcome, Ok(Reply::Err(message)) if message == "busy");
            if busy {
                stats.busy_rejections += 1;
            }
            let retryable = busy || matches!(&outcome, Err(e) if is_transient(e));
            if !retryable || stats.retries >= policy.budget {
                return outcome.map(|reply| (reply, stats));
            }
            stats.retries += 1;
            clock.sleep(policy.backoff(stats.retries, &mut jitter));
            // Both retry causes leave the connection useless: `ERR busy`
            // is followed by a server-side close, transient I/O means
            // the stream died. Dial again (itself retried via connect's
            // transient handling being wrapped in this loop).
            if let Err(e) = self.reconnect() {
                if stats.retries >= policy.budget || !is_transient(&e) {
                    return Err(e);
                }
            }
        }
    }

    /// Write one `BATCH` frame — header plus every member line — as a
    /// single buffered write (one syscall for small batches), without
    /// waiting for the reply. Pair with
    /// [`read_batch_replies`](Client::read_batch_replies), or use
    /// [`send_batch`](Client::send_batch) for the blocking round trip.
    pub fn write_batch(&mut self, members: &[String]) -> std::io::Result<()> {
        let mut frame =
            String::with_capacity(16 + members.iter().map(|m| m.len() + 1).sum::<usize>());
        let _ = writeln!(frame, "BATCH {}", members.len());
        for member in members {
            frame.push_str(member);
            frame.push('\n');
        }
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()
    }

    /// Read the reply to one previously written batch of `n` members:
    /// the `OKBATCH <n>` header plus one parsed [`Reply`] per member. A
    /// frame-level rejection (`ERR …` instead of `OKBATCH`) or a member
    /// count mismatch surfaces as `InvalidData` — the server rejected
    /// or misframed the batch, so no member can be attributed an ack.
    pub fn read_batch_replies(&mut self, n: usize) -> std::io::Result<Vec<Reply>> {
        let first = self.read_line()?;
        let invalid =
            |message: String| std::io::Error::new(std::io::ErrorKind::InvalidData, message);
        let Some(rest) = first.strip_prefix("OKBATCH ") else {
            if let Some(message) = first.strip_prefix("ERR ") {
                return Err(invalid(format!("batch rejected: {message}")));
            }
            return Err(invalid(format!("unparseable batch reply: {first:?}")));
        };
        let count: usize = rest
            .trim()
            .parse()
            .map_err(|_| invalid(format!("unparseable batch reply: {first:?}")))?;
        if count != n {
            return Err(invalid(format!(
                "batch reply count mismatch: sent {n} members, server answered {count}"
            )));
        }
        let mut replies = Vec::with_capacity(n);
        for _ in 0..n {
            let first = self.read_line()?;
            replies.push(self.read_reply(first)?);
        }
        Ok(replies)
    }

    /// Send one `BATCH` frame and block for its replies, one per member
    /// in order. The server acks the whole frame only after every
    /// mutating member shares a single group-commit fsync, so this is
    /// the cheapest way to make many ingests durable.
    pub fn send_batch(&mut self, members: &[String]) -> std::io::Result<Vec<Reply>> {
        self.write_batch(members)?;
        self.read_batch_replies(members.len())
    }

    /// `INGEST`: returns the windows this receipt closed.
    pub fn ingest(&mut self, customer: u64, date: Date, items: &[u32]) -> std::io::Result<Reply> {
        let mut line = format!("INGEST {customer} {date}");
        for item in items {
            line.push(' ');
            line.push_str(&item.to_string());
        }
        self.send(&line)
    }

    /// `FLUSH`: closes all windows before the one containing `date`.
    pub fn flush(&mut self, date: Date) -> std::io::Result<Reply> {
        self.send(&format!("FLUSH {date}"))
    }

    /// `SCORE`: the live preview of one customer.
    pub fn score(&mut self, customer: u64) -> std::io::Result<Reply> {
        self.send(&format!("SCORE {customer}"))
    }

    /// Send one raw request line and return the raw response text
    /// (multi-line `OK <n>` responses joined with `\n`) without parsing
    /// it into a [`Reply`] — the [`Transport`] implementation.
    pub fn exchange_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let first = self.read_line()?;
        let mut response = first.clone();
        if let Some(rest) = first.strip_prefix("OK ") {
            if let Ok(n) = rest.trim().parse::<usize>() {
                for _ in 0..n {
                    response.push('\n');
                    response.push_str(&self.read_line()?);
                }
            }
        }
        Ok(response)
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_owned())
    }
}

impl Transport for Client {
    fn exchange(&mut self, line: &str) -> std::io::Result<String> {
        self.exchange_raw(line)
    }
}

/// Bounded-window pipelining over one [`Client`] connection: keep up to
/// `window` batch frames in flight before blocking on the oldest ack,
/// overlapping the client's send path with the server's fsync + apply.
/// Each submitted batch carries a caller tag `T` (typically the send
/// timestamp) handed back with its replies, so a load generator can
/// attribute latency without a map.
///
/// The window is what keeps pipelining honest: an unbounded pipe would
/// let the client declare ops "sent" unboundedly far ahead of what the
/// server has made durable.
pub struct Pipeline<'a, T> {
    client: &'a mut Client,
    window: usize,
    /// Member count + tag per in-flight frame, oldest first.
    in_flight: VecDeque<(usize, T)>,
}

impl<'a, T> Pipeline<'a, T> {
    /// Pipeline over `client` with at most `window` (≥ 1) frames in
    /// flight.
    pub fn new(client: &'a mut Client, window: usize) -> Pipeline<'a, T> {
        Pipeline {
            client,
            window: window.max(1),
            in_flight: VecDeque::new(),
        }
    }

    /// Frames currently awaiting their ack.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Write one batch frame. When the window is already full this
    /// first blocks for the *oldest* outstanding frame's replies and
    /// returns them (with their tag); otherwise it returns `None` and
    /// never blocks on the read side.
    pub fn submit(
        &mut self,
        members: &[String],
        tag: T,
    ) -> std::io::Result<Option<(Vec<Reply>, T)>> {
        let completed = if self.in_flight.len() >= self.window {
            Some(self.complete_oldest()?)
        } else {
            None
        };
        self.client.write_batch(members)?;
        self.in_flight.push_back((members.len(), tag));
        Ok(completed)
    }

    /// Block until every in-flight frame is acked; returns their
    /// replies and tags, oldest first.
    pub fn drain(&mut self) -> std::io::Result<Vec<(Vec<Reply>, T)>> {
        let mut done = Vec::with_capacity(self.in_flight.len());
        while !self.in_flight.is_empty() {
            done.push(self.complete_oldest()?);
        }
        Ok(done)
    }

    fn complete_oldest(&mut self) -> std::io::Result<(Vec<Reply>, T)> {
        let (n, tag) = self
            .in_flight
            .pop_front()
            .expect("complete_oldest requires an in-flight frame");
        let replies = self.client.read_batch_replies(n)?;
        Ok((replies, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_within_half() {
        let policy = RetryPolicy::default();
        let mut jitter = SplitMix64::new(policy.seed);
        let mut previous_cap = Duration::ZERO;
        for attempt in 1..=8 {
            let exp = policy
                .base_delay
                .saturating_mul(1u32 << (attempt - 1))
                .min(policy.max_delay);
            let d = policy.backoff(attempt, &mut jitter);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d:?} not in [{:?}, {exp:?}]",
                exp / 2
            );
            assert!(exp >= previous_cap);
            previous_cap = exp;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let (mut a, mut b) = (SplitMix64::new(policy.seed), SplitMix64::new(policy.seed));
        for attempt in 1..=5 {
            assert_eq!(
                policy.backoff(attempt, &mut a),
                policy.backoff(attempt, &mut b)
            );
        }
    }

    #[test]
    fn transient_kinds_are_classified() {
        use std::io::{Error, ErrorKind};
        assert!(is_transient(&Error::from(ErrorKind::ConnectionRefused)));
        assert!(is_transient(&Error::from(ErrorKind::TimedOut)));
        assert!(is_transient(&Error::from(ErrorKind::BrokenPipe)));
        assert!(!is_transient(&Error::from(ErrorKind::InvalidData)));
        assert!(!is_transient(&Error::from(ErrorKind::PermissionDenied)));
    }
}
