//! A small blocking client for the line protocol — what the load
//! generator, the CI smoke test and the integration tests speak through.
//! Any `nc`/telnet session works just as well; this only adds typed
//! parsing of the replies.

use crate::protocol::{parse_score_line, ParsedScore};
use attrition_types::Date;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `PONG`.
    Pong,
    /// `OK <n>` plus its `CLOSED` lines (ingest/flush).
    Closed(Vec<ParsedScore>),
    /// `SCORE …`.
    Score(ParsedScore),
    /// `STATS <json>` — the raw JSON text.
    Stats(String),
    /// Any other `OK …` acknowledgement (snapshot, shutdown).
    Ok(String),
    /// `ERR …`.
    Err(String),
}

/// One blocking connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect; requests will block at most `timeout` waiting for a
    /// reply line.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Send one raw request line and parse the reply.
    pub fn send(&mut self, line: &str) -> std::io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let first = self.read_line()?;
        if let Some(rest) = first.strip_prefix("OK ") {
            // `OK <n>` (a bare count) announces n CLOSED lines; any
            // other OK payload is a plain acknowledgement.
            if let Ok(n) = rest.trim().parse::<usize>() {
                let mut closed = Vec::with_capacity(n);
                for _ in 0..n {
                    let line = self.read_line()?;
                    closed.push(parse_score_line(&line).map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?);
                }
                return Ok(Reply::Closed(closed));
            }
            return Ok(Reply::Ok(rest.to_owned()));
        }
        if first == "PONG" {
            return Ok(Reply::Pong);
        }
        if first.starts_with("SCORE ") {
            let score = parse_score_line(&first)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            return Ok(Reply::Score(score));
        }
        if let Some(json) = first.strip_prefix("STATS ") {
            return Ok(Reply::Stats(json.to_owned()));
        }
        if let Some(message) = first.strip_prefix("ERR ") {
            return Ok(Reply::Err(message.to_owned()));
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unparseable reply: {first:?}"),
        ))
    }

    /// `INGEST`: returns the windows this receipt closed.
    pub fn ingest(&mut self, customer: u64, date: Date, items: &[u32]) -> std::io::Result<Reply> {
        let mut line = format!("INGEST {customer} {date}");
        for item in items {
            line.push(' ');
            line.push_str(&item.to_string());
        }
        self.send(&line)
    }

    /// `FLUSH`: closes all windows before the one containing `date`.
    pub fn flush(&mut self, date: Date) -> std::io::Result<Reply> {
        self.send(&format!("FLUSH {date}"))
    }

    /// `SCORE`: the live preview of one customer.
    pub fn score(&mut self, customer: u64) -> std::io::Result<Reply> {
        self.send(&format!("SCORE {customer}"))
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_owned())
    }
}
